//! # tldag — Two-Layer DAG data reliability for IoT networks
//!
//! Facade crate re-exporting the workspace:
//!
//! * [`crypto`] — SHA-256, Merkle trees, Schnorr signatures, difficulty puzzles.
//! * [`sim`] — deterministic network simulator (topology, slots, message bus).
//! * [`core`] — the 2LDAG protocol and Proof-of-Path consensus.
//! * [`storage`] — durable segmented block-log engine with crash recovery.
//! * [`net`] — UDP wire transport, peer runtime, and the multi-process
//!   cluster deployment harness.
//! * [`obs`] — observability primitives: lock-free latency histograms,
//!   the bounded event journal, Prometheus-style text exposition, and
//!   the dependency-free HTTP metrics listener.
//! * [`baselines`] — PBFT and IOTA comparators used by the evaluation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use tldag_crypto as crypto;

pub use tldag_sim as sim;

pub use tldag_core as core;

pub use tldag_storage as storage;

pub use tldag_net as net;

pub use tldag_obs as obs;

pub use tldag_baselines as baselines;
