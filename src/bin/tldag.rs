//! `tldag` — command-line driver for the 2LDAG simulator.
//!
//! ```text
//! tldag topology [--nodes N] [--side M] [--seed S]
//! tldag run      [--nodes N] [--slots T] [--gamma G] [--malicious M]
//!                [--seed S] [--trace] [--threads W]
//!                [--sync-policy per-append|per-slot|grouped:N]
//!                [--storage memory|disk|disk-sharded] [--storage-dir PATH]
//!                [--retain-bytes B] [--persist-trust-cache]
//! tldag verify   --owner K [--seq Q] [--validator V]
//!                [--nodes N] [--slots T] [--gamma G] [--seed S]
//!                [--threads W] [--sync-policy P]
//!                [--storage memory|disk|disk-sharded] [--storage-dir PATH]
//!                [--retain-bytes B] [--persist-trust-cache]
//! tldag node     --id I --listen ADDR --peers 0@A,1@B,... [--slots T]
//!                [--seed S] [--nodes N] [--side M] [--gamma G] [--pop]
//!                [--window W] [--batch K] [--drop P] [--trace]
//!                [--controller ADDR] [--storage memory|disk]
//!                [--storage-dir PATH] [--join ADDR] [--join-slot K]
//!                [--leave-at M] [--churn SPEC] [--evict-after SECS]
//!                [--deadline SECS] [--metrics-addr ADDR]
//!                [--behavior KIND[@SLOT]]
//! tldag cluster  [--nodes N] [--slots T] [--seed S] [--side M] [--gamma G]
//!                [--pop] [--window W] [--batch K] [--drop P] [--trace]
//!                [--storage memory|disk] [--storage-dir PATH]
//!                [--base-port P] [--timeout SECS] [--churn SPEC]
//!                [--metrics] [--status-every SECS]
//!                [--adversary SPEC] [--evict-after SECS]
//! tldag status   --targets ADDR,ADDR,... [--json] [--timeout SECS]
//! tldag explore  <ADDR | --segments DIR> [--listen ADDR] [--duration SECS]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use tldag::core::attack::Behavior;
use tldag::core::block::BlockId;
use tldag::core::network::TldagNetwork;
use tldag::core::store::SyncPolicy;
use tldag::core::workload::VerificationWorkload;
use tldag::sim::bus::TrafficClass;
use tldag::sim::engine::GenerationSchedule;
use tldag::sim::engine::Sharding;
use tldag::sim::fault::{FaultPlan, MaliciousPlacement};
use tldag::sim::topology::{Topology, TopologyConfig};
use tldag::sim::trace::Trace;
use tldag::sim::{DetRng, NodeId};
use tldag::storage::{DiskFactory, ShardedDiskFactory, StorageOptions};

const USAGE: &str = "\
tldag — 2LDAG / Proof-of-Path simulator

USAGE:
    tldag topology [--nodes N] [--side METERS] [--seed S]
        Print the deployment produced by the paper's placement rule.

    tldag run [--nodes N] [--slots T] [--gamma G] [--malicious M]
              [--seed S] [--trace] [--threads W] [--sync-policy P]
              [--storage memory|disk|disk-sharded] [--storage-dir P]
              [--retain-bytes B] [--persist-trust-cache]
        Run a slotted simulation with the paper's verification workload
        and print storage/communication/PoP summaries.

    tldag verify --owner K [--seq Q] [--validator V]
                 [--nodes N] [--slots T] [--gamma G] [--seed S]
                 [--threads W] [--sync-policy P]
                 [--storage memory|disk|disk-sharded] [--storage-dir P]
                 [--retain-bytes B] [--persist-trust-cache]
        Run a simulation, then verify block K#Q from node V via
        Proof-of-Path and print the proof path.

    tldag node --id I --listen ADDR --peers 0@A,2@B,... [--slots T]
               [--seed S] [--nodes N] [--side M] [--gamma G] [--pop]
               [--window W] [--batch K] [--drop P] [--trace]
               [--controller ADDR] [--storage memory|disk] [--storage-dir P]
               [--join ADDR] [--join-slot K] [--leave-at M]
               [--churn SPEC] [--evict-after SECS] [--deadline SECS]
               [--metrics-addr ADDR] [--behavior KIND[@SLOT]]
        Run ONE real 2LDAG node over UDP: generate blocks, gossip
        slot-tagged digests with pull-based loss recovery, serve
        REQ_CHILD/FetchBlock, and (with --pop) verify blocks over the
        wire. The topology is derived from (--seed, --nodes, --side),
        so every process agrees on G(V,E) without exchanging it.
        Dynamic membership: --join ADDR bootstraps a late joiner off any
        live member (handshake transfers the roster; --join-slot pins the
        first generation slot, otherwise it is negotiated); --leave-at M
        makes the node generate its last block at M-1, announce its
        departure, and wind down; --churn SPEC shares a deterministic
        membership schedule (join:ID@SLOT,leave:ID@SLOT,...) across the
        deployment; --evict-after SECS evicts a barrier-blocking peer
        that has gone silent; --deadline SECS hard-caps the process
        lifetime (watchdog against orphaned listeners). --metrics-addr
        serves live telemetry over HTTP while the node runs: GET /metrics
        is a Prometheus-style text exposition (phase-latency histograms,
        transport/PoP counters, storage gauges, roster state), GET
        /journal dumps the node's bounded event journal as JSONL.
        Pipelining: --window W (PoP mode, W in 1..=32, default 1) lets
        generation run up to W slots ahead of the cluster's completion
        low-watermark while a background worker verifies slots in order
        (horizon-capped child requests keep PoP answers byte-identical
        to the W=1 lockstep); --batch K sets the socket send/recv batch
        (datagrams per sendmmsg/recvmmsg wakeup); --drop P injects a
        deterministic per-datagram drop probability for loss testing.
        --behavior KIND[@SLOT] turns the node into a wire adversary from
        SLOT (default 0) on: selfish/unresponsive refuse to serve,
        corrupt-reply/corrupt-store tamper with answers, equivocate mints
        a second conflicting block per slot, digest-lie gossips corrupted
        SlotDigests, parasite re-advertises conflicting digests for stale
        slots, flapper goes dark until evicted then spams rejoins. The
        adversary's canonical chain stays protocol-conformant, so honest
        peers converge by pulling the slot directly.
        --trace records causal block-lifecycle spans (generated →
        gossiped-out → received → verified → committed) in a bounded
        lock-free span store and serves them as cross-node-stitchable
        timelines at GET /trace (needs --metrics-addr). Tracing never
        changes protocol byte content: a traced run's chain digests are
        identical to an untraced run's on the same seed.

    tldag cluster [--nodes N] [--slots T] [--seed S] [--side M]
                  [--gamma G] [--pop] [--window W] [--batch K] [--drop P]
                  [--trace] [--storage memory|disk] [--storage-dir P]
                  [--base-port P] [--timeout SECS]
                  [--churn SPEC] [--metrics] [--status-every SECS]
                  [--adversary SPEC] [--evict-after SECS]
        Spawn N real `tldag node` processes on localhost UDP ports, run
        T slots, collect their reports, and verify network_digest parity
        against the in-memory engine on the same seed. With --churn, also
        spawn the scheduled late joiners (bootstrapped via the join
        handshake, not a provisioned peer list) and replay the identical
        node_joins/node_leaves schedule on the reference engine — parity
        is asserted through the membership changes. Exits non-zero on a
        parity failure — and on one, pulls the suspect nodes' recent
        per-slot digests over the still-live control plane and prints a
        divergence forensics report: first divergent slot, the differing
        block digests, and (with --trace) the offending blocks' lifecycle
        timelines. --metrics gives every node a localhost telemetry
        endpoint (announced as `metrics endpoints: ...` before the nodes
        spawn); with --status-every SECS the harness also scrapes all
        of them periodically and prints the mid-run time series. --trace
        turns on block-lifecycle tracing at every node.
        --adversary SPEC schedules wire adversaries: comma-separated
        kind:count[@slot] groups (e.g. `selfish:2,equivocate:1@4`; kinds
        as in `tldag node --behavior`), placed deterministically on the
        highest founder ids (never node 0) and applied to the reference
        engine at the same slot boundary. The verdict then becomes
        honest-subset digest parity — honest nodes must reproduce the
        engine exactly *despite* the attack, and the detection counters
        (digest conflicts, conflict pulls, flap rejections, evictions)
        are printed. A flapper adversary's own chain is expected to fork
        (it goes dark mid-run); pass --evict-after SECS so honest nodes
        evict it instead of waiting out every barrier.

    tldag status --targets ADDR,ADDR,... [--json] [--timeout SECS]
        Scrape the /metrics endpoint of every listed node of a live
        cluster and render one aggregated status table (slot, chain
        length, PoP counters, request retries/timeouts, and p50/p99
        latencies re-estimated from the scraped histogram buckets), plus
        a TOTAL row summed over the raw samples. --json prints the same
        aggregation as machine-readable JSON. Targets that do not answer
        within --timeout (default 2s) are reported on stderr and skipped.

    tldag explore <ADDR | --segments DIR> [--listen ADDR] [--duration SECS]
        Serve a browsable JSON view of a deployment's DAG at GET /dag,
        GET /slot/<t>, and GET /block/<o>-<q>. With a node's metrics
        ADDR, proxies that live node's /metrics + /trace into a causal
        view (block ids are origin-slot). With --segments DIR, opens the
        durable block logs a cluster run left behind (a node dir or a
        cluster root of node-<i> subdirs) and serves the full structural
        DAG with resolved cross-chain digest edges (block ids are
        owner-seq). --listen picks the serving address (default
        127.0.0.1:0, printed on startup); --duration exits after SECS
        (default: serve until killed).

Storage backends: `memory` (default) keeps every chain in RAM; `disk` puts
each node's chain in a durable segmented block log under --storage-dir
(default: a fresh directory under the system temp dir) with crash recovery
and bounded resident memory; `disk-sharded` group-commits all nodes of a
shard into one multiplexed log (one fsync per shard per sync point, shard
count = --threads).

--threads W shards the slot loop across W worker threads. Results are
byte-identical for every thread count under a fixed seed.

--sync-policy picks the durability cadence: `per-append` (fsync every
block), `per-slot` (fsync at each slot boundary; default), or `grouped:N`
(fsync every N slots).

--retain-bytes B caps each log's disk usage (per node for `disk`, per
shard for `disk-sharded`): segment rolls compact the oldest sealed
segments away and PoP answers requests for pruned blocks with a graceful
miss. --persist-trust-cache saves each node's verified-header cache H_i
at every commit point, so a restarted node resumes TPS warm. Both need a
disk backend.

Defaults: --nodes 16, --side 300, --slots 40, --gamma 3, --malicious 0,
          --seq 0, --validator 0, --seed 42, --storage memory,
          --threads 1, --sync-policy per-slot, no retention budget.
";

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                flags.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(Args { flags, switches })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{name}: `{raw}`")),
        }
    }

    fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value for --{name}: `{raw}`"))
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn build_topology(args: &Args) -> Result<(Topology, u64), String> {
    let nodes: usize = args.get("nodes", 16)?;
    let side: f64 = args.get("side", 300.0)?;
    let seed: u64 = args.get("seed", 42)?;
    if nodes == 0 {
        return Err("--nodes must be positive".into());
    }
    let cfg = TopologyConfig {
        nodes,
        side_m: side,
        ..TopologyConfig::paper_default()
    };
    Ok((
        Topology::random_connected(&cfg, &mut DetRng::seed_from(seed)),
        seed,
    ))
}

fn build_network(args: &Args) -> Result<TldagNetwork, String> {
    let (topology, seed) = build_topology(args)?;
    let gamma: usize = args.get("gamma", 3)?;
    let malicious: usize = args.get("malicious", 0)?;
    if malicious >= topology.len() {
        return Err("--malicious must be below --nodes".into());
    }
    // The same definition `tldag node`/`tldag cluster` use, so simulator
    // runs and wire deployments execute one protocol.
    let cfg = tldag::net::runtime::deployment_protocol_config(gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let threads: usize = args.get("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let sync_policy: SyncPolicy = args.get("sync-policy", SyncPolicy::PerSlot)?;
    let storage: String = args.get("storage", "memory".to_string())?;
    let retain_bytes: Option<u64> = match args.flags.get("retain-bytes") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --retain-bytes: `{raw}`"))?,
        ),
    };
    let persist_trust = args.switch("persist-trust-cache");
    if storage == "memory" && (retain_bytes.is_some() || persist_trust) {
        return Err(
            "--retain-bytes / --persist-trust-cache need a disk backend \
(--storage disk|disk-sharded)"
                .into(),
        );
    }
    let opts = {
        let mut opts = StorageOptions::default().with_retain_disk_bytes(retain_bytes);
        if let Some(budget) = retain_bytes {
            // Compaction drops whole sealed segments at roll time, so the
            // budget only bites when segments are much smaller than it.
            opts.segment_bytes = (budget / 8).clamp(4 * 1024, opts.segment_bytes);
        }
        opts
    };
    let storage_dir = |args: &Args| -> Result<String, String> {
        let default_dir = std::env::temp_dir()
            .join(format!("tldag-run-{}", std::process::id()))
            .display()
            .to_string();
        let dir: String = args.get("storage-dir", default_dir)?;
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot use --storage-dir {dir}: {e}"))?;
        Ok(dir)
    };
    let retention_note = match retain_bytes {
        Some(b) => format!(", retain {b} B"),
        None => String::new(),
    };
    let mut net = match storage.as_str() {
        "memory" => TldagNetwork::new(cfg, topology.clone(), schedule, seed),
        "disk" => {
            let dir = storage_dir(args)?;
            println!("storage backend: disk ({dir}{retention_note})");
            let factory = DiskFactory::new(dir, opts);
            TldagNetwork::with_factory(cfg, topology.clone(), schedule, seed, Box::new(factory))
        }
        "disk-sharded" => {
            let dir = storage_dir(args)?;
            println!("storage backend: disk-sharded ({dir}, {threads} shard logs{retention_note})");
            let factory = ShardedDiskFactory::new(dir, threads, topology.len()).with_options(opts);
            TldagNetwork::with_factory(cfg, topology.clone(), schedule, seed, Box::new(factory))
        }
        other => {
            return Err(format!(
                "invalid value for --storage: `{other}` (memory|disk|disk-sharded)"
            ))
        }
    };
    net.set_sharding(Sharding::threads(threads));
    net.set_sync_policy(sync_policy);
    net.set_persist_trust_cache(persist_trust);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: topology.len() as u64,
    });
    if malicious > 0 {
        let plan = FaultPlan::select(
            &topology,
            malicious,
            MaliciousPlacement::Uniform,
            &mut DetRng::seed_from(seed ^ 0xbad),
        );
        net.apply_fault_plan(&plan, Behavior::Unresponsive);
        println!(
            "malicious (unresponsive): {:?}",
            plan.malicious_ids()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }
    Ok(net)
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let (topo, seed) = build_topology(args)?;
    println!(
        "{} nodes, seed {seed}: {} links, mean degree {:.1}, diameter {:?}",
        topo.len(),
        topo.edge_count(),
        topo.mean_degree(),
        topo.diameter()
    );
    for id in topo.node_ids() {
        let p = topo.position(id);
        let neighbors: Vec<String> = topo.neighbors(id).iter().map(ToString::to_string).collect();
        println!(
            "  {id:>4}  ({:>7.1}, {:>7.1})  deg {:>2}  -> {}",
            p.x,
            p.y,
            topo.degree(id),
            neighbors.join(" ")
        );
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let slots: u64 = args.get("slots", 40)?;
    let mut net = build_network(args)?;
    if args.switch("trace") {
        net.set_trace(Trace::bounded(40));
    }
    net.try_run_slots(slots)
        .map_err(|e| format!("simulation stopped: {e}"))?;
    // Clean shutdown: flush slots staged since the last Grouped(n) boundary.
    net.sync_storage()
        .map_err(|e| format!("final storage flush failed: {e}"))?;

    let (attempts, successes) = net.pop_counters();
    println!("\nafter {slots} slots:");
    println!(
        "  engine              : {} thread(s), sync policy {}",
        net.sharding().threads,
        net.sync_policy()
    );
    println!("  blocks network-wide : {}", net.total_blocks());
    println!("  mean node storage   : {:.3} MB", net.mean_storage_mb());
    let resident: usize = net
        .topology()
        .node_ids()
        .map(|id| net.node(id).store().resident_bytes())
        .sum();
    println!(
        "  resident block mem  : {:.1} KiB total across nodes",
        resident as f64 / 1024.0
    );
    let max_floor = net
        .topology()
        .node_ids()
        .map(|id| net.node(id).pruned_floor())
        .max()
        .unwrap_or(0);
    if max_floor > 0 {
        println!(
            "  retention           : deepest pruned floor at seq {max_floor} \
(older blocks answer PoP with a graceful miss)"
        );
    }
    if net.persists_trust_cache() {
        let cached: usize = net
            .topology()
            .node_ids()
            .map(|id| net.node(id).trust_cache().len())
            .sum();
        println!("  trust caches        : persisted at commit points ({cached} headers total)");
    }
    let acc = net.accounting();
    println!(
        "  mean node comm (tx) : {:.4} Mb DAG-construction, {:.4} Mb consensus",
        acc.mean_node_tx(TrafficClass::DagConstruction)
            .as_megabits(),
        acc.mean_node_tx(TrafficClass::Consensus).as_megabits()
    );
    println!(
        "  PoP verifications   : {successes}/{attempts} succeeded ({:.1}%)",
        if attempts == 0 {
            0.0
        } else {
            100.0 * successes as f64 / attempts as f64
        }
    );
    if args.switch("trace") {
        println!("\nlast events:\n{}", net.trace().render());
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let slots: u64 = args.get("slots", 40)?;
    let owner: u32 = args.required("owner")?;
    let seq: u32 = args.get("seq", 0)?;
    let validator: u32 = args.get("validator", 0)?;
    let mut net = build_network(args)?;
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.try_run_slots(slots)
        .map_err(|e| format!("simulation stopped: {e}"))?;
    net.sync_storage()
        .map_err(|e| format!("final storage flush failed: {e}"))?;

    if owner as usize >= net.topology().len() {
        return Err("--owner out of range".into());
    }
    let target = BlockId::new(NodeId(owner), seq);
    if net.node(NodeId(owner)).store().get(seq).is_none() {
        return Err(format!("{target} does not exist (chain too short)"));
    }
    println!(
        "verifying {target} from n{validator} (γ = {}, threshold {})",
        net.config().gamma,
        net.config().consensus_threshold()
    );
    let report = net.run_pop(NodeId(validator), target, false);
    match &report.outcome {
        Ok(()) => {
            println!(
                "CONSENSUS: {} distinct nodes vouch, {} messages, {} on the air",
                report.distinct_nodes,
                report.metrics.total_messages(),
                report.metrics.total_bits()
            );
            println!("proof path:");
            for step in &report.path {
                println!("  {} (block {})", step.owner, step.block_id);
            }
            Ok(())
        }
        Err(e) => Err(format!("verification failed: {e}")),
    }
}

fn cmd_node(args: &Args) -> Result<(), String> {
    let id: u32 = args.required("id")?;
    let listen: std::net::SocketAddr = args.required("listen")?;
    let peers = tldag::net::peer::parse_peer_list(&args.get("peers", String::new())?)?;
    let seed: u64 = args.get("seed", 42)?;
    let nodes: usize = args.get("nodes", peers.len() + 1)?;
    let slots: u64 = args.get("slots", 8)?;
    let mut config = tldag::net::NetNodeConfig::new(NodeId(id), listen, seed, nodes, slots);
    config.peers = peers;
    config.side_m = args.get("side", 300.0)?;
    config.gamma = args.get("gamma", 3)?;
    config.pop = args.switch("pop");
    config.window = args.get("window", 1)?;
    config.trace = args.switch("trace");
    config.endpoint.batch = args.get("batch", config.endpoint.batch)?;
    let drop_rate: f64 = args.get("drop", 0.0)?;
    if !(0.0..1.0).contains(&drop_rate) {
        return Err(format!(
            "invalid value for --drop: `{drop_rate}` (0.0..1.0)"
        ));
    }
    if drop_rate > 0.0 {
        config.fault = Some(tldag::net::FaultSpec {
            drop: drop_rate,
            duplicate: 0.0,
            reorder: 0.0,
        });
    }
    config.controller = match args.flags.get("controller") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --controller: `{raw}`"))?,
        ),
    };
    config.join = match args.flags.get("join") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --join: `{raw}`"))?,
        ),
    };
    config.join_slot = match args.flags.get("join-slot") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --join-slot: `{raw}`"))?,
        ),
    };
    config.leave_at = match args.flags.get("leave-at") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --leave-at: `{raw}`"))?,
        ),
    };
    config.churn = tldag::net::parse_churn_spec(&args.get("churn", String::new())?)?;
    config.evict_after = match args.flags.get("evict-after") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid value for --evict-after: `{raw}`"))?;
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    config.deadline = match args.flags.get("deadline") {
        None => None,
        Some(raw) => {
            let secs: u64 = raw
                .parse()
                .map_err(|_| format!("invalid value for --deadline: `{raw}`"))?;
            Some(std::time::Duration::from_secs(secs))
        }
    };
    config.metrics_addr = match args.flags.get("metrics-addr") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --metrics-addr: `{raw}`"))?,
        ),
    };
    if let Some(raw) = args.flags.get("behavior") {
        let (kind, from) = match raw.split_once('@') {
            Some((kind, slot)) => (
                kind,
                slot.parse::<u64>()
                    .map_err(|_| format!("invalid value for --behavior: `{raw}`"))?,
            ),
            None => (raw.as_str(), 0),
        };
        config.behavior = Behavior::parse_kind(kind).ok_or_else(|| {
            format!("invalid value for --behavior: `{raw}` (expected KIND[@SLOT])")
        })?;
        config.behavior_from = from;
    }
    let storage: String = args.get("storage", "memory".to_string())?;
    config.storage = match storage.as_str() {
        "memory" => tldag::net::StorageMode::Memory,
        "disk" => {
            let default_dir = std::env::temp_dir()
                .join(format!("tldag-node-{id}-{}", std::process::id()))
                .display()
                .to_string();
            let dir: String = args.get("storage-dir", default_dir)?;
            tldag::net::StorageMode::Disk(dir.into())
        }
        other => {
            return Err(format!(
                "invalid value for --storage: `{other}` (memory|disk)"
            ))
        }
    };
    let outcome = tldag::net::NetNode::new(config)?
        .run()
        .map_err(|e| format!("node failed: {e}"))?;
    let run = outcome.run;
    println!(
        "node {}: {} slots, chain {} blocks, chain digest {}",
        run.node, run.slots, run.chain_len, run.chain_digest
    );
    if run.catch_up_ms > 0 {
        println!("  join    : caught up in {} ms", run.catch_up_ms);
    }
    println!(
        "  PoP     : {}/{} verified over the wire",
        run.pop_successes, run.pop_attempts
    );
    let s = outcome.stats;
    println!(
        "  wire    : {} datagrams out / {} in, {} retries, {} timeouts",
        s.datagrams_sent, s.datagrams_received, s.request_retries, s.request_timeouts
    );
    println!(
        "  dropped : {} crc, {} malformed, {} unknown-tag, {} codec",
        s.crc_drops, s.malformed_drops, s.unknown_tag_drops, s.codec_error_drops
    );
    if run.degraded {
        return Err("run degraded: a digest barrier timed out".into());
    }
    Ok(())
}

fn cmd_cluster(args: &Args) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let nodes: usize = args.get("nodes", 3)?;
    let slots: u64 = args.get("slots", 6)?;
    let seed: u64 = args.get("seed", 42)?;
    let mut config = tldag::net::ClusterConfig::new(exe, nodes, slots, seed);
    config.side_m = args.get("side", 300.0)?;
    config.gamma = args.get("gamma", 3)?;
    config.pop = args.switch("pop");
    config.window = args.get("window", 1)?;
    config.batch = match args.flags.get("batch") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --batch: `{raw}`"))?,
        ),
    };
    config.drop = args.get("drop", 0.0)?;
    if !(0.0..1.0).contains(&config.drop) {
        return Err(format!(
            "invalid value for --drop: `{}` (0.0..1.0)",
            config.drop
        ));
    }
    config.base_port = match args.flags.get("base-port") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value for --base-port: `{raw}`"))?,
        ),
    };
    config.report_timeout = std::time::Duration::from_secs(args.get("timeout", 60)?);
    config.churn = tldag::net::parse_churn_spec(&args.get("churn", String::new())?)?;
    config.adversaries =
        tldag::net::parse_adversary_spec(&args.get("adversary", String::new())?, nodes)?;
    config.evict_after = match args.flags.get("evict-after") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid value for --evict-after: `{raw}`"))?;
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    config.trace = args.switch("trace");
    config.metrics = args.switch("metrics") || args.flags.contains_key("status-every");
    config.sample_every = match args.flags.get("status-every") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid value for --status-every: `{raw}`"))?;
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    let storage: String = args.get("storage", "memory".to_string())?;
    config.storage_root = match storage.as_str() {
        "memory" => None,
        "disk" => {
            let default_dir = std::env::temp_dir()
                .join(format!("tldag-cluster-{}", std::process::id()))
                .display()
                .to_string();
            Some(args.get("storage-dir", default_dir)?.into())
        }
        other => {
            return Err(format!(
                "invalid value for --storage: `{other}` (memory|disk)"
            ))
        }
    };

    println!(
        "cluster: {} node processes × {slots} slots (seed {seed}{}{}{})",
        config.total_processes(),
        if config.pop { ", PoP on" } else { "" },
        if config.churn.is_empty() {
            String::new()
        } else {
            format!(
                ", churn {}",
                tldag::net::membership::format_churn_spec(&config.churn)
            )
        },
        match &config.storage_root {
            Some(root) => format!(", disk under {}", root.display()),
            None => String::new(),
        }
    );
    if !config.adversaries.is_empty() {
        println!(
            "adversaries: {}",
            tldag::net::format_adversary_schedule(&config.adversaries)
        );
    }
    let outcome = tldag::net::run_cluster(&config)?;
    for report in &outcome.reports {
        println!(
            "  node {:>3}: {} blocks, digest {}, PoP {}/{}{}",
            report.node.0,
            report.chain_len,
            report.chain_digest,
            report.pop_successes,
            report.pop_attempts,
            if report.degraded { "  [DEGRADED]" } else { "" }
        );
    }
    if !outcome.status_series.is_empty() {
        println!(
            "  mid-run status ({} samples):",
            outcome.status_series.len()
        );
        for rows in &outcome.status_series {
            println!(
                "    slot {:>4}: {} nodes answered, chain Σ{}, PoP {}/{}, {} retries",
                rows.iter().map(|r| r.slot).max().unwrap_or(0),
                rows.len(),
                rows.iter().map(|r| r.chain_len).sum::<u64>(),
                rows.iter().map(|r| r.pop_successes).sum::<u64>(),
                rows.iter().map(|r| r.pop_attempts).sum::<u64>(),
                rows.iter().map(|r| r.request_retries).sum::<u64>(),
            );
        }
    }
    println!("  wire network digest      : {}", outcome.wire_digest);
    println!("  reference network digest : {}", outcome.reference_digest);
    let n = &outcome.net;
    println!(
        "  wire totals              : {} datagrams out / {} in, {} retries, {} timeouts",
        n.datagrams_sent, n.datagrams_received, n.request_retries, n.request_timeouts
    );
    if !outcome.metrics_addrs.is_empty() {
        println!(
            "  metrics endpoints        : {}",
            outcome
                .metrics_addrs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    if config.pop {
        println!(
            "  PoP wire {}/{} vs reference {}/{}",
            outcome.wire_pop.1,
            outcome.wire_pop.0,
            outcome.reference_pop.1,
            outcome.reference_pop.0
        );
    }
    let adversarial = !outcome.adversaries.is_empty();
    if adversarial {
        println!(
            "  honest-subset digest     : wire {} vs reference {}",
            outcome.honest_wire_digest, outcome.honest_reference_digest
        );
        println!(
            "  adversary detection      : {} digest conflicts, {} conflict pulls, \
{} flap rejections, {} evictions",
            n.digest_conflicts, n.conflict_pulls, n.flap_rejections, n.evictions
        );
    }
    // The verdict for an adversarial run is the honest subset: a dark
    // adversary legitimately forks its own chain from the engine, and
    // excluding it is the protocol working, not a reproduction bug.
    let verdict = if adversarial {
        outcome.honest_parity()
    } else {
        outcome.parity()
    };
    if verdict {
        if adversarial {
            println!("HONEST PARITY OK: honest nodes reproduced the in-memory engine under attack");
        } else {
            println!("PARITY OK: the UDP cluster reproduced the in-memory engine exactly");
        }
        Ok(())
    } else {
        for (i, report) in outcome.reports.iter().enumerate() {
            if report.chain_digest != outcome.reference_chains[i] {
                println!("  MISMATCH at node {i}");
            }
        }
        // The harness already pulled per-slot evidence from the live
        // nodes before releasing them — name the fork, don't just panic.
        if let Some(forensics) = &outcome.forensics {
            print!("{}", forensics.render());
        }
        Err("PARITY FAILED: wire and in-memory digests differ".into())
    }
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    let source = match (args.flags.get("target"), args.flags.get("segments")) {
        (Some(raw), None) => tldag::net::ExplorerSource::Live(
            raw.parse()
                .map_err(|_| format!("invalid value for --target: `{raw}`"))?,
        ),
        (None, Some(dir)) => tldag::net::ExplorerSource::Segments(dir.into()),
        (Some(_), Some(_)) => {
            return Err("--target and --segments are mutually exclusive".into());
        }
        (None, None) => {
            return Err("explore needs a source: a node's metrics ADDR or --segments DIR".into());
        }
    };
    let listen: std::net::SocketAddr = args.get("listen", "127.0.0.1:0".parse().expect("addr"))?;
    let explorer = tldag::net::Explorer::spawn(listen, source)?;
    println!("explorer listening on {}", explorer.addr());
    println!("  GET /dag  GET /slot/<t>  GET /block/<o>-<q>");
    let duration: f64 = args.get("duration", 0.0)?;
    if duration > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(duration));
        explorer.shutdown();
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let raw: String = args.required("targets")?;
    let timeout = std::time::Duration::from_secs_f64(args.get("timeout", 2.0)?);
    let mut rows = Vec::new();
    let mut per_node = Vec::new();
    let mut errors = Vec::new();
    for target in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let addr: std::net::SocketAddr = target
            .parse()
            .map_err(|_| format!("invalid target `{target}` (expected HOST:PORT)"))?;
        match tldag::net::scrape_metrics(addr, timeout) {
            Ok(samples) => {
                rows.push(tldag::net::StatusRow::from_samples(target, &samples));
                per_node.push(samples);
            }
            Err(e) => errors.push(e),
        }
    }
    for e in &errors {
        eprintln!("warning: {e}");
    }
    if rows.is_empty() {
        return Err("no target answered".into());
    }
    let total = tldag::net::total_row(&per_node, &rows);
    if args.switch("json") {
        println!("{}", tldag::net::status_json(&rows, &total));
    } else {
        let mut all = rows;
        all.push(total);
        print!("{}", tldag::net::render_status_table(&all));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `tldag explore HOST:PORT` sugar: the one positional operand becomes
    // the --target flag before the uniform flag parser sees it.
    if command == "explore" && argv.get(1).is_some_and(|a| !a.starts_with("--")) {
        argv.insert(1, "--target".to_string());
    }
    let result = match Args::parse(&argv[1..]) {
        Err(e) => Err(e),
        Ok(args) => match command.as_str() {
            "topology" => cmd_topology(&args),
            "run" => cmd_run(&args),
            "verify" => cmd_verify(&args),
            "node" => cmd_node(&args),
            "cluster" => cmd_cluster(&args),
            "status" => cmd_status(&args),
            "explore" => cmd_explore(&args),
            "help" | "--help" | "-h" => {
                print!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`")),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `tldag help` for usage");
            ExitCode::FAILURE
        }
    }
}
