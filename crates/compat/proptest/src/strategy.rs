//! Value-generation strategies: ranges, `any`, and tuples.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => { $(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )* };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => { $(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                // A span covering the full u64 domain cannot be passed to
                // `below` (the bound would wrap to 0); it means "any value".
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )* };
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => { $(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )* };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => { $(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )* };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
