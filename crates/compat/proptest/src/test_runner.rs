//! Config, error type, and the deterministic RNG behind `proptest!`.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test. The `PROPTEST_CASES`
    /// environment variable overrides this at runtime (see
    /// [`resolved_cases`]) — the CI fuzz job's scale-up knob.
    pub cases: u32,
    /// Whether a failing case's RNG state is appended to
    /// `proptest-regressions/<test>.txt` so later runs replay it first.
    pub failure_persistence: bool,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            failure_persistence: true,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(64)
    }
}

/// Resolves the effective case count: a positive integer in the
/// `PROPTEST_CASES` environment variable overrides the configured value,
/// so CI can run the same suites at fuzzing depth without code changes.
pub fn resolved_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(raw) => raw
            .trim()
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Reads the recorded failing RNG states for test `name` from
/// `proptest-regressions/<name>.txt` (lines of `cc <hex-state>`, oldest
/// first, unknown lines ignored). A missing file means no regressions.
pub fn load_regressions(name: &str) -> Vec<u64> {
    let path = std::path::Path::new("proptest-regressions").join(format!("{name}.txt"));
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("cc "))
        .filter_map(|hex| u64::from_str_radix(hex.trim(), 16).ok())
        .collect()
}

/// Best-effort: appends a failing case's RNG state to the regression file
/// so later runs replay it before generating fresh cases. IO failures are
/// swallowed — the panic that follows already carries the state.
pub fn record_regression(name: &str, state: u64) {
    use std::io::Write;
    let dir = std::path::Path::new("proptest-regressions");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("{name}.txt")))
    {
        let _ = writeln!(file, "cc {state:016x}");
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator seeded from the test name, so every
/// run of a given test generates the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Rebuilds a generator from a recorded state (regression replay).
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The raw generator state — recorded *before* a case draws its
    /// inputs, so [`TestRng::from_state`] replays that exact case.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift keeps the bias negligible for test-size bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
