//! Config, error type, and the deterministic RNG behind `proptest!`.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator seeded from the test name, so every
/// run of a given test generates the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift keeps the bias negligible for test-size bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
