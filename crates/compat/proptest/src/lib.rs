//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the subset of proptest the test suite uses: the
//! `proptest!` macro, `prop_assert*` macros, `any::<T>()`, range strategies,
//! tuple strategies, and `collection::vec`. Generation is deterministic (the
//! RNG is seeded from the test name), and there is **no shrinking** — a
//! failure reports the case index so it can be replayed by re-running the
//! test.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn name(a in 0u32..10, b in any::<u8>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )* };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in -5i64..5, c in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, any::<[u8; 32]>()), _flag in any::<bool>()) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1.len(), 32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "forced");
            }
        }
        always_fails();
    }
}
