//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the subset of proptest the test suite uses: the
//! `proptest!` macro, `prop_assert*` macros, `any::<T>()`, range strategies,
//! tuple strategies, and `collection::vec`. Generation is deterministic (the
//! RNG is seeded from the test name), and there is **no shrinking** — a
//! failure reports the case index and the RNG state it drew from.
//!
//! Two CI affordances mirror the real crate: the `PROPTEST_CASES`
//! environment variable scales every suite's case count at runtime, and a
//! failing case's RNG state is appended to `proptest-regressions/<test>.txt`
//! (relative to the test's working directory) and replayed before fresh
//! generation on every later run, so a found counterexample stays fatal
//! until fixed.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// docs
///     #[test]
///     fn name(a in 0u32..10, b in any::<u8>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = $crate::test_runner::resolved_cases(__config.cases);
            let __name = stringify!($name);
            let mut __one_case = |__rng: &mut $crate::test_runner::TestRng,
                                  __label: &::std::primitive::str| {
                let __state = __rng.state();
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    if __config.failure_persistence {
                        $crate::test_runner::record_regression(__name, __state);
                    }
                    panic!(
                        "proptest `{}` failed at {} (rng state {:016x}, replayed from \
proptest-regressions/{}.txt on the next run): {}",
                        __name, __label, __state, __name, e
                    );
                }
            };
            // Recorded failures first: a regression stays fatal until the
            // code is fixed, regardless of the case budget.
            for __state in $crate::test_runner::load_regressions(__name) {
                let mut __rng = $crate::test_runner::TestRng::from_state(__state);
                __one_case(&mut __rng, &format!("recorded regression {__state:016x}"));
            }
            let mut __rng = $crate::test_runner::TestRng::from_name(__name);
            for __case in 0..__cases {
                __one_case(&mut __rng, &format!("case {}/{}", __case, __cases));
            }
        }
    )* };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in -5i64..5, c in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&c));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn inclusive_ranges_cover_their_ends(
            a in 0u8..=3,
            b in 7u16..=7,
            c in 0u64..=u64::MAX, // full-domain span takes the raw-draw path
            d in -2i32..=2,
        ) {
            prop_assert!(a <= 3);
            prop_assert_eq!(b, 7);
            let _ = c;
            prop_assert!((-2..=2).contains(&d));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, any::<[u8; 32]>()), _flag in any::<bool>()) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1.len(), 32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            // Persistence off: this failure is the expected outcome, not a
            // regression to replay on later runs.
            #![proptest_config(ProptestConfig {
                failure_persistence: false,
                ..ProptestConfig::with_cases(4)
            })]
            fn always_fails(_x in 0u8..4) {
                prop_assert!(false, "forced");
            }
        }
        always_fails();
    }

    #[test]
    fn env_override_scales_cases() {
        // Setting the variable in-process would race parallel tests, so
        // compute the expectation from whatever the environment holds:
        // unset/garbage falls back to the configured count, a positive
        // integer wins.
        let expected = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        assert_eq!(crate::test_runner::resolved_cases(64), expected);
    }

    #[test]
    fn recorded_state_replays_the_same_case() {
        let mut named = crate::TestRng::from_name("x");
        let state = named.state();
        let first = named.next_u64();
        assert_eq!(crate::TestRng::from_state(state).next_u64(), first);
    }
}
