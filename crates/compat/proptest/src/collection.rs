//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for [`vec()`].
pub trait IntoSizeRange {
    /// Lower (inclusive) and upper (exclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.max > self.min {
            self.min + rng.below((self.max - self.min) as u64) as usize
        } else {
            self.min
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    assert!(min < max, "empty vec size range");
    VecStrategy { element, min, max }
}
