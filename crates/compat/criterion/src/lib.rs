//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate implements the benchmark-facing subset of criterion's API
//! (`criterion_group!`, `criterion_main!`, groups, throughput, `b.iter`)
//! over a compact wall-clock harness: each benchmark is calibrated until one
//! sample takes a few milliseconds, then timed over `sample_size` samples,
//! and the median per-iteration time (plus derived throughput) is printed.
//! There are no plots, no statistics beyond the median, and no baselines —
//! just honest numbers on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one calibrated sample should take.
const TARGET_SAMPLE: Duration = Duration::from_millis(4);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 15 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration workload used to derive throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` label.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Per-iteration workload declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: double the batch until one batch takes TARGET_SAMPLE.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 28 {
                break;
            }
            // Jump close to the target once we have a usable estimate.
            iters = if elapsed < Duration::from_micros(50) {
                iters * 8
            } else {
                iters * 2
            };
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        median_ns: None,
    };
    f(&mut bencher);
    let Some(ns) = bencher.median_ns else {
        println!("{label:<44} (no measurement: closure never called b.iter)");
        return;
    };
    let mut line = format!("{label:<44} time: {:>12}/iter", format_ns(ns));
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Bytes(b) => (b as f64, "B"),
            Throughput::Elements(e) => (e as f64, "elem"),
        };
        let per_sec = amount / (ns * 1e-9);
        line.push_str(&format!("   thrpt: {:>14}/s", format_amount(per_sec, unit)));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_amount(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("compat");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_amount(2.5e6, "B"), "2.50 MB");
    }
}
