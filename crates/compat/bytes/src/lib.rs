//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the small slice of the real `bytes` API the simulator uses:
//! an immutable, cheaply cloneable byte buffer. Cheap cloning matters — block
//! bodies are cloned on every `serve_block`, and the real crate's refcounted
//! buffer is what keeps that O(1).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (API-compatible subset of
/// `bytes::Bytes`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                other => write!(f, "\\x{other:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[1..], &[2, 3]);
    }

    #[test]
    fn empty_and_debug() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(format!("{:?}", Bytes::from("ab\"")), "b\"ab\\\"\"");
    }
}
