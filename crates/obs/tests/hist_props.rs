//! Property tests for the latency histogram, plus the concurrent
//! scrape-while-recording check the metrics endpoint depends on.

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use tldag_obs::hist::{LatencyHistogram, Phase, PhaseTimings};

/// The exact `q`-quantile of `values` using the same rank convention as
/// the histogram (`rank = ⌈q·n⌉`, 1-based, on the sorted values).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket counts sum to the observation count, bucket bounds are
    /// strictly increasing, and cumulative counts are monotone.
    #[test]
    fn buckets_are_monotone_and_complete(values in vec(0u64..2_000_000, 1..200)) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_micros(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum_micros, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max_micros, *values.iter().max().unwrap());
        let buckets: Vec<(u64, u64)> = snap.buckets().collect();
        let mut last_bound = None;
        let mut total = 0u64;
        for &(bound, count) in &buckets {
            prop_assert!(count > 0, "only non-empty buckets are surfaced");
            if let Some(prev) = last_bound {
                prop_assert!(bound > prev, "bounds ascend: {} then {}", prev, bound);
            }
            last_bound = Some(bound);
            total += count;
        }
        prop_assert_eq!(total, snap.count);
    }

    /// The bucketed quantile estimate brackets the exact quantile of a
    /// sorted reference: never below it, and within one power-of-two above
    /// (the bucket resolution guarantee).
    #[test]
    fn quantiles_bracket_sorted_reference(
        values in vec(0u64..10_000_000, 1..300),
        q in 0.01f64..1.0,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_micros(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let estimate = h.snapshot().quantile_micros(q);
        prop_assert!(
            estimate >= exact,
            "estimate {} below exact {} (q={})", estimate, exact, q
        );
        let ceiling = (2 * exact.max(1)).max(exact);
        prop_assert!(
            estimate < ceiling || estimate == exact,
            "estimate {} beyond 2x exact {} (q={})", estimate, exact, q
        );
    }

    /// Merging per-node snapshots equals recording everything in one
    /// histogram (what `tldag status` aggregation relies on).
    #[test]
    fn merge_equals_union(
        a in vec(0u64..1_000_000, 0..100),
        b in vec(0u64..1_000_000, 0..100),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        let hu = LatencyHistogram::new();
        for &v in &a {
            ha.record_micros(v);
            hu.record_micros(v);
        }
        for &v in &b {
            hb.record_micros(v);
            hu.record_micros(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let union = hu.snapshot();
        prop_assert_eq!(merged.count, union.count);
        prop_assert_eq!(merged.sum_micros, union.sum_micros);
        prop_assert_eq!(merged.max_micros, union.max_micros);
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile_micros(q), union.quantile_micros(q));
        }
    }
}

/// Writers hammer the histogram while a scraper thread snapshots it: no
/// torn totals (count never exceeds what was written), snapshots are
/// monotone over time, and the final snapshot is exact.
#[test]
fn concurrent_scrape_while_recording() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let timings = Arc::new(PhaseTimings::new());

    let scraper = {
        let timings = Arc::clone(&timings);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut scrapes = 0u64;
            loop {
                let snap = timings.phase(Phase::Verify).snapshot();
                assert!(
                    snap.count >= last_count,
                    "snapshot count went backwards: {} then {}",
                    last_count,
                    snap.count
                );
                assert!(snap.count <= WRITERS as u64 * PER_WRITER);
                // Quantile walks must stay in range mid-recording.
                let p99 = snap.p99();
                assert!(p99 <= snap.max_micros.max(1));
                last_count = snap.count;
                scrapes += 1;
                if snap.count == WRITERS as u64 * PER_WRITER {
                    break scrapes;
                }
                std::thread::yield_now();
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let timings = Arc::clone(&timings);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    timings
                        .phase(Phase::Verify)
                        .record_micros((w as u64 * 31 + i) % 10_000);
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer panicked");
    }
    let scrapes = scraper.join().expect("scraper panicked");
    assert!(scrapes >= 1);

    let final_snap = timings.phase(Phase::Verify).snapshot();
    assert_eq!(final_snap.count, WRITERS as u64 * PER_WRITER);
    assert!(final_snap.max_micros < 10_000);
}
