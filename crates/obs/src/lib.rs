//! # tldag-obs — observability primitives for the tldag workspace
//!
//! Live telemetry for a deployed 2LDAG cluster, built from four std-only
//! pieces (no dependencies, no async, no unsafe):
//!
//! * [`hist`] — [`LatencyHistogram`]: a lock-free, log2-bucketed latency
//!   histogram over relaxed atomics. Recording is a couple of
//!   `fetch_add`s, so it can sit on the slot loop's hot path; snapshots
//!   give p50/p90/p99/max and feed the text exposition.
//! * [`journal`] — [`Journal`]: a bounded ring-buffer of structured
//!   events (slot lifecycle, membership, retries, timeouts, pruned
//!   misses) with a JSONL dump, sharing its event model ([`EventKind`],
//!   [`JournalEvent`]) with the simulator's `Trace`.
//! * [`expo`] — Prometheus-style text exposition: a tiny builder for
//!   counters/gauges/histograms and a parser ([`parse_exposition`]) used
//!   by the `tldag status` scraper and the tests.
//! * [`http`] — [`HttpServer`]: a blocking HTTP/1.0 text responder on a
//!   `TcpListener` (the `--metrics-addr` listener), plus [`http_get`],
//!   the matching one-shot client.
//! * [`trace`] — [`SpanStore`]: a lock-free bounded ring of block
//!   lifecycle spans (generated → gossiped-out → received → verified →
//!   committed) keyed by `(slot, origin, hash-prefix)`, grouped into
//!   cross-node [`BlockTimeline`]s and served as JSON from `/trace`.
//!
//! The crate is a leaf: every other tldag crate may depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod http;
pub mod journal;
pub mod trace;

pub use expo::{histogram_quantile, parse_exposition, Expo, Sample};
pub use hist::{HistogramSnapshot, LatencyHistogram, Phase, PhaseTimings};
pub use http::{http_get, HttpServer, Routes};
pub use journal::{EventKind, Journal, JournalEvent};
pub use trace::{
    build_timelines, span_json, trace_json, unix_micros, BlockTimeline, SpanEvent, SpanKind,
    SpanStore, DEFAULT_SPAN_CAPACITY,
};
