//! Causal block-lifecycle tracing: a lock-free bounded span store.
//!
//! Every block's life is a sequence of **spans** — generated on its owner,
//! gossiped out, received / verified on each neighbor, committed at the
//! slot boundary — keyed by `(slot, origin, hash-prefix)` so spans recorded
//! on *different* nodes stitch into one cross-node timeline. The store is a
//! preallocated ring of atomic cells written with a per-cell seqlock
//! (version word incremented to odd before the write and to even after),
//! so recording never blocks the slot loop and never allocates; readers
//! retry a cell whose version moved underneath them. Overwrites of live
//! cells bump `evicted_total`, records against a zero-capacity (disabled)
//! store bump `dropped_total` — both are exported to `/metrics` so silent
//! ring overflow is visible.

use std::sync::atomic::{AtomicU64, Ordering};

/// One lifecycle stage of a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The block was assembled, mined, and appended on its owner.
    Generated,
    /// The owner broadcast the block's digest to its neighbors.
    GossipedOut,
    /// A remote node received the digest gossip.
    Received,
    /// A remote node completed a PoP verification of the block.
    Verified,
    /// The block's slot closed (store synced / digest committed) on a node.
    Committed,
}

impl SpanKind {
    /// Stable three-letter code used in JSON and metrics labels.
    pub fn code(self) -> &'static str {
        match self {
            SpanKind::Generated => "gen",
            SpanKind::GossipedOut => "out",
            SpanKind::Received => "rcv",
            SpanKind::Verified => "vfy",
            SpanKind::Committed => "cmt",
        }
    }

    fn from_u64(v: u64) -> Option<Self> {
        match v {
            0 => Some(SpanKind::Generated),
            1 => Some(SpanKind::GossipedOut),
            2 => Some(SpanKind::Received),
            3 => Some(SpanKind::Verified),
            4 => Some(SpanKind::Committed),
            _ => None,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            SpanKind::Generated => 0,
            SpanKind::GossipedOut => 1,
            SpanKind::Received => 2,
            SpanKind::Verified => 3,
            SpanKind::Committed => 4,
        }
    }
}

/// One recorded span: lifecycle stage `kind` of block
/// `(slot, origin, prefix)` observed on `node` at `ts_micros`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Generation slot of the block.
    pub slot: u64,
    /// Node that generated the block.
    pub origin: u32,
    /// First 8 bytes (big-endian) of the block's header digest.
    pub prefix: u64,
    /// Node on which this span was recorded.
    pub node: u32,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Wall-clock timestamp, microseconds since the UNIX epoch — comparable
    /// across the loopback processes of one cluster run.
    pub ts_micros: u64,
}

/// The identity a timeline groups by.
pub type BlockKey = (u64, u32, u64);

/// All spans of one block, across every node that reported them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockTimeline {
    /// Generation slot.
    pub slot: u64,
    /// Generating node.
    pub origin: u32,
    /// Header-digest prefix.
    pub prefix: u64,
    /// Spans sorted by timestamp (ties broken by lifecycle order, then node).
    pub spans: Vec<SpanEvent>,
}

impl BlockTimeline {
    /// Distinct nodes that contributed at least one span.
    pub fn node_count(&self) -> usize {
        let mut nodes: Vec<u32> = self.spans.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Whether the timeline is **stitched**: it has a `Generated` span from
    /// its origin *and* spans from at least one other node.
    pub fn is_stitched(&self) -> bool {
        let generated_at_origin = self
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Generated && s.node == self.origin);
        generated_at_origin && self.spans.iter().any(|s| s.node != self.origin)
    }

    /// Timestamp of the first `Generated` span, if any.
    pub fn generated_at(&self) -> Option<u64> {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Generated)
            .map(|s| s.ts_micros)
            .min()
    }

    /// Latest `Committed` timestamp if at least `quorum` distinct nodes
    /// committed the block — the "committed everywhere" instant.
    pub fn committed_everywhere(&self, quorum: usize) -> Option<u64> {
        let mut commits: Vec<(u32, u64)> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Committed)
            .map(|s| (s.node, s.ts_micros))
            .collect();
        commits.sort_unstable();
        commits.dedup_by_key(|(node, _)| *node);
        if commits.len() >= quorum.max(1) {
            commits.iter().map(|&(_, ts)| ts).max()
        } else {
            None
        }
    }
}

/// One ring cell: a seqlock version word plus the span fields.
///
/// `version` is even when the cell is stable and odd while a writer owns
/// it; `version / 2` counts completed writes, so 0 means "never written".
#[derive(Debug)]
struct Cell {
    version: AtomicU64,
    slot: AtomicU64,
    origin_node: AtomicU64, // origin in the high 32 bits, node in the low
    prefix: AtomicU64,
    kind: AtomicU64,
    ts_micros: AtomicU64,
}

impl Cell {
    fn new() -> Self {
        Cell {
            version: AtomicU64::new(0),
            slot: AtomicU64::new(0),
            origin_node: AtomicU64::new(0),
            prefix: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            ts_micros: AtomicU64::new(0),
        }
    }

    fn write(&self, span: &SpanEvent) {
        // Take the cell: odd version tells readers a write is in flight.
        self.version.fetch_add(1, Ordering::AcqRel);
        self.slot.store(span.slot, Ordering::Relaxed);
        self.origin_node.store(
            (u64::from(span.origin) << 32) | u64::from(span.node),
            Ordering::Relaxed,
        );
        self.prefix.store(span.prefix, Ordering::Relaxed);
        self.kind.store(span.kind.as_u64(), Ordering::Relaxed);
        self.ts_micros.store(span.ts_micros, Ordering::Relaxed);
        // Release the cell: back to even.
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// A consistent read, or `None` if the cell is empty or a concurrent
    /// writer kept moving it (bounded retries — the snapshot is advisory).
    fn read(&self) -> Option<SpanEvent> {
        for _ in 0..8 {
            let before = self.version.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                if before == 0 {
                    return None;
                }
                std::hint::spin_loop();
                continue;
            }
            let slot = self.slot.load(Ordering::Relaxed);
            let origin_node = self.origin_node.load(Ordering::Relaxed);
            let prefix = self.prefix.load(Ordering::Relaxed);
            let kind = self.kind.load(Ordering::Relaxed);
            let ts_micros = self.ts_micros.load(Ordering::Relaxed);
            if self.version.load(Ordering::Acquire) == before {
                return Some(SpanEvent {
                    slot,
                    origin: (origin_node >> 32) as u32,
                    prefix,
                    node: (origin_node & 0xffff_ffff) as u32,
                    kind: SpanKind::from_u64(kind)?,
                    ts_micros,
                });
            }
        }
        None
    }
}

/// A lock-free bounded span store: the per-node trace ring behind `/trace`.
#[derive(Debug)]
pub struct SpanStore {
    cells: Vec<Cell>,
    head: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

/// Default ring capacity: roomy enough for every span of a few hundred
/// slots on a small cluster.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

impl SpanStore {
    /// A store holding at most `capacity` spans. Capacity 0 disables the
    /// store: every record is counted in [`SpanStore::dropped`] instead.
    pub fn bounded(capacity: usize) -> Self {
        SpanStore {
            cells: (0..capacity).map(|_| Cell::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// An inert store (capacity 0) for tracing-off runs.
    pub fn disabled() -> Self {
        Self::bounded(0)
    }

    /// Whether this store records anything at all.
    pub fn is_enabled(&self) -> bool {
        !self.cells.is_empty()
    }

    /// Records one span. Never blocks; overwrites the oldest span when the
    /// ring is full (counted in [`SpanStore::evicted`]).
    pub fn record(&self, span: SpanEvent) {
        if self.cells.is_empty() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.cells.len() as u64 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        let idx = (ticket % self.cells.len() as u64) as usize;
        self.cells[idx].write(&span);
    }

    /// Spans recorded against a disabled store.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Live spans overwritten because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// A consistent best-effort copy of the ring, oldest span first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        if self.cells.is_empty() {
            return Vec::new();
        }
        let head = self.head.load(Ordering::Acquire);
        let cap = self.cells.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            .filter_map(|ticket| self.cells[(ticket % cap) as usize].read())
            .collect()
    }

    /// Snapshot grouped into per-block timelines, ordered by
    /// `(slot, origin, prefix)`.
    pub fn timelines(&self) -> Vec<BlockTimeline> {
        build_timelines(&self.snapshot())
    }
}

/// Groups spans (possibly merged from several nodes' stores) into per-block
/// timelines, ordered by `(slot, origin, prefix)`; spans within a timeline
/// are sorted by timestamp, then lifecycle order, then node.
pub fn build_timelines(spans: &[SpanEvent]) -> Vec<BlockTimeline> {
    let mut by_key: std::collections::BTreeMap<BlockKey, Vec<SpanEvent>> =
        std::collections::BTreeMap::new();
    for span in spans {
        by_key
            .entry((span.slot, span.origin, span.prefix))
            .or_default()
            .push(*span);
    }
    by_key
        .into_iter()
        .map(|((slot, origin, prefix), mut spans)| {
            spans.sort_by_key(|s| (s.ts_micros, s.kind.as_u64(), s.node));
            spans.dedup();
            BlockTimeline {
                slot,
                origin,
                prefix,
                spans,
            }
        })
        .collect()
}

/// Renders one span as a JSON object.
pub fn span_json(span: &SpanEvent) -> String {
    format!(
        "{{\"slot\":{},\"origin\":{},\"prefix\":\"{:016x}\",\"node\":{},\
\"kind\":\"{}\",\"ts_micros\":{}}}",
        span.slot,
        span.origin,
        span.prefix,
        span.node,
        span.kind.code(),
        span.ts_micros
    )
}

/// Renders a full `/trace` response: store counters plus per-block
/// timelines assembled from `spans`.
pub fn trace_json(node: u32, spans: &[SpanEvent], dropped: u64, evicted: u64) -> String {
    let timelines = build_timelines(spans);
    let mut out = String::with_capacity(256 + spans.len() * 96);
    out.push_str(&format!(
        "{{\"node\":{node},\"spans\":{},\"dropped\":{dropped},\"evicted\":{evicted},\
\"timelines\":[",
        spans.len()
    ));
    for (i, t) in timelines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"slot\":{},\"origin\":{},\"prefix\":\"{:016x}\",\"nodes\":{},\
\"stitched\":{},\"spans\":[",
            t.slot,
            t.origin,
            t.prefix,
            t.node_count(),
            t.is_stitched()
        ));
        for (j, s) in t.spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&span_json(s));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Microseconds since the UNIX epoch — the span timestamp source. Spans
/// from different processes on one host compare directly.
pub fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(slot: u64, origin: u32, prefix: u64, node: u32, kind: SpanKind, ts: u64) -> SpanEvent {
        SpanEvent {
            slot,
            origin,
            prefix,
            node,
            kind,
            ts_micros: ts,
        }
    }

    #[test]
    fn record_and_snapshot_in_order() {
        let store = SpanStore::bounded(16);
        for i in 0..5u64 {
            store.record(span(i, 0, i, 0, SpanKind::Generated, 100 + i));
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].slot, 0);
        assert_eq!(snap[4].slot, 4);
        assert_eq!(store.dropped(), 0);
        assert_eq!(store.evicted(), 0);
        assert_eq!(store.recorded(), 5);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let store = SpanStore::bounded(4);
        for i in 0..10u64 {
            store.record(span(i, 0, i, 0, SpanKind::Generated, i));
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].slot, 6, "oldest surviving span");
        assert_eq!(snap[3].slot, 9);
        assert_eq!(store.evicted(), 6);
        assert_eq!(store.dropped(), 0);
    }

    #[test]
    fn disabled_store_counts_drops() {
        let store = SpanStore::disabled();
        assert!(!store.is_enabled());
        store.record(span(0, 0, 0, 0, SpanKind::Generated, 0));
        store.record(span(1, 0, 0, 0, SpanKind::Committed, 1));
        assert_eq!(store.dropped(), 2);
        assert!(store.snapshot().is_empty());
        assert!(store.timelines().is_empty());
    }

    #[test]
    fn timelines_group_and_stitch_across_nodes() {
        let store = SpanStore::bounded(64);
        // Block (3, origin 0, prefix 0xaa): generated on 0, received and
        // verified on 1 and 2, committed on all three.
        store.record(span(3, 0, 0xaa, 0, SpanKind::Generated, 10));
        store.record(span(3, 0, 0xaa, 0, SpanKind::GossipedOut, 11));
        store.record(span(3, 0, 0xaa, 1, SpanKind::Received, 12));
        store.record(span(3, 0, 0xaa, 2, SpanKind::Received, 13));
        store.record(span(3, 0, 0xaa, 1, SpanKind::Verified, 14));
        for node in 0..3 {
            store.record(span(
                3,
                0,
                0xaa,
                node,
                SpanKind::Committed,
                20 + u64::from(node),
            ));
        }
        // An unrelated local-only block.
        store.record(span(3, 1, 0xbb, 1, SpanKind::Generated, 10));

        let timelines = store.timelines();
        assert_eq!(timelines.len(), 2);
        let t = &timelines[0];
        assert_eq!((t.slot, t.origin, t.prefix), (3, 0, 0xaa));
        assert_eq!(t.node_count(), 3);
        assert!(t.is_stitched());
        assert_eq!(t.generated_at(), Some(10));
        assert_eq!(t.committed_everywhere(3), Some(22));
        assert_eq!(t.committed_everywhere(4), None);
        assert!(!timelines[1].is_stitched(), "no remote span");
        // Spans are time-ordered.
        let ts: Vec<u64> = t.spans.iter().map(|s| s.ts_micros).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn concurrent_recording_never_yields_torn_spans() {
        let store = std::sync::Arc::new(SpanStore::bounded(128));
        let mut handles = Vec::new();
        for node in 0..4u32 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    // Encode node+i into every field so a torn read would
                    // produce an inconsistent tuple.
                    let tag = u64::from(node) * 1000 + i;
                    store.record(SpanEvent {
                        slot: tag,
                        origin: node,
                        prefix: tag,
                        node,
                        kind: SpanKind::Received,
                        ts_micros: tag,
                    });
                }
            }));
        }
        for _ in 0..50 {
            for s in store.snapshot() {
                assert_eq!(s.slot, s.prefix, "torn span: {s:?}");
                assert_eq!(s.ts_micros, s.slot);
                assert_eq!(u64::from(s.origin), s.slot / 1000);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.recorded(), 2000);
        assert_eq!(store.evicted(), 2000 - 128);
    }

    #[test]
    fn trace_json_is_wellformed() {
        let spans = vec![
            span(1, 0, 0xdead, 0, SpanKind::Generated, 5),
            span(1, 0, 0xdead, 1, SpanKind::Received, 6),
        ];
        let json = trace_json(7, &spans, 1, 2);
        assert!(json.starts_with("{\"node\":7,"));
        assert!(json.contains("\"dropped\":1"));
        assert!(json.contains("\"evicted\":2"));
        assert!(json.contains("\"prefix\":\"000000000000dead\""));
        assert!(json.contains("\"kind\":\"gen\""));
        assert!(json.contains("\"stitched\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn unix_micros_is_monotonic_enough() {
        let a = unix_micros();
        let b = unix_micros();
        assert!(b >= a);
        assert!(a > 1_000_000_000_000_000, "post-2001 epoch micros");
    }
}
