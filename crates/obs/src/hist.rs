//! Lock-free log-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] spreads microsecond values over power-of-two
//! buckets: value `v` lands in the bucket indexed by `v`'s bit length, so
//! bucket `i` (for `i ≥ 1`) covers `[2^(i-1), 2^i - 1]` and bucket 0 holds
//! exact zeros. Recording is two relaxed `fetch_add`s and one relaxed
//! `fetch_max` — cheap enough for a per-slot hot path — and never blocks a
//! concurrent [`LatencyHistogram::snapshot`].
//!
//! Quantiles come from the snapshot by walking cumulative bucket counts
//! and returning the crossing bucket's *upper* bound: the estimate is
//! always `≥` the true quantile and `< 2×` it (one bucket of resolution),
//! which the property tests in `tests/hist_props.rs` pin down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: bit lengths 0 (zero) through 64 (`u64::MAX`).
const BUCKETS: usize = 65;

/// Bit length of `v` — the bucket index.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` in microseconds.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free latency histogram with logarithmic (power-of-two) buckets.
///
/// All counters are relaxed atomics: this is statistics, not
/// synchronization, and torn cross-counter reads only cost a snapshot a
/// sub-microsecond skew.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records one observed duration (saturating to whole microseconds).
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Times `f` and records its wall-clock latency.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let started = std::time::Instant::now();
        let out = f();
        self.record(started.elapsed());
        out
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
            count += *slot;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_micros: u64,
    /// Largest observation in microseconds (exact, not bucketed).
    pub max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The non-empty buckets as `(inclusive_upper_micros, count)` pairs in
    /// ascending bound order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in microseconds: the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation, so the
    /// estimate is `≥` the true quantile and within one power-of-two of it.
    /// Returns 0 for an empty histogram.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper(i).min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Median estimate in microseconds.
    pub fn p50(&self) -> u64 {
        self.quantile_micros(0.50)
    }

    /// 90th-percentile estimate in microseconds.
    pub fn p90(&self) -> u64 {
        self.quantile_micros(0.90)
    }

    /// 99th-percentile estimate in microseconds.
    pub fn p99(&self) -> u64 {
        self.quantile_micros(0.99)
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one (aggregating nodes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// The slot loop's instrumented phases, in engine execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Phase 1: block generation.
    Generate,
    /// Phase 2: cross-shard digest exchange (barrier wait on the wire).
    Exchange,
    /// Phase 3: digest gossip.
    Gossip,
    /// Phase 4: PoP verification workload.
    Verify,
    /// Phase 5: commit point (durability sync).
    Commit,
}

impl Phase {
    /// Every phase, in execution order.
    pub const ALL: [Phase; 5] = [
        Phase::Generate,
        Phase::Exchange,
        Phase::Gossip,
        Phase::Verify,
        Phase::Commit,
    ];

    /// The phase's label in metric names and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generate => "generate",
            Phase::Exchange => "exchange",
            Phase::Gossip => "gossip",
            Phase::Verify => "verify",
            Phase::Commit => "commit",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Generate => 0,
            Phase::Exchange => 1,
            Phase::Gossip => 2,
            Phase::Verify => 3,
            Phase::Commit => 4,
        }
    }
}

/// One latency histogram per slot-loop phase, shareable behind an `Arc`.
#[derive(Debug, Default)]
pub struct PhaseTimings {
    hists: [LatencyHistogram; 5],
}

impl PhaseTimings {
    /// Empty timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram of one phase.
    pub fn phase(&self, phase: Phase) -> &LatencyHistogram {
        &self.hists[phase.index()]
    }

    /// Records one observation for `phase`.
    pub fn record(&self, phase: Phase, elapsed: Duration) {
        self.phase(phase).record(elapsed);
    }

    /// Times `f` under `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        self.phase(phase).time(f)
    }

    /// Snapshots every phase in execution order.
    pub fn snapshot(&self) -> Vec<(Phase, HistogramSnapshot)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phase(p).snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max_micros, 0);
        assert_eq!(s.buckets().count(), 0);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value is within its bucket's bounds.
        for v in [0u64, 1, 2, 5, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record_micros(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_micros, 1100);
        assert_eq!(s.max_micros, 1000);
        // p50's rank-3 observation is 30 → bucket upper 31.
        assert_eq!(s.p50(), 31);
        // The top quantile is clamped to the exact max.
        assert_eq!(s.quantile_micros(1.0), 1000);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_micros(5);
        b.record_micros(500);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_micros, 505);
        assert_eq!(s.max_micros, 500);
    }

    #[test]
    fn phase_timings_round_trip() {
        let t = PhaseTimings::new();
        t.record(Phase::Verify, Duration::from_micros(250));
        let got = t.time(Phase::Commit, || 7);
        assert_eq!(got, 7);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 5);
        let verify = snap
            .iter()
            .find(|(p, _)| *p == Phase::Verify)
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!(verify.count, 1);
        assert_eq!(verify.max_micros, 250);
        assert_eq!(t.phase(Phase::Commit).snapshot().count, 1);
        assert_eq!(t.phase(Phase::Generate).snapshot().count, 0);
    }
}
