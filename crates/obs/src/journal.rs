//! The structured event journal: a bounded ring of protocol events.
//!
//! One event model serves both execution styles:
//!
//! * the simulator's `Trace` (single-threaded, `&mut self`) stores
//!   [`JournalEvent`]s directly, and
//! * the wire runtime's [`Journal`] wraps the same ring in a mutex so the
//!   slot loop, dispatcher thread, and metrics listener can all touch it.
//!
//! Events carry a monotonically increasing sequence number, a
//! milliseconds-since-journal-creation timestamp (0 in the simulator,
//! which has no wall clock), the protocol slot, an [`EventKind`], and a
//! free-form message. The JSONL dump (`/journal` on the metrics endpoint)
//! emits one `{"seq":…,"ts_ms":…,"slot":…,"kind":…,"msg":…}` object per
//! line, oldest first, preceded by nothing — a dropped-count is exposed as
//! a metric, not a line.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Category of a journaled event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Block generated.
    Generate,
    /// Digest transmitted/received.
    Digest,
    /// PoP request/response activity.
    Pop,
    /// Blacklist/ban activity.
    Penalty,
    /// Membership change (join/leave/eviction).
    Membership,
    /// Slot loop entered a new slot.
    SlotStart,
    /// Slot committed (durability sync done).
    Commit,
    /// Request retry fired.
    Retry,
    /// A request or barrier timed out.
    Timeout,
    /// A cooperative pruned miss (retention budgets in action).
    Pruned,
    /// Anything else.
    Other,
}

impl EventKind {
    /// Short code used in rendered transcripts and the JSONL dump.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Generate => "gen",
            EventKind::Digest => "dig",
            EventKind::Pop => "pop",
            EventKind::Penalty => "pen",
            EventKind::Membership => "mem",
            EventKind::SlotStart => "slt",
            EventKind::Commit => "cmt",
            EventKind::Retry => "rty",
            EventKind::Timeout => "tmo",
            EventKind::Pruned => "prn",
            EventKind::Other => "oth",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One journaled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotonic sequence number (survives ring eviction).
    pub seq: u64,
    /// Milliseconds since the journal was created (0 in the simulator).
    pub ts_ms: u64,
    /// Slot at which the event occurred.
    pub slot: u64,
    /// Category.
    pub kind: EventKind,
    /// Human-readable description.
    pub message: String,
}

/// Renders events as a readable transcript — the format the simulator's
/// `Trace::render` has always used: a dropped-count banner, then one
/// `[ slot] kind message` line per event.
pub fn render_events<'a>(
    events: impl IntoIterator<Item = &'a JournalEvent>,
    dropped: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if dropped > 0 {
        let _ = writeln!(out, "… {dropped} earlier events dropped …");
    }
    for e in events {
        let _ = writeln!(out, "[{:>5}] {} {}", e.slot, e.kind, e.message);
    }
    out
}

/// Escapes a string into a JSON string literal (quotes included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One event as a single-line JSON object.
pub fn event_json(e: &JournalEvent) -> String {
    format!(
        "{{\"seq\":{},\"ts_ms\":{},\"slot\":{},\"kind\":\"{}\",\"msg\":{}}}",
        e.seq,
        e.ts_ms,
        e.slot,
        e.kind,
        json_escape(&e.message)
    )
}

/// Renders events as JSONL, oldest first, one object per line.
pub fn events_jsonl<'a>(events: impl IntoIterator<Item = &'a JournalEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

struct Ring {
    events: VecDeque<JournalEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A thread-safe bounded event journal for the wire runtime.
///
/// Recording takes a short mutex critical section (push + maybe pop) —
/// journal events are per-slot and per-membership-change, not per-datagram,
/// so this is far off the hot path.
pub struct Journal {
    capacity: usize,
    inner: Mutex<Ring>,
    epoch: Instant,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl Journal {
    /// A journal keeping only the most recent `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Journal {
            capacity,
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// Records an event, evicting the oldest past the capacity bound.
    pub fn record(&self, slot: u64, kind: EventKind, message: impl Into<String>) {
        if self.capacity == 0 {
            return;
        }
        let ts_ms = self.epoch.elapsed().as_millis() as u64;
        let mut inner = self.inner.lock().expect("journal poisoned");
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(JournalEvent {
            seq,
            ts_ms,
            slot,
            kind,
            message: message.into(),
        });
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal poisoned").events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }

    /// A copy of the retained events in arrival order.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner
            .lock()
            .expect("journal poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// The retained events as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        events_jsonl(&self.events())
    }

    /// Renders a readable transcript (dropped banner + one line per event).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("journal poisoned");
        render_events(inner.events.iter(), inner.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_evicts_oldest_and_keeps_seq() {
        let j = Journal::bounded(3);
        for i in 0..10u64 {
            j.record(i, EventKind::Pop, format!("e{i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let events = j.events();
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[0].slot, 7);
        assert_eq!(events[2].seq, 9);
        assert!(j.render().contains("7 earlier events dropped"));
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let j = Journal::bounded(8);
        j.record(3, EventKind::Membership, "n9 \"joined\"\nline2");
        let jsonl = j.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"seq\":0,"));
        assert!(line.contains("\"kind\":\"mem\""));
        assert!(line.contains("\\\"joined\\\"\\nline2"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn zero_capacity_journal_is_inert() {
        let j = Journal::bounded(0);
        j.record(0, EventKind::Other, "ignored");
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn render_matches_trace_format() {
        let j = Journal::bounded(4);
        j.record(12, EventKind::Membership, "n9 joined");
        assert!(j.render().contains("[   12] mem n9 joined"));
    }
}
