//! Prometheus-style text exposition: builder and parser.
//!
//! The builder emits the classic text format — `# TYPE` comments, then
//! `name{label="value"} number` sample lines — for counters, gauges, and
//! histograms (cumulative `_bucket{le="…"}` series plus `_sum`/`_count`).
//! Histogram bounds are inclusive upper bounds in microseconds, taken from
//! [`HistogramSnapshot::buckets`]; empty buckets are elided (cumulative
//! counts stay correct).
//!
//! The parser ([`parse_exposition`]) is the scraper's half: it turns the
//! text back into [`Sample`]s, and [`histogram_quantile`] re-estimates
//! quantiles from scraped `_bucket` series — what `tldag status` uses to
//! show phase latencies without shipping raw histograms around.

use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// A builder for the Prometheus-style text exposition format.
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl Expo {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            fmt_labels(labels),
            fmt_value(value)
        );
    }

    /// Emits one unlabeled counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// Emits one counter family with several labeled series.
    pub fn counter_series(&mut self, name: &str, help: &str, series: &[(&[(&str, &str)], u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in series {
            self.sample(name, labels, *value as f64);
        }
    }

    /// Emits one unlabeled gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Emits one gauge family with several labeled series.
    pub fn gauge_series(&mut self, name: &str, help: &str, series: &[(&[(&str, &str)], f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in series {
            self.sample(name, labels, *value);
        }
    }

    /// Emits one histogram family: per series, cumulative
    /// `name_bucket{…,le="…"}` lines (non-empty buckets plus `+Inf`), then
    /// `name_sum` and `name_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&[(&str, &str)], &HistogramSnapshot)],
    ) {
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let sum = format!("{name}_sum");
        let count = format!("{name}_count");
        for (labels, snap) in series {
            let mut cumulative = 0u64;
            for (upper, n) in snap.buckets() {
                cumulative += n;
                if upper == u64::MAX {
                    // Covered by the +Inf line below.
                    continue;
                }
                let le = upper.to_string();
                let mut with_le: Vec<(&str, &str)> = labels.to_vec();
                with_le.push(("le", le.as_str()));
                self.sample(&bucket, &with_le, cumulative as f64);
            }
            let mut inf: Vec<(&str, &str)> = labels.to_vec();
            inf.push(("le", "+Inf"));
            self.sample(&bucket, &inf, snap.count as f64);
            self.sample(&sum, labels, snap.sum_micros as f64);
            self.sample(&count, labels, snap.count as f64);
        }
    }

    /// The assembled exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every `(key, value)` pair in `filter` is present.
    pub fn has_labels(&self, filter: &[(&str, &str)]) -> bool {
        filter.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

fn parse_label_block(block: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: unquoted label value"))?;
        // Scan for the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        value.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start_matches(',');
    }
    Ok(labels)
}

/// Parses Prometheus-style exposition text into samples, skipping comments
/// and blank lines.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.find(char::is_whitespace) {
            // A label block may contain spaces inside quoted values; split
            // at the whitespace after the closing brace instead when the
            // name carries labels.
            Some(_) if line.contains('{') => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label block"))?;
                (&line[..=close], line[close + 1..].trim())
            }
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => return Err(format!("line {line_no}: sample without a value")),
        };
        let (name, labels) = match name_part.find('{') {
            Some(open) => {
                let close = name_part
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label block"))?;
                (
                    name_part[..open].to_string(),
                    parse_label_block(&name_part[open + 1..close], line_no)?,
                )
            }
            None => (name_part.to_string(), Vec::new()),
        };
        if name.is_empty() {
            return Err(format!("line {line_no}: empty metric name"));
        }
        let value = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {line_no}: bad value {v:?}"))?,
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Finds the first sample named `name` whose labels include all of
/// `labels`, returning its value.
pub fn sample_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.has_labels(labels))
        .map(|s| s.value)
}

/// Estimates the `q`-quantile of a scraped histogram from its cumulative
/// `<name>_bucket` series (filtered by `labels`), in the unit of the `le`
/// bounds. Returns `None` when the series is absent or empty.
pub fn histogram_quantile(
    samples: &[Sample],
    name: &str,
    labels: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket_name = format!("{name}_bucket");
    let mut buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name && s.has_labels(labels))
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().ok()?
            };
            Some((bound, s.value))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = buckets.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
    let mut best_finite = 0.0f64;
    for &(bound, cumulative) in &buckets {
        if bound.is_finite() {
            best_finite = bound;
        }
        if cumulative >= rank {
            return Some(if bound.is_finite() {
                bound
            } else {
                best_finite
            });
        }
    }
    Some(best_finite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn builder_output_parses_back() {
        let h = LatencyHistogram::new();
        for v in [3u64, 9, 200] {
            h.record_micros(v);
        }
        let snap = h.snapshot();
        let mut expo = Expo::new();
        expo.counter("tldag_test_total", "a counter", 42);
        expo.gauge("tldag_test_gauge", "a gauge", 1.5);
        expo.counter_series(
            "tldag_net",
            "labeled counters",
            &[(&[("counter", "datagrams_sent")], 7)],
        );
        expo.histogram(
            "tldag_test_micros",
            "a histogram",
            &[(&[("phase", "verify")], &snap)],
        );
        let text = expo.finish();
        let samples = parse_exposition(&text).expect("parses");
        assert_eq!(sample_value(&samples, "tldag_test_total", &[]), Some(42.0));
        assert_eq!(sample_value(&samples, "tldag_test_gauge", &[]), Some(1.5));
        assert_eq!(
            sample_value(&samples, "tldag_net", &[("counter", "datagrams_sent")]),
            Some(7.0)
        );
        assert_eq!(
            sample_value(&samples, "tldag_test_micros_count", &[("phase", "verify")]),
            Some(3.0)
        );
        assert_eq!(
            sample_value(&samples, "tldag_test_micros_sum", &[("phase", "verify")]),
            Some(212.0)
        );
        // The scraped-quantile estimate equals the snapshot's estimate.
        let q = histogram_quantile(&samples, "tldag_test_micros", &[("phase", "verify")], 0.5)
            .expect("median");
        assert_eq!(q as u64, snap.quantile_micros(0.5));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_value_here").is_err());
        assert!(parse_exposition("name{unterminated 3").is_err());
        assert!(parse_exposition("name not_a_number").is_err());
        assert!(parse_exposition("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn quantile_of_missing_series_is_none() {
        let samples = parse_exposition("other_bucket{le=\"+Inf\"} 0").unwrap();
        assert_eq!(histogram_quantile(&samples, "missing", &[], 0.5), None);
        assert_eq!(histogram_quantile(&samples, "other", &[], 0.5), None);
    }
}
