//! A dependency-free HTTP/1.0 text responder and its matching client.
//!
//! [`HttpServer`] is the `--metrics-addr` listener: a single thread
//! accepting plain `TcpListener` connections, reading one `GET` request,
//! and answering from a caller-supplied route function. It speaks just
//! enough HTTP for `curl`, Prometheus, and the `tldag status` scraper —
//! `HTTP/1.0`, `Connection: close`, text bodies.
//!
//! [`http_get`] is the one-shot client side used by the scraper and the
//! tests. Both halves are blocking; the server's accept loop polls a
//! non-blocking listener so shutdown needs no self-connection trick.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A route function: maps a request path (e.g. `/metrics`) to
/// `(content_type, body)`, or `None` for 404.
pub type Routes = dyn Fn(&str) -> Option<(String, String)> + Send + Sync;

/// A tiny blocking HTTP/1.0 server on a dedicated thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn serve_connection(mut stream: TcpStream, routes: &Routes) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read until the end of the request head (or a modest cap — these are
    // one-line GETs from curl/Prometheus/our own scraper).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" || path.is_empty() {
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        );
        return;
    }
    // Ignore any query string: /metrics?x=y serves /metrics.
    let path = path.split('?').next().unwrap_or(path);
    match routes(path) {
        Some((content_type, body)) => respond(&mut stream, "200 OK", &content_type, &body),
        None => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

impl HttpServer {
    /// Binds `listen` (port 0 picks an ephemeral port) and starts the
    /// accept loop on a new thread.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn spawn(listen: SocketAddr, routes: Arc<Routes>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        serve_connection(stream, routes.as_ref());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound listening address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Fetches `http://{addr}{path}` and returns the response body.
///
/// # Errors
///
/// Connection/read failures, and non-200 responses (reported with their
/// status line).
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::other(format!("HTTP error: {status_line}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> HttpServer {
        HttpServer::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::new(|path: &str| match path {
                "/metrics" => Some(("text/plain; version=0.0.4".into(), "up 1\n".into())),
                _ => None,
            }),
        )
        .expect("bind")
    }

    #[test]
    fn serves_known_route() {
        let server = test_server();
        let body = http_get(server.addr(), "/metrics", Duration::from_secs(2)).expect("get");
        assert_eq!(body, "up 1\n");
        server.shutdown();
    }

    #[test]
    fn unknown_route_is_a_clean_404() {
        let server = test_server();
        let err = http_get(server.addr(), "/nope", Duration::from_secs(2)).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        // The server keeps serving after an error response.
        let body = http_get(server.addr(), "/metrics?scrape=1", Duration::from_secs(2))
            .expect("query strings are stripped");
        assert_eq!(body, "up 1\n");
    }
}
