//! Baseline costs: one PBFT consensus round (message-driven cluster), the
//! aggregate-accounted PBFT slot, and IOTA tip selection + attach.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tldag_baselines::iota::{select_tips, IotaNetwork, Tangle, TipSelection};
use tldag_baselines::pbft::{BlockMeta, PbftCluster, PbftNetwork};
use tldag_baselines::BaselineConfig;
use tldag_crypto::Digest;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng, NodeId};

fn bench_pbft_cluster_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft_cluster_round");
    for n in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = BaselineConfig::test_default();
            let mut tag = 0u64;
            b.iter(|| {
                let mut cluster = PbftCluster::new(cfg, n);
                tag += 1;
                let mut digest = [0u8; 32];
                digest[..8].copy_from_slice(&tag.to_be_bytes());
                let block = BlockMeta {
                    proposer: NodeId(1),
                    slot: 0,
                    digest: Digest::from_bytes(digest),
                    bits: Bits::from_bytes(128),
                };
                black_box(cluster.submit(NodeId(1), block))
            });
        });
    }
    group.finish();
}

fn bench_pbft_network_slot(c: &mut Criterion) {
    let topo =
        Topology::random_connected(&TopologyConfig::paper_default(), &mut DetRng::seed_from(4));
    let mut net = PbftNetwork::new(BaselineConfig::test_default(), topo, 4);
    c.bench_function("pbft_network_slot_50_nodes", |b| {
        b.iter(|| {
            net.step();
            black_box(net.blocks_committed())
        });
    });
}

fn bench_iota_tip_selection(c: &mut Criterion) {
    let mut tangle = Tangle::new(Bits::from_bytes(100));
    let mut rng = DetRng::seed_from(5);
    for i in 0..2000u32 {
        let parents = select_tips(&tangle, TipSelection::UniformRandom, 2, &mut rng);
        tangle.attach(
            NodeId(i % 50),
            u64::from(i / 50),
            parents,
            Bits::from_bytes(100),
        );
    }
    let mut group = c.benchmark_group("iota_tip_selection_2000tx");
    group.bench_function("uniform", |b| {
        let mut rng = DetRng::seed_from(6);
        b.iter(|| select_tips(black_box(&tangle), TipSelection::UniformRandom, 2, &mut rng));
    });
    group.bench_function("weighted_walk", |b| {
        let mut rng = DetRng::seed_from(7);
        b.iter(|| {
            select_tips(
                black_box(&tangle),
                TipSelection::WeightedWalk { alpha: 0.05 },
                2,
                &mut rng,
            )
        });
    });
    group.finish();
}

fn bench_iota_network_slot(c: &mut Criterion) {
    let topo =
        Topology::random_connected(&TopologyConfig::paper_default(), &mut DetRng::seed_from(8));
    let mut net = IotaNetwork::new(BaselineConfig::test_default(), topo, 8);
    c.bench_function("iota_network_slot_50_nodes", |b| {
        b.iter(|| {
            net.step();
            black_box(net.tangle().len())
        });
    });
}

criterion_group!(
    benches,
    bench_pbft_cluster_round,
    bench_pbft_network_slot,
    bench_iota_tip_selection,
    bench_iota_network_slot
);
criterion_main!(benches);
