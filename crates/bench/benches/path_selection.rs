//! WPS/TPS micro-costs: next-hop selection over growing neighborhoods and
//! trust-cache extension over growing caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use tldag_core::block::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag_core::config::ProtocolConfig;
use tldag_core::pop::{tps, wps};
use tldag_core::store::{TrustCache, TrustedHeader};
use tldag_crypto::schnorr::KeyPair;
use tldag_crypto::Digest;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{DetRng, NodeId};

fn bench_wps(c: &mut Criterion) {
    let mut group = c.benchmark_group("wps_select_next");
    for n in [10usize, 50, 200] {
        let topo = Topology::random_connected(
            &TopologyConfig {
                nodes: n,
                side_m: 400.0,
                ..TopologyConfig::paper_default()
            },
            &mut DetRng::seed_from(1),
        );
        let candidates: Vec<NodeId> = topo.neighbors(NodeId(0)).to_vec();
        let ri: HashSet<NodeId> = (0..n as u32 / 4).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            let mut rng = DetRng::seed_from(2);
            b.iter(|| wps::select_next(black_box(topo), black_box(&candidates), &ri, &mut rng));
        });
    }
    group.finish();
}

fn chain_cache(cfg: &ProtocolConfig, len: usize) -> (TrustCache, Digest) {
    let kp = KeyPair::from_seed(9);
    let root = Digest::from_bytes([7; 32]);
    let mut cache = TrustCache::new();
    let mut parent = root;
    for i in 0..len {
        let block = DataBlock::create(
            cfg,
            BlockId::new(NodeId(i as u32 % 16), i as u32 / 16),
            i as u64,
            vec![DigestEntry {
                origin: NodeId((i as u32).wrapping_sub(1) % 16),
                digest: parent,
            }],
            BlockBody::new(vec![i as u8], cfg.body_bits),
            &kp,
        );
        parent = block.header_digest();
        cache.insert(TrustedHeader {
            owner: block.id.owner,
            block_id: block.id,
            header: block.header,
        });
    }
    (cache, root)
}

fn bench_tps(c: &mut Criterion) {
    let cfg = ProtocolConfig::test_default();
    let mut group = c.benchmark_group("tps_extend");
    for len in [16usize, 128, 1024] {
        let (cache, root) = chain_cache(&cfg, len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &cache, |b, cache| {
            let skip = HashSet::new();
            b.iter(|| tps::extend(black_box(cache), black_box(&root), &skip, 64));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wps, bench_tps);
criterion_main!(benches);
