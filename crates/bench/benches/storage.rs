//! Micro-benchmarks for the `tldag-storage` durable engine: append
//! throughput (the block-generation hot path), indexed lookups, and reopen
//! (crash-recovery) cost with and without a snapshot.
//!
//! The acceptance bar for the engine is ≥ 100k appended blocks/s in release
//! mode — check the `storage_append` throughput column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use tldag_core::config::ProtocolConfig;
use tldag_core::store::BlockBackend;
use tldag_core::{BlockBody, BlockId, DataBlock, DigestEntry};
use tldag_crypto::schnorr::KeyPair;
use tldag_crypto::Digest;
use tldag_sim::NodeId;
use tldag_storage::{DurableStore, StorageOptions};

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tldag-bench-storage-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pre-mines `n` chain blocks (mining and signing stay outside the timed
/// loops; the engine sees finished blocks).
fn make_blocks(n: u32) -> Vec<DataBlock> {
    let cfg = ProtocolConfig::test_default();
    let kp = KeyPair::from_seed(1);
    let mut prev: Option<Digest> = None;
    (0..n)
        .map(|seq| {
            let digests = prev
                .map(|digest| {
                    vec![DigestEntry {
                        origin: NodeId(1),
                        digest,
                    }]
                })
                .unwrap_or_default();
            let block = DataBlock::create(
                &cfg,
                BlockId::new(NodeId(1), seq),
                u64::from(seq),
                digests,
                BlockBody::new(vec![seq as u8; 64], cfg.body_bits),
                &kp,
            );
            prev = Some(block.header_digest());
            block
        })
        .collect()
}

fn opts() -> StorageOptions {
    StorageOptions::default()
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_append");
    group.sample_size(10);
    for n in [1_000u32, 10_000] {
        let blocks = make_blocks(n);
        let dir = scratch(&format!("append-{n}"));
        group.throughput(Throughput::Elements(u64::from(n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &blocks, |b, blocks| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                let mut store = DurableStore::open(&dir, opts()).unwrap();
                for block in blocks {
                    store.append(black_box(block.clone())).unwrap();
                }
                store.sync().unwrap();
                black_box(store.len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let n = 20_000u32;
    let blocks = make_blocks(n);
    let dir = scratch("lookup");
    let mut store = DurableStore::open(&dir, opts()).unwrap();
    for block in &blocks {
        store.append(block.clone()).unwrap();
    }
    store.sync().unwrap();
    let digests: Vec<Digest> = blocks.iter().map(|b| b.header_digest()).collect();

    let mut group = c.benchmark_group("storage_lookup");
    group.throughput(Throughput::Elements(1));
    let mut seq = 0u32;
    group.bench_function("get_by_seq", |b| {
        b.iter(|| {
            seq = (seq + 7919) % n;
            black_box(store.get(black_box(seq)).unwrap().id)
        });
    });
    let mut i = 0usize;
    group.bench_function("get_by_digest", |b| {
        b.iter(|| {
            i = (i + 7919) % digests.len();
            black_box(store.by_header_digest(black_box(&digests[i])).unwrap().id)
        });
    });
    group.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_reopen(c: &mut Criterion) {
    let n = 20_000u32;
    let blocks = make_blocks(n);

    // One store whose index snapshot covers the whole log, one with the
    // snapshot removed so reopening must replay every record.
    let dir_snap = scratch("reopen-snap");
    let dir_scan = scratch("reopen-scan");
    for dir in [&dir_snap, &dir_scan] {
        let mut store = DurableStore::open(dir, opts()).unwrap();
        for block in &blocks {
            store.append(block.clone()).unwrap();
        }
        store.sync().unwrap();
        store.sync().unwrap(); // crosses snapshot_every and writes index.snap
    }
    let _ = std::fs::remove_file(dir_scan.join("index.snap"));

    let mut group = c.benchmark_group("storage_reopen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(n)));
    group.bench_with_input(BenchmarkId::new("snapshot", n), &dir_snap, |b, dir| {
        b.iter(|| {
            let store = DurableStore::open(dir, opts()).unwrap();
            assert_eq!(store.len() as u32, n);
            black_box(store.len())
        });
    });
    group.bench_with_input(BenchmarkId::new("full_scan", n), &dir_scan, |b, dir| {
        b.iter(|| {
            let store = DurableStore::open(dir, opts()).unwrap();
            assert_eq!(store.len() as u32, n);
            black_box(store.len())
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir_snap);
    let _ = std::fs::remove_dir_all(&dir_scan);
}

criterion_group!(benches, bench_append, bench_lookup, bench_reopen);
criterion_main!(benches);
