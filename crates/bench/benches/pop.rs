//! End-to-end Proof-of-Path cost at several consensus margins γ, on a warm
//! 2LDAG network — the protocol's reactive-verification cost in wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tldag_core::block::BlockId;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng, NodeId};

fn warm_network(gamma: usize) -> TldagNetwork {
    let nodes = 30;
    let topo = Topology::random_connected(
        &TopologyConfig {
            nodes,
            side_m: 400.0,
            ..TopologyConfig::paper_default()
        },
        &mut DetRng::seed_from(3),
    );
    let cfg = ProtocolConfig::paper_default()
        .with_body_bits(Bits::from_bytes(256).bits())
        .with_gamma(gamma)
        .with_difficulty(0);
    let mut net = TldagNetwork::new(cfg, topo, GenerationSchedule::uniform(nodes), 3);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(nodes as u64 + 40);
    net
}

fn bench_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("pop_verification");
    group.sample_size(20);
    for gamma in [4usize, 8, 12] {
        let mut net = warm_network(gamma);
        let target = BlockId::new(NodeId(5), 0);
        group.bench_with_input(BenchmarkId::new("gamma", gamma), &target, |b, &target| {
            b.iter(|| {
                let report = net.run_pop(NodeId(0), black_box(target), false);
                black_box(report.distinct_nodes)
            });
        });
    }
    group.finish();
}

fn bench_pop_with_warm_cache(c: &mut Criterion) {
    let mut net = warm_network(8);
    let target = BlockId::new(NodeId(5), 0);
    // A committed run populates the trust cache; later runs ride TPS.
    net.run_pop(NodeId(0), target, true);
    c.bench_function("pop_verification_warm_cache", |b| {
        b.iter(|| {
            let report = net.run_pop(NodeId(0), black_box(target), false);
            black_box(report.metrics.tps_extensions)
        });
    });
}

criterion_group!(benches, bench_pop, bench_pop_with_warm_cache);
criterion_main!(benches);
