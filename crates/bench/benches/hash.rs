//! Micro-benchmarks for the cryptographic substrate: SHA-256 throughput,
//! Merkle root construction, and Schnorr sign/verify — the per-block costs
//! underlying every 2LDAG operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tldag_crypto::merkle::{merkle_root, MerkleTree};
use tldag_crypto::schnorr::KeyPair;
use tldag_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for leaves in [8usize, 64, 512] {
        let data: Vec<Vec<u8>> = (0..leaves).map(|i| vec![i as u8; 64]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &data, |b, data| {
            b.iter(|| merkle_root(black_box(data.iter())));
        });
    }
    group.finish();
}

fn bench_merkle_proof(c: &mut Criterion) {
    let data: Vec<Vec<u8>> = (0..256usize).map(|i| vec![i as u8; 64]).collect();
    let tree = MerkleTree::build(data.iter());
    let root = tree.root();
    let proof = tree.proof(100).expect("index in range");
    c.bench_function("merkle_proof_verify_256", |b| {
        b.iter(|| black_box(&proof).verify(black_box(&root), black_box(&data[100])));
    });
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(1);
    let msg = [0x5au8; 32];
    c.bench_function("schnorr_sign", |b| {
        b.iter(|| kp.sign(black_box(&msg)));
    });
    let sig = kp.sign(&msg);
    c.bench_function("schnorr_verify", |b| {
        b.iter(|| kp.public().verify(black_box(&msg), black_box(&sig)));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_merkle_proof,
    bench_schnorr
);
criterion_main!(benches);
