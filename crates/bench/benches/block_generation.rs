//! Block-generation cost (Sec. III-D): Merkle root + nonce puzzle + signature
//! at several difficulty levels, plus digest-receipt bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tldag_core::config::ProtocolConfig;
use tldag_core::node::LedgerNode;
use tldag_sim::NodeId;

fn bench_generate_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_block");
    group.sample_size(30);
    for difficulty in [0u8, 4, 8] {
        let cfg = ProtocolConfig::test_default().with_difficulty(difficulty);
        group.bench_with_input(
            BenchmarkId::new("difficulty", difficulty),
            &cfg,
            |b, cfg| {
                let neighbors: Vec<NodeId> = (1..=4).map(NodeId).collect();
                let mut slot = 0u64;
                let mut node = LedgerNode::new(NodeId(0), neighbors, cfg);
                b.iter(|| {
                    let payload = vec![slot as u8; 64];
                    let block = node.generate_block(cfg, slot, black_box(payload)).unwrap();
                    slot += 1;
                    black_box(block.id)
                });
            },
        );
    }
    group.finish();
}

fn bench_receive_digest(c: &mut Criterion) {
    let cfg = ProtocolConfig::test_default();
    let mut node = LedgerNode::new(NodeId(0), vec![NodeId(1)], &cfg);
    let digest = tldag_crypto::sha256::sha256(b"neighbor header");
    c.bench_function("receive_digest", |b| {
        b.iter(|| {
            node.begin_slot();
            black_box(node.receive_digest(NodeId(1), black_box(digest)))
        });
    });
}

criterion_group!(benches, bench_generate_block, bench_receive_digest);
criterion_main!(benches);
