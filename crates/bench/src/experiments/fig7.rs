//! Fig. 7 — storage overhead.
//!
//! Panels (a)–(c): average per-node storage (MB, log scale in the paper)
//! versus elapsed slots for PBFT, IOTA, and 2LDAG at body sizes
//! `C ∈ {0.1, 0.5, 1}` MB, all nodes generating one block per slot.
//! Panel (d): the CDF of per-node storage at 200 slots for `C = 0.5` MB.

use crate::experiments::scale::Scale;
use tldag_baselines::iota::IotaNetwork;
use tldag_baselines::ledger::LedgerSim;
use tldag_baselines::pbft::PbftNetwork;
use tldag_baselines::BaselineConfig;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::metrics::SeriesSet;
use tldag_sim::stats::Cdf;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng};

/// Parameters of the Fig. 7 sweep.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Horizon in slots.
    pub slots: u64,
    /// Sampling interval.
    pub sample_every: u64,
    /// Body sizes in MB, one panel each.
    pub bodies_mb: Vec<f64>,
    /// Body size used for the CDF panel.
    pub cdf_body_mb: f64,
    /// Consensus margin for the 2LDAG runs.
    pub gamma: usize,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Root seed.
    pub seed: u64,
}

impl Fig7Config {
    /// Builds the configuration for a [`Scale`].
    pub fn at_scale(scale: Scale) -> Self {
        Fig7Config {
            nodes: scale.nodes(),
            slots: scale.slots(),
            sample_every: scale.sample_every(),
            bodies_mb: match scale {
                Scale::Paper => vec![0.1, 0.5, 1.0],
                Scale::Quick => vec![0.1, 0.5],
            },
            cdf_body_mb: 0.5,
            gamma: match scale {
                Scale::Paper => 16,
                Scale::Quick => 4,
            },
            topology: TopologyConfig {
                nodes: scale.nodes(),
                ..TopologyConfig::paper_default()
            },
            seed: 7,
        }
    }
}

/// One storage-vs-slots panel.
#[derive(Clone, Debug)]
pub struct Fig7Panel {
    /// Body size for this panel, in MB.
    pub c_mb: f64,
    /// Series keyed "PBFT" / "IOTA" / "2LDAG"; y = mean node storage (MB).
    pub series: SeriesSet,
}

/// The full Fig. 7 dataset.
#[derive(Clone, Debug)]
pub struct Fig7Data {
    /// Panels (a)–(c).
    pub panels: Vec<Fig7Panel>,
    /// Panel (d): per-node 2LDAG storage (MB) at the final slot.
    pub cdf: Cdf,
    /// Body size of the CDF panel.
    pub cdf_body_mb: f64,
}

/// Runs the sweep.
pub fn run(cfg: &Fig7Config) -> Fig7Data {
    let mut rng = DetRng::seed_from(cfg.seed);
    let topology = Topology::random_connected(&cfg.topology, &mut rng);
    let mut panels = Vec::new();
    let mut cdf_samples: Vec<f64> = Vec::new();

    for &c_mb in &cfg.bodies_mb {
        let body_bits = Bits::from_megabytes_f(c_mb).bits();
        let schedule = GenerationSchedule::uniform(cfg.nodes);

        let proto = ProtocolConfig::paper_default()
            .with_body_bits(body_bits)
            .with_gamma(cfg.gamma);
        let mut tldag = TldagNetwork::new(proto, topology.clone(), schedule.clone(), cfg.seed);
        let base = BaselineConfig::paper_default().with_body_bits(body_bits);
        let mut pbft = PbftNetwork::new(base, topology.clone(), cfg.seed);
        let mut iota = IotaNetwork::new(base, topology.clone(), cfg.seed);

        let mut series = SeriesSet::new();
        for slot in 1..=cfg.slots {
            LedgerSim::step(&mut tldag);
            LedgerSim::step(&mut pbft);
            LedgerSim::step(&mut iota);
            if slot % cfg.sample_every == 0 {
                series
                    .series_mut("PBFT")
                    .record(slot, pbft.mean_storage_mb());
                series
                    .series_mut("IOTA")
                    .record(slot, iota.mean_storage_mb());
                series
                    .series_mut("2LDAG")
                    .record(slot, tldag.mean_storage_mb());
            }
        }
        if (c_mb - cfg.cdf_body_mb).abs() < 1e-9 {
            cdf_samples = LedgerSim::storage_bits_per_node(&tldag)
                .iter()
                .map(|b| b.as_megabytes())
                .collect();
        }
        panels.push(Fig7Panel { c_mb, series });
    }

    Fig7Data {
        panels,
        cdf: Cdf::from_samples(cdf_samples),
        cdf_body_mb: cfg.cdf_body_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig7Config {
        Fig7Config {
            nodes: 8,
            slots: 12,
            sample_every: 4,
            bodies_mb: vec![0.1],
            cdf_body_mb: 0.1,
            gamma: 2,
            topology: TopologyConfig::small(8),
            seed: 3,
        }
    }

    #[test]
    fn storage_orders_match_paper_shape() {
        let data = run(&tiny());
        assert_eq!(data.panels.len(), 1);
        let series = &data.panels[0].series;
        let last = |name: &str| series.series(name).unwrap().last().unwrap().1;
        let (pbft, iota, tldag) = (last("PBFT"), last("IOTA"), last("2LDAG"));
        // Replicated ledgers store ~|V|× more than 2LDAG.
        assert!(pbft > tldag * 4.0, "PBFT {pbft} vs 2LDAG {tldag}");
        assert!(iota > tldag * 4.0, "IOTA {iota} vs 2LDAG {tldag}");
    }

    #[test]
    fn storage_grows_linearly_in_slots() {
        let data = run(&tiny());
        let series = data.panels[0].series.series("2LDAG").unwrap();
        let points = series.points();
        assert!(points.len() >= 3);
        let (s1, v1) = points[0];
        let (s2, v2) = points[points.len() - 1];
        let per_slot_early = v1 / s1 as f64;
        let per_slot_late = v2 / s2 as f64;
        // Per-slot growth is nearly constant (headers + H_i add slack).
        assert!((per_slot_late / per_slot_early - 1.0).abs() < 0.25);
    }

    #[test]
    fn cdf_is_tight_around_mean() {
        let data = run(&tiny());
        let (lo, hi) = data.cdf.range().unwrap();
        // The paper observes 199–201 MB at 200 slots: neighbor-count only
        // perturbs header bytes, so spread ≪ mean.
        assert!(hi - lo < 0.2 * hi, "spread [{lo}, {hi}] too wide");
    }
}
