//! Table 1 — the abstract's headline claims, measured.
//!
//! *"2LDAG has storage and communication cost that is respectively two and
//! three orders of magnitude lower than traditional blockchain and also
//! blockchains that use a DAG structure. Moreover, 2LDAG achieves consensus
//! even when 49 % of nodes are malicious."*

use crate::experiments::scale::Scale;
use tldag_baselines::iota::IotaNetwork;
use tldag_baselines::ledger::LedgerSim;
use tldag_baselines::pbft::PbftNetwork;
use tldag_baselines::BaselineConfig;
use tldag_core::attack::Behavior;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::bus::TrafficClass;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::fault::{FaultPlan, MaliciousPlacement};
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng};

/// Per-system measurements at the end of the run.
#[derive(Clone, Debug)]
pub struct SystemRow {
    /// System name.
    pub name: String,
    /// Mean per-node storage in MB.
    pub storage_mb: f64,
    /// Mean per-node transmitted Mb (protocol traffic).
    pub comm_mb: f64,
}

/// The headline summary.
#[derive(Clone, Debug)]
pub struct SummaryData {
    /// Rows for 2LDAG, PBFT, IOTA.
    pub rows: Vec<SystemRow>,
    /// log10 of PBFT/2LDAG and IOTA/2LDAG storage ratios.
    pub storage_orders: (f64, f64),
    /// log10 of PBFT/2LDAG and IOTA/2LDAG communication ratios.
    pub comm_orders: (f64, f64),
    /// PoP success rate with 49 % malicious nodes, over the whole run.
    pub success_rate_49pct: f64,
    /// Slots simulated.
    pub slots: u64,
}

/// Runs the headline comparison.
pub fn run(scale: Scale) -> SummaryData {
    let nodes = scale.nodes();
    let slots = scale.slots();
    let seed = 21;
    let body = Bits::from_megabytes_f(0.5).bits();
    let mut rng = DetRng::seed_from(seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes,
            // Keep density comparable to the paper's 50-node cluster (mean
            // degree ≈ 11-19) when running the reduced sweep: the 49 %
            // resilience claim needs the honest subgraph to stay connected.
            side_m: if nodes < 30 { 150.0 } else { 1000.0 },
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let schedule = GenerationSchedule::uniform(nodes);
    let gamma = ((nodes as f64 * 0.33).round() as usize).max(1);

    let proto = ProtocolConfig::paper_default()
        .with_body_bits(body)
        .with_gamma(gamma);
    let mut tldag = TldagNetwork::new(proto, topology.clone(), schedule.clone(), seed);
    tldag.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: nodes as u64,
    });
    let base = BaselineConfig::paper_default().with_body_bits(body);
    let mut pbft = PbftNetwork::new(base, topology.clone(), seed);
    let mut iota = IotaNetwork::new(base, topology.clone(), seed);

    for _ in 0..slots {
        LedgerSim::step(&mut tldag);
        pbft.step();
        iota.step();
    }

    let tldag_comm = tldag
        .accounting()
        .mean_node_tx(TrafficClass::DagConstruction)
        .as_megabits()
        + tldag
            .accounting()
            .mean_node_tx(TrafficClass::Consensus)
            .as_megabits();
    let rows = vec![
        SystemRow {
            name: "2LDAG".into(),
            storage_mb: tldag.mean_storage_mb(),
            comm_mb: tldag_comm,
        },
        SystemRow {
            name: "PBFT".into(),
            storage_mb: pbft.storage_bits_per_node()[0].as_megabytes(),
            comm_mb: pbft
                .accounting()
                .mean_node_tx(TrafficClass::Pbft)
                .as_megabits(),
        },
        SystemRow {
            name: "IOTA".into(),
            storage_mb: iota.storage_bits_per_node()[0].as_megabytes(),
            comm_mb: iota
                .accounting()
                .mean_node_tx(TrafficClass::IotaGossip)
                .as_megabits(),
        },
    ];

    // 49 %-malicious consensus capability. Floor keeps the margin feasible:
    // gamma + 1 distinct path nodes must exist among nodes - gamma honest ones.
    let gamma49 = ((nodes as f64 * 0.49).floor() as usize).min((nodes - 1) / 2);
    let proto49 = ProtocolConfig::paper_default()
        .with_body_bits(Bits::from_bytes(512).bits()) // sizes don't matter here
        .with_gamma(gamma49);
    let mut net49 = TldagNetwork::new(proto49, topology.clone(), schedule, seed + 1);
    net49.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: nodes as u64,
    });
    let plan = FaultPlan::select(
        &topology,
        gamma49,
        MaliciousPlacement::Uniform,
        &mut rng.fork(49),
    );
    net49.apply_fault_plan(&plan, Behavior::Unresponsive);
    // Longer horizon: the paper's Fig. 9(d) shows γ=24 needs ~120+ slots.
    for _ in 0..(slots * 2) {
        net49.step();
    }
    let (attempts, successes) = net49.pop_counters();
    let success_rate_49pct = if attempts == 0 {
        0.0
    } else {
        successes as f64 / attempts as f64
    };

    let order = |a: f64, b: f64| (a / b).log10();
    SummaryData {
        storage_orders: (
            order(rows[1].storage_mb, rows[0].storage_mb),
            order(rows[2].storage_mb, rows[0].storage_mb),
        ),
        comm_orders: (
            order(rows[1].comm_mb, rows[0].comm_mb),
            order(rows[2].comm_mb, rows[0].comm_mb),
        ),
        rows,
        success_rate_49pct,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape_holds_at_quick_scale() {
        let data = run(Scale::Quick);
        assert_eq!(data.rows.len(), 3);
        // Replicated ledgers cost roughly |V|× in storage (≈1.2 orders at 16
        // nodes, ≈1.7 at 50); the ratio must be at least one order even at
        // quick scale.
        assert!(data.storage_orders.0 > 0.9, "{:?}", data.storage_orders);
        assert!(data.storage_orders.1 > 0.9);
        // Communication separation is stronger (body flooding vs digests).
        assert!(data.comm_orders.0 > 1.5, "{:?}", data.comm_orders);
        assert!(data.comm_orders.1 > 1.5);
        // Consensus still succeeds with ~49 % malicious nodes. Success is
        // path-dependent at small scale; require a meaningful rate, not
        // perfection (the paper's own gamma = 24 needs 120+ slots).
        assert!(
            data.success_rate_49pct > 0.2,
            "49% success rate {}",
            data.success_rate_49pct
        );
    }
}
