//! `fig12_churn`: dynamic membership over a *real* (lossy) socket path.
//!
//! The paper's Sec. VII names nodes joining and leaving mid-run as the
//! IoT deployment's normal operating condition; DAG-ledger work aimed at
//! the same setting (DLedger, Cullen et al.) treats churn as the default,
//! not a fault. This experiment measures the wire runtime's membership
//! control plane under both churn *and* injected datagram loss: for each
//! churn level (number of scheduled late joins + graceful leaves) a full
//! in-process cluster of [`NetNode`] runtimes executes the schedule over
//! fault-injecting transports ([`tldag_net::FaultyTransport`]), with PoP
//! verification on, and reports
//!
//! * **PoP completion** — verifications that reached consensus over the
//!   lossy wire, against the in-memory engine's count on the identical
//!   schedule (the reactive protocol's headline),
//! * **catch-up latency** — wall-clock from a joiner's first `JoinReq`
//!   to being announced and slot-ready (the membership plane's cost), and
//! * **digest parity** — whether the wire cluster still reproduced the
//!   engine's `network_digest` byte-for-byte through the churn.

use crate::Scale;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_net::harness::replay_reference_schedule;
use tldag_net::membership::{validate_churn, ChurnEvent};
use tldag_net::runtime::{
    deployment_protocol_config, deployment_topology, network_digest_of, NodeOutcome,
};
use tldag_net::telemetry::{scrape_metrics, StatusRow};
use tldag_net::{FaultSpec, NetNode, NetNodeConfig, NetStats};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// One churn level of the sweep: how many late joins and graceful leaves
/// the schedule contains.
#[derive(Clone, Copy, Debug)]
pub struct ChurnLevel {
    /// Late joiners (spawned mid-run, bootstrapped via the handshake).
    pub joins: usize,
    /// Graceful leavers (founders departing before the horizon).
    pub leaves: usize,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Founding nodes.
    pub founders: usize,
    /// Protocol horizon in slots.
    pub slots: u64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Injected datagram drop probability (duplication/reordering scaled
    /// off it, see [`FaultSpec::degraded`]).
    pub loss: f64,
    /// Churn levels to sweep.
    pub levels: Vec<ChurnLevel>,
}

impl ChurnConfig {
    /// Sweep sized for `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => ChurnConfig {
                founders: 6,
                slots: 16,
                gamma: 3,
                seed: 42,
                loss: 0.05,
                levels: vec![
                    ChurnLevel {
                        joins: 0,
                        leaves: 0,
                    },
                    ChurnLevel {
                        joins: 1,
                        leaves: 0,
                    },
                    ChurnLevel {
                        joins: 1,
                        leaves: 1,
                    },
                    ChurnLevel {
                        joins: 2,
                        leaves: 2,
                    },
                    ChurnLevel {
                        joins: 3,
                        leaves: 3,
                    },
                ],
            },
            Scale::Quick => ChurnConfig {
                founders: 4,
                slots: 10,
                gamma: 3,
                seed: 42,
                loss: 0.05,
                levels: vec![
                    ChurnLevel {
                        joins: 0,
                        leaves: 0,
                    },
                    ChurnLevel {
                        joins: 1,
                        leaves: 1,
                    },
                    ChurnLevel {
                        joins: 2,
                        leaves: 1,
                    },
                ],
            },
        }
    }

    /// The deterministic schedule for one churn level: joins spread from
    /// slot 2 on (consecutive ids past the founders), leaves walking back
    /// from two slots before the horizon (sparing founder 0, the
    /// bootstrap).
    pub fn schedule(&self, level: ChurnLevel) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for j in 0..level.joins {
            events.push(ChurnEvent::Join {
                id: NodeId((self.founders + j) as u32),
                slot: 2 + j as u64,
            });
        }
        for l in 0..level.leaves {
            events.push(ChurnEvent::Leave {
                id: NodeId(1 + l as u32),
                slot: self.slots - 2 - l as u64,
            });
        }
        events.sort_by_key(|e| (e.slot(), matches!(e, ChurnEvent::Join { .. }), e.id().0));
        events
    }
}

/// One mid-run telemetry sample: the cluster's aggregated state as seen
/// by scraping every live node's `/metrics` endpoint while slots advance.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSample {
    /// Highest slot any scraped node was executing.
    pub slot: u64,
    /// Nodes that answered the scrape.
    pub nodes: u64,
    /// Blocks across all answering chains.
    pub chain_total: u64,
    /// PoP verifications attempted so far (sum).
    pub pop_attempts: u64,
    /// PoP verifications completed so far (sum).
    pub pop_successes: u64,
    /// Request retransmissions so far (sum).
    pub retries: u64,
}

/// Measurements at one churn level.
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// Late joins in the schedule.
    pub joins: usize,
    /// Graceful leaves in the schedule.
    pub leaves: usize,
    /// PoP runs attempted across the wire cluster.
    pub pop_attempts: u64,
    /// PoP runs that reached consensus.
    pub pop_successes: u64,
    /// The reference engine's (attempts, successes) on the same schedule.
    pub reference_pop: (u64, u64),
    /// Mean joiner catch-up latency (handshake → announced), ms.
    pub mean_catch_up_ms: f64,
    /// Worst joiner catch-up latency, ms.
    pub max_catch_up_ms: f64,
    /// Whether the wire `network_digest` matched the engine's.
    pub parity: bool,
    /// Nodes that proceeded past a timed-out barrier.
    pub degraded_nodes: u64,
    /// Request retransmissions across every endpoint.
    pub retries: u64,
    /// Datagrams sent across every endpoint.
    pub datagrams: u64,
    /// Wall-clock for the whole cluster run, ms.
    pub wall_ms: f64,
    /// Transport counters merged across every node's report.
    pub net: NetStats,
    /// Mid-run telemetry time series, oldest first (scraped from the live
    /// nodes' metrics endpoints while the cluster ran).
    pub samples: Vec<ChurnSample>,
}

impl ChurnPoint {
    /// Fraction of PoP runs that reached consensus.
    pub fn completion(&self) -> f64 {
        if self.pop_attempts == 0 {
            0.0
        } else {
            self.pop_successes as f64 / self.pop_attempts as f64
        }
    }
}

/// The sweep output.
#[derive(Clone, Debug)]
pub struct ChurnData {
    /// One point per churn level, in sweep order.
    pub points: Vec<ChurnPoint>,
}

/// Discovers `n` distinct loopback UDP ports by binding and releasing.
fn discover_ports(n: usize) -> Vec<std::net::SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

/// The engine reference for one schedule: same seed, same membership,
/// replayed through the same helper the cluster harness uses — one
/// definition of the reference, no drift between the two parity checks.
fn reference_run(config: &ChurnConfig, events: &[ChurnEvent]) -> TldagNetwork {
    let topology = deployment_topology(config.seed, config.founders, 300.0);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(cfg, topology, schedule, config.seed);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: config.founders as u64,
    });
    replay_reference_schedule(
        &mut net,
        events,
        &[],
        config.founders,
        config.seed,
        config.slots,
    );
    net
}

/// Discovers `n` distinct loopback TCP ports for the metrics listeners
/// (bound together then released, like [`discover_ports`]).
fn discover_tcp_ports(n: usize) -> Vec<std::net::SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind metrics probe"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("metrics probe addr"))
        .collect()
}

/// Runs one in-process wire cluster over lossy transports and returns the
/// per-node outcomes in id order, plus the mid-run telemetry samples a
/// scraper thread collected from the nodes' metrics endpoints while the
/// cluster ran.
fn wire_run(config: &ChurnConfig, events: &[ChurnEvent]) -> (Vec<NodeOutcome>, Vec<ChurnSample>) {
    let joins = events
        .iter()
        .filter(|e| matches!(e, ChurnEvent::Join { .. }))
        .count();
    let total = config.founders + joins;
    let addrs = discover_ports(total);
    let metrics_addrs = discover_tcp_ports(total);

    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = (0..total)
        .map(|i| {
            let id = NodeId(i as u32);
            let mut node_config =
                NetNodeConfig::new(id, addrs[i], config.seed, config.founders, config.slots);
            node_config.gamma = config.gamma;
            node_config.pop = true;
            node_config.churn = events.to_vec();
            // The runtime derives each node's fault stream from (seed, id),
            // so the loss pattern is deterministic yet uncorrelated across
            // nodes; the protocol seed stays shared for parity.
            node_config.fault = Some(FaultSpec::degraded(config.loss));
            node_config.endpoint.request_timeout = std::time::Duration::from_millis(40);
            node_config.endpoint.max_retries = 8;
            node_config.endpoint.max_backoff = std::time::Duration::from_millis(300);
            node_config.slot_timeout = std::time::Duration::from_secs(20);
            node_config.hello_timeout = std::time::Duration::from_secs(20);
            node_config.linger = std::time::Duration::from_millis(2500);
            node_config.metrics_addr = Some(metrics_addrs[i]);
            if i >= config.founders {
                node_config.join = Some(addrs[0]);
            } else {
                node_config.peers = (0..config.founders)
                    .filter(|&j| j != i)
                    .map(|j| (NodeId(j as u32), addrs[j]))
                    .collect();
            }
            std::thread::spawn(move || {
                NetNode::new(node_config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();
    // Scrape the live cluster while it runs: the same path `tldag status`
    // takes, reduced to one aggregated sample per sweep.
    let stop = Arc::new(AtomicBool::new(false));
    let samples: Arc<Mutex<Vec<ChurnSample>>> = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        let targets = metrics_addrs.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(120));
                let rows: Vec<StatusRow> = targets
                    .iter()
                    .filter_map(|addr| {
                        scrape_metrics(*addr, Duration::from_millis(300))
                            .ok()
                            .map(|s| StatusRow::from_samples(addr.to_string(), &s))
                    })
                    .collect();
                if !rows.is_empty() {
                    samples.lock().expect("samples poisoned").push(ChurnSample {
                        slot: rows.iter().map(|r| r.slot).max().unwrap_or(0),
                        nodes: rows.len() as u64,
                        chain_total: rows.iter().map(|r| r.chain_len).sum(),
                        pop_attempts: rows.iter().map(|r| r.pop_attempts).sum(),
                        pop_successes: rows.iter().map(|r| r.pop_successes).sum(),
                        retries: rows.iter().map(|r| r.request_retries).sum(),
                    });
                }
            }
        })
    };
    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread panicked");
    outcomes.sort_by_key(|o| o.run.node.0);
    let samples = samples.lock().expect("samples poisoned").clone();
    (outcomes, samples)
}

/// Runs the sweep.
pub fn run(config: &ChurnConfig) -> ChurnData {
    let mut points = Vec::with_capacity(config.levels.len());
    for &level in &config.levels {
        let events = config.schedule(level);
        validate_churn(&events, config.founders, config.slots).expect("generated schedule");
        let reference = reference_run(config, &events);

        let started = Instant::now();
        let (outcomes, samples) = wire_run(config, &events);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let wire_digest = network_digest_of(
            &outcomes
                .iter()
                .map(|o| o.run.chain_digest)
                .collect::<Vec<_>>(),
        );
        let catch_ups: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.run.catch_up_ms > 0)
            .map(|o| o.run.catch_up_ms as f64)
            .collect();
        let mean_catch_up = if catch_ups.is_empty() {
            0.0
        } else {
            catch_ups.iter().sum::<f64>() / catch_ups.len() as f64
        };
        points.push(ChurnPoint {
            joins: level.joins,
            leaves: level.leaves,
            pop_attempts: outcomes.iter().map(|o| o.run.pop_attempts).sum(),
            pop_successes: outcomes.iter().map(|o| o.run.pop_successes).sum(),
            reference_pop: reference.pop_counters(),
            mean_catch_up_ms: mean_catch_up,
            max_catch_up_ms: catch_ups.iter().cloned().fold(0.0, f64::max),
            parity: wire_digest == reference.network_digest(),
            degraded_nodes: outcomes.iter().filter(|o| o.run.degraded).count() as u64,
            retries: outcomes.iter().map(|o| o.stats.request_retries).sum(),
            datagrams: outcomes.iter().map(|o| o.stats.datagrams_sent).sum(),
            wall_ms,
            net: outcomes.iter().fold(NetStats::default(), |mut acc, o| {
                acc.merge(&o.stats);
                acc
            }),
            samples,
        });
    }
    ChurnData { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_under_loss_keeps_parity_and_completes_pop() {
        let config = ChurnConfig {
            founders: 4,
            slots: 9,
            gamma: 2,
            seed: 13,
            loss: 0.08,
            levels: vec![ChurnLevel {
                joins: 1,
                leaves: 1,
            }],
        };
        let data = run(&config);
        let p = &data.points[0];
        assert!(p.parity, "churn + loss must not break digest parity");
        assert_eq!(
            (p.pop_attempts, p.pop_successes),
            p.reference_pop,
            "wire PoP counters must match the engine through churn"
        );
        assert!(
            p.mean_catch_up_ms > 0.0,
            "the joiner's catch-up latency must be measured"
        );
        assert_eq!(p.degraded_nodes, 0, "no barrier may time out at this loss");
    }
}
