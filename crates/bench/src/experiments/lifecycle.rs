//! `fig14_lifecycle`: end-to-end block latency from causal lifecycle
//! traces.
//!
//! The span store gives each block a wall-clock timeline across every
//! node — generated at the origin, received/verified at the remotes,
//! committed when each node closes the slot. This experiment measures the
//! distribution of **generate → committed-everywhere** latency (the
//! instant the *last* node of a full quorum committed the block) on an
//! in-process loopback cluster, under the lockstep runtime (`W = 1`) and
//! the pipelined runtime (`W = 8`).
//!
//! The interesting comparison: pipelining raises *throughput* (fig13) by
//! taking the barrier off the hot path, but an individual block's
//! commit-everywhere latency grows with pipeline depth — a slot closes
//! only when the verify worker catches up to it. This panel quantifies
//! that trade with p50/p99 quantiles over all fully-traced blocks, and
//! verifies on the way that tracing itself never perturbs the protocol
//! (digest parity against the reference engine must hold with the span
//! store enabled).

use crate::Scale;
use std::sync::Arc;
use std::time::Duration;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_net::harness::replay_reference_schedule;
use tldag_net::runtime::{
    deployment_protocol_config, deployment_topology, network_digest_of, NodeOutcome,
};
use tldag_net::telemetry::NodeTelemetry;
use tldag_net::{NetNode, NetNodeConfig};
use tldag_obs::{build_timelines, SpanEvent};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct LifecycleConfig {
    /// Nodes (= UDP endpoints, all founders).
    pub nodes: usize,
    /// Protocol horizon in slots.
    pub slots: u64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Pipeline windows to sweep; 1 = lockstep.
    pub windows: Vec<u64>,
}

impl LifecycleConfig {
    /// Sweep sized for `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => LifecycleConfig {
                nodes: 4,
                slots: 40,
                gamma: 3,
                seed: 42,
                windows: vec![1, 8],
            },
            Scale::Quick => LifecycleConfig {
                nodes: 3,
                slots: 18,
                gamma: 2,
                seed: 42,
                windows: vec![1, 8],
            },
        }
    }
}

/// Lifecycle-latency measurements at one window size.
#[derive(Clone, Copy, Debug)]
pub struct LifecyclePoint {
    /// The pipeline window (1 = lockstep).
    pub window: u64,
    /// Block timelines assembled from the merged span stores.
    pub timelines: u64,
    /// Timelines with spans from every node of the cluster.
    pub fully_stitched: u64,
    /// Timelines with a full-quorum committed-everywhere instant.
    pub committed: u64,
    /// Spans recorded across every node.
    pub spans: u64,
    /// Spans lost to ring eviction or contention across every node.
    pub dropped: u64,
    /// Median generate → committed-everywhere latency, µs.
    pub p50_us: u64,
    /// 99th-percentile generate → committed-everywhere latency, µs.
    pub p99_us: u64,
    /// Worst generate → committed-everywhere latency, µs.
    pub max_us: u64,
    /// Whether the traced cluster still reproduced the reference digest.
    pub parity: bool,
    /// PoP (attempts, successes) summed over the wire nodes.
    pub wire_pop: (u64, u64),
}

/// The sweep output.
#[derive(Clone, Debug)]
pub struct LifecycleData {
    /// One point per window, in sweep order.
    pub points: Vec<LifecyclePoint>,
    /// The reference engine's PoP counters (window-independent).
    pub reference_pop: (u64, u64),
}

fn discover_ports(n: usize) -> Vec<std::net::SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

fn reference_run(config: &LifecycleConfig) -> TldagNetwork {
    let topology = deployment_topology(config.seed, config.nodes, 300.0);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(cfg, topology, schedule, config.seed);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: config.nodes as u64,
    });
    replay_reference_schedule(&mut net, &[], &[], config.nodes, config.seed, config.slots);
    net
}

/// One traced in-process cluster run: per-node outcomes plus the
/// telemetry handles whose span stores outlive the runtimes.
fn wire_run(config: &LifecycleConfig, window: u64) -> Vec<(NodeOutcome, Arc<NodeTelemetry>)> {
    let addrs = discover_ports(config.nodes);
    let handles: Vec<std::thread::JoinHandle<(NodeOutcome, Arc<NodeTelemetry>)>> = (0..config
        .nodes)
        .map(|i| {
            let id = NodeId(i as u32);
            let mut node_config =
                NetNodeConfig::new(id, addrs[i], config.seed, config.nodes, config.slots);
            node_config.gamma = config.gamma;
            node_config.pop = true;
            node_config.window = window;
            node_config.trace = true;
            node_config.linger = Duration::from_millis(600);
            node_config.peers = (0..config.nodes)
                .filter(|&j| j != i)
                .map(|j| (NodeId(j as u32), addrs[j]))
                .collect();
            std::thread::spawn(move || {
                let node = NetNode::new(node_config).expect("node construction");
                let telemetry = node.telemetry();
                let outcome = node.run().expect("node run");
                (outcome, telemetry)
            })
        })
        .collect();
    let mut results: Vec<(NodeOutcome, Arc<NodeTelemetry>)> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    results.sort_by_key(|(o, _)| o.run.node.0);
    results
}

/// `q`-quantile of an unsorted latency sample (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the sweep.
pub fn run(config: &LifecycleConfig) -> LifecycleData {
    let reference = reference_run(config);
    let reference_digest = reference.network_digest();
    let reference_pop = reference.pop_counters();

    let mut points = Vec::with_capacity(config.windows.len());
    for &window in &config.windows {
        let results = wire_run(config, window);

        let wire_digest = network_digest_of(
            &results
                .iter()
                .map(|(o, _)| o.run.chain_digest)
                .collect::<Vec<_>>(),
        );
        let wire_pop = results.iter().fold((0, 0), |(a, s), (o, _)| {
            (a + o.run.pop_attempts, s + o.run.pop_successes)
        });

        // Merge every node's span store into one cross-node event set —
        // the same stitching `/trace` does per node, but cluster-wide.
        let merged: Vec<SpanEvent> = results
            .iter()
            .flat_map(|(_, t)| t.spans.snapshot())
            .collect();
        let spans = results.iter().map(|(_, t)| t.spans.recorded()).sum();
        let dropped = results
            .iter()
            .map(|(_, t)| t.spans.dropped() + t.spans.evicted())
            .sum();

        let timelines = build_timelines(&merged);
        let mut latencies: Vec<u64> = Vec::with_capacity(timelines.len());
        let mut fully_stitched = 0u64;
        for timeline in &timelines {
            if timeline.node_count() == config.nodes {
                fully_stitched += 1;
            }
            if let (Some(generated), Some(committed)) = (
                timeline.generated_at(),
                timeline.committed_everywhere(config.nodes),
            ) {
                latencies.push(committed.saturating_sub(generated));
            }
        }
        latencies.sort_unstable();

        points.push(LifecyclePoint {
            window,
            timelines: timelines.len() as u64,
            fully_stitched,
            committed: latencies.len() as u64,
            spans,
            dropped,
            p50_us: quantile(&latencies, 0.50),
            p99_us: quantile(&latencies, 0.99),
            max_us: latencies.last().copied().unwrap_or(0),
            parity: wire_digest == reference_digest,
            wire_pop,
        });
    }
    LifecycleData {
        points,
        reference_pop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_cluster_yields_quorum_committed_timelines_at_parity() {
        let config = LifecycleConfig {
            nodes: 3,
            slots: 10,
            gamma: 2,
            seed: 7,
            windows: vec![1],
        };
        let data = run(&config);
        assert_eq!(data.points.len(), 1);
        let p = &data.points[0];
        assert!(p.parity, "tracing must not perturb the protocol");
        assert_eq!(
            p.wire_pop, data.reference_pop,
            "traced cluster must match the engine's PoP counters"
        );
        assert_eq!(
            p.timelines,
            3 * 10,
            "every generated block must have a timeline"
        );
        assert!(
            p.committed >= p.timelines / 2,
            "most blocks must reach committed-everywhere, got {}/{}",
            p.committed,
            p.timelines
        );
        assert!(p.fully_stitched > 0, "cross-node stitching must happen");
        assert!(p.p50_us > 0, "commit-everywhere latency cannot be zero");
        assert!(p.p99_us >= p.p50_us);
        assert_eq!(p.dropped, 0, "this scale must fit the span ring");
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let sorted = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.99), 100);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.99), 7);
    }
}
