//! Sweep sizing: paper-scale vs quick (CI-friendly) runs.

/// How big an experiment sweep should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's settings: 50 nodes, up to 200 slots, full parameter grids.
    Paper,
    /// Reduced settings for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Resolves the scale from process arguments and environment:
    /// `--quick` or `TLDAG_QUICK=1` selects [`Scale::Quick`].
    pub fn from_env_args() -> Self {
        let quick_flag = std::env::args().any(|a| a == "--quick" || a == "-q");
        let quick_env = std::env::var("TLDAG_QUICK").is_ok_and(|v| v == "1" || v == "true");
        if quick_flag || quick_env {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Number of IoT nodes.
    pub fn nodes(self) -> usize {
        match self {
            Scale::Paper => 50,
            Scale::Quick => 16,
        }
    }

    /// Horizon in slots for the storage/communication sweeps.
    pub fn slots(self) -> u64 {
        match self {
            Scale::Paper => 200,
            Scale::Quick => 60,
        }
    }

    /// Sampling interval in slots.
    pub fn sample_every(self) -> u64 {
        match self {
            Scale::Paper => 25,
            Scale::Quick => 10,
        }
    }

    /// Independent seeds for probability estimates (Fig. 9).
    pub fn seeds(self) -> u64 {
        match self {
            Scale::Paper => 12,
            Scale::Quick => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_sec_vi() {
        assert_eq!(Scale::Paper.nodes(), 50);
        assert_eq!(Scale::Paper.slots(), 200);
        assert_eq!(Scale::Paper.sample_every(), 25);
    }

    #[test]
    fn quick_is_smaller_everywhere() {
        assert!(Scale::Quick.nodes() < Scale::Paper.nodes());
        assert!(Scale::Quick.slots() < Scale::Paper.slots());
        assert!(Scale::Quick.seeds() < Scale::Paper.seeds());
    }
}
