//! Ablations: the design choices DESIGN.md calls out.
//!
//! * **A1 — WPS vs random next-hop** (`ablation_wps`): does the weighted
//!   selection of Algorithm 1 shorten proof paths and cut messages?
//! * **A2 — TPS on vs off** (`ablation_tps`): how much do cached headers save
//!   across repeated verifications of the same region?
//! * **A3 — bounds** (`ablation_bounds`): measured message/storage overhead
//!   against the Proposition 1–6 analytic bounds.

use tldag_core::analysis;
use tldag_core::block::BlockId;
use tldag_core::config::{PathSelection, ProtocolConfig};
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng, NodeId};

/// Result of one path-selection strategy run.
#[derive(Clone, Debug)]
pub struct SelectionStats {
    /// Strategy label.
    pub label: String,
    /// PoP runs measured.
    pub runs: u64,
    /// Success count.
    pub successes: u64,
    /// Mean `REQ_CHILD` messages per successful run.
    pub mean_requests: f64,
    /// Mean path length per successful run.
    pub mean_path_len: f64,
    /// Mean rollbacks per run.
    pub mean_rollbacks: f64,
}

/// Shared scenario parameters for A1/A2.
#[derive(Clone, Copy, Debug)]
pub struct AblationConfig {
    /// Nodes in the network.
    pub nodes: usize,
    /// Warm-up slots before measuring.
    pub warmup_slots: u64,
    /// PoP probes measured.
    pub probes: usize,
    /// Consensus margin.
    pub gamma: usize,
    /// Seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Defaults sized for the paper topology.
    pub fn paper() -> Self {
        AblationConfig {
            nodes: 50,
            warmup_slots: 120,
            probes: 60,
            gamma: 12,
            seed: 17,
        }
    }

    /// Reduced run.
    pub fn quick() -> Self {
        AblationConfig {
            nodes: 14,
            warmup_slots: 40,
            probes: 20,
            gamma: 4,
            seed: 17,
        }
    }
}

fn build_network(cfg: &AblationConfig, selection: PathSelection, enable_tps: bool) -> TldagNetwork {
    let mut rng = DetRng::seed_from(cfg.seed);
    let topology = Topology::random_connected(
        &TopologyConfig {
            nodes: cfg.nodes,
            side_m: if cfg.nodes < 20 { 300.0 } else { 1000.0 },
            ..TopologyConfig::paper_default()
        },
        &mut rng,
    );
    let mut proto = ProtocolConfig::paper_default()
        .with_body_bits(Bits::from_bytes(512).bits())
        .with_gamma(cfg.gamma);
    proto.path_selection = selection;
    proto.enable_tps = enable_tps;
    let schedule = GenerationSchedule::uniform(cfg.nodes);
    let mut net = TldagNetwork::new(proto, topology, schedule, cfg.seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net
}

fn probe_targets(net: &TldagNetwork, count: usize, rng: &mut DetRng) -> Vec<(NodeId, BlockId)> {
    let n = net.topology().len() as u32;
    let horizon = net.slot().saturating_sub(n as u64);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let validator = NodeId(rng.next_below(u64::from(n)) as u32);
        let owner = loop {
            let o = NodeId(rng.next_below(u64::from(n)) as u32);
            if o != validator {
                break o;
            }
        };
        let max_seq = net
            .node(owner)
            .store()
            .iter()
            .filter(|b| b.header.time < horizon)
            .count() as u32;
        if max_seq == 0 {
            continue;
        }
        let seq = rng.next_below(u64::from(max_seq)) as u32;
        out.push((validator, BlockId::new(owner, seq)));
    }
    out
}

/// A1: WPS vs uniform-random next-hop selection.
pub fn run_wps_ablation(cfg: &AblationConfig) -> Vec<SelectionStats> {
    [
        ("WPS (Algorithm 1)", PathSelection::Weighted),
        ("random next-hop", PathSelection::Random),
    ]
    .into_iter()
    .map(|(label, selection)| {
        let mut net = build_network(cfg, selection, true);
        for _ in 0..cfg.warmup_slots {
            net.step();
        }
        let mut rng = DetRng::seed_from(cfg.seed ^ 0xabcd);
        let targets = probe_targets(&net, cfg.probes, &mut rng);
        let mut stats = SelectionStats {
            label: label.to_string(),
            runs: 0,
            successes: 0,
            mean_requests: 0.0,
            mean_path_len: 0.0,
            mean_rollbacks: 0.0,
        };
        let mut req_sum = 0u64;
        let mut len_sum = 0u64;
        let mut rb_sum = 0u64;
        for (validator, target) in targets {
            let report = net.run_pop(validator, target, false);
            stats.runs += 1;
            if report.is_success() {
                stats.successes += 1;
                req_sum += report.metrics.req_child_sent;
                len_sum += report.path.len() as u64;
            }
            rb_sum += report.metrics.rollbacks;
        }
        if stats.successes > 0 {
            stats.mean_requests = req_sum as f64 / stats.successes as f64;
            stats.mean_path_len = len_sum as f64 / stats.successes as f64;
        }
        if stats.runs > 0 {
            stats.mean_rollbacks = rb_sum as f64 / stats.runs as f64;
        }
        stats
    })
    .collect()
}

/// Result of the TPS ablation: message counts for repeated verification.
#[derive(Clone, Debug)]
pub struct TpsStats {
    /// "TPS enabled" / "TPS disabled".
    pub label: String,
    /// Requests in the first verification (cold cache).
    pub first_run_requests: u64,
    /// Mean requests across the repeat verifications.
    pub mean_repeat_requests: f64,
    /// Mean TPS extensions across repeats.
    pub mean_tps_extensions: f64,
}

/// A2: repeated verification of blocks in the same DAG region, with and
/// without the trust cache.
pub fn run_tps_ablation(cfg: &AblationConfig) -> Vec<TpsStats> {
    [true, false]
        .into_iter()
        .map(|enable_tps| {
            let mut net = build_network(cfg, PathSelection::Weighted, enable_tps);
            for _ in 0..cfg.warmup_slots {
                net.step();
            }
            // One validator repeatedly audits blocks of the same owner; the
            // verified headers overlap heavily, which is TPS's best case.
            let validator = NodeId(0);
            let owner = NodeId(1);
            let repeats = cfg.probes.min(net.node(owner).store().len() / 2).max(2);
            let mut first_run_requests = 0;
            let mut repeat_req_sum = 0u64;
            let mut tps_sum = 0u64;
            for (i, seq) in (0..repeats as u32).enumerate() {
                let report = net.run_pop(validator, BlockId::new(owner, seq), true);
                if i == 0 {
                    first_run_requests = report.metrics.req_child_sent;
                } else {
                    repeat_req_sum += report.metrics.req_child_sent;
                    tps_sum += report.metrics.tps_extensions;
                }
            }
            let denom = (repeats - 1).max(1) as f64;
            TpsStats {
                label: if enable_tps {
                    "TPS enabled".into()
                } else {
                    "TPS disabled".into()
                },
                first_run_requests,
                mean_repeat_requests: repeat_req_sum as f64 / denom,
                mean_tps_extensions: tps_sum as f64 / denom,
            }
        })
        .collect()
}

/// Result of the multi-hop accounting ablation (A4, the paper's Sec. VII
/// future-work quantification).
#[derive(Clone, Debug)]
pub struct MultihopStats {
    /// "endpoint" / "multi-hop".
    pub label: String,
    /// Mean per-node transmitted consensus traffic, megabits.
    pub mean_node_consensus_mb: f64,
    /// Network-wide consensus traffic, megabits.
    pub network_consensus_mb: f64,
    /// PoP success rate.
    pub success_rate: f64,
}

/// A4: endpoint-only vs shortest-physical-path accounting of PoP traffic.
/// The gap is the relay burden that the paper's proposed validator-to-
/// verifier routing optimisation would address.
pub fn run_multihop_ablation(cfg: &AblationConfig) -> Vec<MultihopStats> {
    [false, true]
        .into_iter()
        .map(|multihop| {
            let mut rng = DetRng::seed_from(cfg.seed);
            let topology = Topology::random_connected(
                &TopologyConfig {
                    nodes: cfg.nodes,
                    side_m: if cfg.nodes < 20 { 300.0 } else { 1000.0 },
                    ..TopologyConfig::paper_default()
                },
                &mut rng,
            );
            let mut proto = ProtocolConfig::paper_default()
                .with_body_bits(Bits::from_bytes(512).bits())
                .with_gamma(cfg.gamma);
            proto.multihop_accounting = multihop;
            let schedule = GenerationSchedule::uniform(cfg.nodes);
            let mut net = TldagNetwork::new(proto, topology, schedule, cfg.seed);
            net.set_verification_workload(tldag_core::workload::VerificationWorkload::RandomPast {
                min_age_slots: cfg.nodes as u64,
            });
            net.run_slots(cfg.warmup_slots + cfg.nodes as u64);
            let (attempts, successes) = net.pop_counters();
            let acc = net.accounting();
            MultihopStats {
                label: if multihop {
                    "multi-hop".into()
                } else {
                    "endpoint".into()
                },
                mean_node_consensus_mb: acc
                    .mean_node_tx(tldag_sim::bus::TrafficClass::Consensus)
                    .as_megabits(),
                network_consensus_mb: acc
                    .network_tx(tldag_sim::bus::TrafficClass::Consensus)
                    .as_megabits(),
                success_rate: if attempts == 0 {
                    0.0
                } else {
                    successes as f64 / attempts as f64
                },
            }
        })
        .collect()
}

/// One row of the bounds report (A3).
#[derive(Clone, Debug)]
pub struct BoundRow {
    /// Which proposition.
    pub proposition: String,
    /// Measured value.
    pub measured: f64,
    /// Analytic bound.
    pub bound: f64,
    /// Whether the bound holds.
    pub holds: bool,
}

/// A3: measured overhead vs Propositions 1–4 on an honest run.
pub fn run_bounds_check(cfg: &AblationConfig) -> Vec<BoundRow> {
    let mut net = build_network(cfg, PathSelection::Weighted, true);
    let schedule = GenerationSchedule::uniform(cfg.nodes);
    for _ in 0..cfg.warmup_slots {
        net.step();
    }
    let t = net.slot() - 1;
    let mut rows = Vec::new();

    // Prop. 1: total blocks.
    let measured_blocks = net.total_blocks() as f64;
    let predicted = analysis::prop1_total_blocks(&schedule, t) as f64;
    rows.push(BoundRow {
        proposition: "P1 total blocks (exact)".into(),
        measured: measured_blocks,
        bound: predicted,
        holds: (measured_blocks - predicted).abs() < f64::EPSILON,
    });

    // Prop. 2/3: storage at node 0 (probe PoPs populate H_0 first).
    let mut rng = DetRng::seed_from(cfg.seed ^ 0x77);
    for (validator, target) in probe_targets(&net, cfg.probes, &mut rng) {
        net.run_pop(validator, target, true);
        let _ = validator;
        let _ = target;
    }
    // Check the *heaviest* node against its per-node bounds, so the measured
    // value reflects real cache growth rather than an idle node.
    let cfg_proto = *net.config();
    let ids: Vec<NodeId> = net.topology().node_ids().collect();
    let heaviest_cache = ids
        .iter()
        .max_by_key(|&&id| net.node(id).trust_cache().logical_bits(&cfg_proto))
        .copied()
        .expect("network is non-empty");
    let h_bits = net
        .node(heaviest_cache)
        .trust_cache()
        .logical_bits(&cfg_proto);
    let h_bound =
        analysis::prop2_trust_cache_bound(&cfg_proto, &schedule, heaviest_cache, t, cfg.nodes);
    rows.push(BoundRow {
        proposition: "P2 trust-cache bits (max node)".into(),
        measured: h_bits.bits() as f64,
        bound: h_bound.bits() as f64,
        holds: h_bits <= h_bound,
    });
    let heaviest_store = ids
        .iter()
        .max_by_key(|&&id| net.node(id).storage_bits(&cfg_proto))
        .copied()
        .expect("network is non-empty");
    let s_bits = net.node(heaviest_store).storage_bits(&cfg_proto);
    let s_bound =
        analysis::prop3_storage_bound(&cfg_proto, &schedule, heaviest_store, t, cfg.nodes);
    rows.push(BoundRow {
        proposition: "P3 node storage bits (max node)".into(),
        measured: s_bits.bits() as f64,
        bound: s_bound.bits() as f64,
        holds: s_bits <= s_bound,
    });

    // Prop. 4: message lower bound with a cold cache.
    let mut cold = build_network(cfg, PathSelection::Weighted, true);
    for _ in 0..cfg.warmup_slots {
        cold.step();
    }
    // Prop. 4 presumes every path extension costs a message exchange, so
    // qualifying runs are those where neither the trust cache nor the
    // validator's own store contributed a step.
    let mut rng = DetRng::seed_from(cfg.seed ^ 0x99);
    let mut min_messages = u64::MAX;
    for (validator, target) in probe_targets(&cold, cfg.probes, &mut rng) {
        let report = cold.run_pop(validator, target, false);
        let pure =
            report.metrics.tps_extensions == 0 && report.path.iter().all(|s| s.owner != validator);
        if report.is_success() && pure {
            min_messages = min_messages.min(report.metrics.total_messages());
        }
    }
    let lower = analysis::prop4_message_lower_bound(cfg.gamma);
    if min_messages != u64::MAX {
        rows.push(BoundRow {
            proposition: "P4 min messages (cold cache)".into(),
            measured: min_messages as f64,
            bound: lower as f64,
            holds: min_messages >= lower,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wps_beats_random_on_requests() {
        let stats = run_wps_ablation(&AblationConfig::quick());
        assert_eq!(stats.len(), 2);
        let wps = &stats[0];
        let random = &stats[1];
        assert!(wps.successes > 0);
        assert!(
            wps.mean_requests <= random.mean_requests * 1.2,
            "WPS {} vs random {}",
            wps.mean_requests,
            random.mean_requests
        );
    }

    #[test]
    fn tps_saves_messages_on_repeats() {
        let stats = run_tps_ablation(&AblationConfig::quick());
        let enabled = &stats[0];
        let disabled = &stats[1];
        assert!(
            enabled.mean_repeat_requests < disabled.mean_repeat_requests,
            "TPS {} vs no-TPS {}",
            enabled.mean_repeat_requests,
            disabled.mean_repeat_requests
        );
        assert!(enabled.mean_tps_extensions > 0.0);
        assert_eq!(disabled.mean_tps_extensions, 0.0);
    }

    #[test]
    fn multihop_accounting_adds_relay_cost() {
        let stats = run_multihop_ablation(&AblationConfig::quick());
        let endpoint = &stats[0];
        let multihop = &stats[1];
        assert!(endpoint.network_consensus_mb > 0.0);
        assert!(
            multihop.network_consensus_mb >= endpoint.network_consensus_mb,
            "multihop {} vs endpoint {}",
            multihop.network_consensus_mb,
            endpoint.network_consensus_mb
        );
        // Accounting mode must not change protocol outcomes.
        assert!((endpoint.success_rate - multihop.success_rate).abs() < 1e-9);
    }

    #[test]
    fn all_bounds_hold() {
        for row in run_bounds_check(&AblationConfig::quick()) {
            assert!(
                row.holds,
                "{} violated: {} vs {}",
                row.proposition, row.measured, row.bound
            );
        }
    }
}
