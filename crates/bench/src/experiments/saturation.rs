//! `fig13_saturation`: the epoch-window pipeline's throughput headroom.
//!
//! The lockstep runtime (window = 1) ends every slot in a digest/done
//! barrier, so slot time is dominated by coordination, not work — the
//! bound DLedger (arXiv:1902.09031) removes by committing asynchronously
//! with lazy interest-based sync. This experiment measures exactly that
//! gap on loopback: for each pipeline window `W` an in-process cluster of
//! [`NetNode`] runtimes executes the same seeded schedule with PoP
//! verification on, and reports
//!
//! * **blocks/s** — cluster-wide generation throughput over the slot
//!   loop's critical path (the slowest node's `slot_loop_ms`, which
//!   excludes bootstrap and linger),
//! * **PoP/s** — verification throughput on the same denominator,
//! * **p50/p99 slot latency** — per-slot generation-to-verified latency
//!   from the merged node telemetry histograms (in pipelined mode this is
//!   true pipeline depth: a slot verifies several generations later), and
//! * **digest + PoP parity** — every window must still reproduce the
//!   in-memory engine byte-for-byte; the pipeline buys speed, not drift.
//!
//! The headline is `speedup`: blocks/s at window `W` relative to the
//! lockstep baseline of the same sweep.

use crate::Scale;
use std::time::{Duration, Instant};
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_net::harness::replay_reference_schedule;
use tldag_net::runtime::{
    deployment_protocol_config, deployment_topology, network_digest_of, NodeOutcome,
};
use tldag_net::{NetNode, NetNodeConfig};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SaturationConfig {
    /// Nodes (= UDP endpoints, all founders).
    pub nodes: usize,
    /// Protocol horizon in slots.
    pub slots: u64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Pipeline windows to sweep; include 1 for the lockstep baseline.
    pub windows: Vec<u64>,
}

impl SaturationConfig {
    /// Sweep sized for `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => SaturationConfig {
                nodes: 5,
                slots: 48,
                gamma: 3,
                seed: 42,
                windows: vec![1, 2, 4, 8],
            },
            Scale::Quick => SaturationConfig {
                nodes: 4,
                slots: 30,
                gamma: 3,
                seed: 42,
                windows: vec![1, 4],
            },
        }
    }
}

/// Measurements at one window size.
#[derive(Clone, Copy, Debug)]
pub struct SaturationPoint {
    /// The pipeline window (1 = lockstep baseline).
    pub window: u64,
    /// Blocks generated across the cluster (nodes × slots).
    pub blocks: u64,
    /// PoP verifications attempted across the cluster.
    pub pop_attempts: u64,
    /// PoP verifications that reached consensus.
    pub pop_successes: u64,
    /// The reference engine's (attempts, successes) on the same seed.
    pub reference_pop: (u64, u64),
    /// Whether the cluster reproduced the engine's `network_digest`.
    pub parity: bool,
    /// Nodes that proceeded past a timed-out barrier.
    pub degraded_nodes: u64,
    /// Slot-loop critical path: the slowest node's `slot_loop_ms`.
    pub slot_loop_ms: u64,
    /// Wall-clock for the whole cluster run (bootstrap + linger included).
    pub wall_ms: f64,
    /// Cluster generation throughput over the slot-loop critical path.
    pub blocks_per_s: f64,
    /// Cluster verification throughput on the same denominator.
    pub pops_per_s: f64,
    /// Median generation-to-verified slot latency, ms (merged histograms).
    pub p50_slot_ms: f64,
    /// 99th-percentile slot latency, ms.
    pub p99_slot_ms: f64,
    /// Request retransmissions across every endpoint.
    pub retries: u64,
    /// Datagrams sent across every endpoint.
    pub datagrams: u64,
    /// blocks/s relative to this sweep's window-1 point (1.0 when this
    /// *is* the baseline; 0.0 when the sweep has no baseline).
    pub speedup: f64,
}

/// The sweep output.
#[derive(Clone, Debug)]
pub struct SaturationData {
    /// One point per window, in sweep order.
    pub points: Vec<SaturationPoint>,
}

impl SaturationData {
    /// The best speedup any pipelined window achieved over lockstep.
    pub fn best_speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.window > 1)
            .map(|p| p.speedup)
            .fold(0.0, f64::max)
    }
}

/// Discovers `n` distinct loopback UDP ports by binding and releasing.
fn discover_ports(n: usize) -> Vec<std::net::SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

/// The engine reference: same seed, same workload, replayed through the
/// same helper the cluster harness uses. Window-independent — the whole
/// point of the pipeline is that the ledger it converges to is identical.
fn reference_run(config: &SaturationConfig) -> TldagNetwork {
    let topology = deployment_topology(config.seed, config.nodes, 300.0);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(cfg, topology, schedule, config.seed);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: config.nodes as u64,
    });
    replay_reference_schedule(&mut net, &[], &[], config.nodes, config.seed, config.slots);
    net
}

/// Runs one in-process cluster at the given window and returns per-node
/// outcomes (id order) plus each node's slot-latency histogram snapshot.
type NodeResult = (NodeOutcome, tldag_net::telemetry::HistogramSnapshot);

fn wire_run(config: &SaturationConfig, window: u64) -> Vec<NodeResult> {
    let addrs = discover_ports(config.nodes);
    let handles: Vec<std::thread::JoinHandle<NodeResult>> = (0..config.nodes)
        .map(|i| {
            let id = NodeId(i as u32);
            let mut node_config =
                NetNodeConfig::new(id, addrs[i], config.seed, config.nodes, config.slots);
            node_config.gamma = config.gamma;
            node_config.pop = true;
            node_config.window = window;
            node_config.linger = Duration::from_millis(600);
            node_config.peers = (0..config.nodes)
                .filter(|&j| j != i)
                .map(|j| (NodeId(j as u32), addrs[j]))
                .collect();
            std::thread::spawn(move || {
                let node = NetNode::new(node_config).expect("node construction");
                let telemetry = node.telemetry();
                let outcome = node.run().expect("node run");
                (outcome, telemetry.slot_latency.snapshot())
            })
        })
        .collect();
    let mut results: Vec<NodeResult> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    results.sort_by_key(|(o, _)| o.run.node.0);
    results
}

/// Runs the sweep.
pub fn run(config: &SaturationConfig) -> SaturationData {
    let reference = reference_run(config);
    let reference_digest = reference.network_digest();
    let reference_pop = reference.pop_counters();

    let mut points: Vec<SaturationPoint> = Vec::with_capacity(config.windows.len());
    for &window in &config.windows {
        let started = Instant::now();
        let results = wire_run(config, window);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let wire_digest = network_digest_of(
            &results
                .iter()
                .map(|(o, _)| o.run.chain_digest)
                .collect::<Vec<_>>(),
        );
        let mut latency = results[0].1;
        for (_, snap) in &results[1..] {
            latency.merge(snap);
        }
        let blocks: u64 = results.iter().map(|(o, _)| o.run.chain_len).sum();
        let pop_successes: u64 = results.iter().map(|(o, _)| o.run.pop_successes).sum();
        // The cluster is only as fast as its slowest slot loop.
        let slot_loop_ms = results
            .iter()
            .map(|(o, _)| o.run.slot_loop_ms)
            .max()
            .unwrap_or(1);
        let secs = slot_loop_ms as f64 / 1e3;
        points.push(SaturationPoint {
            window,
            blocks,
            pop_attempts: results.iter().map(|(o, _)| o.run.pop_attempts).sum(),
            pop_successes,
            reference_pop,
            parity: wire_digest == reference_digest,
            degraded_nodes: results.iter().filter(|(o, _)| o.run.degraded).count() as u64,
            slot_loop_ms,
            wall_ms,
            blocks_per_s: blocks as f64 / secs,
            pops_per_s: pop_successes as f64 / secs,
            p50_slot_ms: latency.p50() as f64 / 1e3,
            p99_slot_ms: latency.p99() as f64 / 1e3,
            retries: results.iter().map(|(o, _)| o.stats.request_retries).sum(),
            datagrams: results.iter().map(|(o, _)| o.stats.datagrams_sent).sum(),
            speedup: 0.0,
        });
    }
    let baseline = points
        .iter()
        .find(|p| p.window == 1)
        .map(|p| p.blocks_per_s);
    for p in &mut points {
        p.speedup = match baseline {
            Some(base) if base > 0.0 => p.blocks_per_s / base,
            _ => 0.0,
        };
    }
    SaturationData { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_window_outruns_lockstep_at_parity() {
        let config = SaturationConfig {
            nodes: 3,
            slots: 12,
            gamma: 2,
            seed: 11,
            windows: vec![1, 4],
        };
        let data = run(&config);
        assert_eq!(data.points.len(), 2);
        for p in &data.points {
            assert!(p.parity, "window {} must keep digest parity", p.window);
            assert_eq!(
                (p.pop_attempts, p.pop_successes),
                p.reference_pop,
                "window {} must match the engine's PoP counters",
                p.window
            );
            assert_eq!(p.degraded_nodes, 0, "no barrier may time out on loopback");
            assert_eq!(p.blocks, 3 * 12, "every node generates once per slot");
            assert!(p.blocks_per_s > 0.0);
        }
        // The pipeline's whole claim: removing the per-slot barrier from
        // the hot path beats lockstep even at this tiny scale. Debug-mode
        // hashing inflates the verify work both modes share, so the floor
        // here is deliberately loose — the release bin demonstrates the
        // ≥5× headline.
        assert!(
            data.best_speedup() >= 1.3,
            "window 4 must clearly outrun lockstep, got {:.2}×",
            data.best_speedup()
        );
    }
}
