//! `fig15_adversary`: honest reliability as the adversary fraction grows.
//!
//! The paper's security argument (Sec. IV-D) is that Proof-of-Path keeps
//! working while a minority of nodes misbehave: equivocators minting
//! conflicting slot blocks, digest liars poisoning the gossip plane, and
//! parasites re-advertising abandoned side-chain parents. This experiment
//! runs a full in-process wire cluster of [`NetNode`] runtimes over real
//! loopback UDP, placing `k` Byzantine nodes (cycling equivocate /
//! digest-lie / parasite, on the highest ids — node 0 stays honest,
//! matching the `--adversary` CLI convention) and sweeping `k` from zero
//! up to the ⌊n/3⌋ tolerance bound. Per level it reports
//!
//! * **honest PoP completion** — verifications issued by *honest* nodes
//!   that reached consensus despite the adversaries (the headline the
//!   regression gate holds at ≥ 95% for fractions ≤ 1/3),
//! * **honest digest parity** — every honest node's chain digest must be
//!   byte-identical to an in-memory engine run under the *same*
//!   [`Behavior`] placement (the honest-subset parity contract), and
//! * **detection evidence** — conflicting-digest observations and the
//!   `DigestReq` pull recoveries they triggered.

use crate::Scale;
use std::time::Instant;
use tldag_core::attack::Behavior;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_net::harness::replay_reference_schedule;
use tldag_net::runtime::{deployment_protocol_config, deployment_topology, NodeOutcome};
use tldag_net::{AdversaryPlacement, NetNode, NetNodeConfig, NetStats};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// The behavior mix, cycled over the adversary slots of a level: the
/// three gossip-plane attacks (conflicting second histories, corrupted
/// digests, parasite side-chain advertisements). These are the kinds the
/// conflict-detection + pull-recovery defense fully neutralizes, so the
/// sweep measures the defense, not the attack: honest completion must
/// stay at 100% while the detection counters climb. Service-withholding
/// (`selfish`) is exercised separately — by the CI adversary smoke and
/// `crates/net/tests/adversary.rs` — because a silent chain makes some
/// proof paths unsatisfiable by construction and the paper's headline
/// there is detection + blacklisting, not completion.
const KINDS: [Behavior; 3] = [
    Behavior::Equivocate,
    Behavior::DigestLie,
    Behavior::Parasite,
];

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Founding nodes (no churn in this sweep — the adversaries are the
    /// variable under test).
    pub founders: usize,
    /// Protocol horizon in slots.
    pub slots: u64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Slot from which every placed adversary switches on (honest until
    /// then, so the cluster always bootstraps cleanly).
    pub from_slot: u64,
    /// Adversary counts to sweep, each ≤ ⌊founders/3⌋.
    pub levels: Vec<usize>,
}

impl AdversaryConfig {
    /// Sweep sized for `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => AdversaryConfig {
                founders: 9,
                slots: 16,
                gamma: 3,
                seed: 42,
                from_slot: 2,
                levels: vec![0, 1, 2, 3],
            },
            Scale::Quick => AdversaryConfig {
                founders: 4,
                slots: 10,
                gamma: 3,
                seed: 42,
                from_slot: 2,
                levels: vec![0, 1],
            },
        }
    }

    /// The placement for one level: `k` adversaries on the highest ids,
    /// walking down, kinds cycling through `KINDS`. Deterministic, so
    /// the wire cluster and the engine reference see the identical cast.
    pub fn placements(&self, adversaries: usize) -> Vec<AdversaryPlacement> {
        assert!(
            adversaries < self.founders,
            "at least one honest node must remain"
        );
        (0..adversaries)
            .map(|i| AdversaryPlacement {
                node: NodeId((self.founders - 1 - i) as u32),
                behavior: KINDS[i % KINDS.len()],
                slot: self.from_slot,
            })
            .collect()
    }
}

/// Measurements at one adversary level.
#[derive(Clone, Debug)]
pub struct AdversaryPoint {
    /// Byzantine nodes in the cluster.
    pub adversaries: usize,
    /// `adversaries / founders`.
    pub fraction: f64,
    /// The cast, e.g. `"n5:selfish n4:equivocate"` (empty at level 0).
    pub behaviors: String,
    /// PoP runs attempted by honest nodes.
    pub honest_attempts: u64,
    /// Honest PoP runs that reached consensus.
    pub honest_successes: u64,
    /// PoP runs attempted / completed across the *whole* cluster.
    pub total_pop: (u64, u64),
    /// The engine reference's (attempts, successes) under the same cast.
    pub reference_pop: (u64, u64),
    /// Every honest node's chain digest matched the engine reference.
    pub honest_parity: bool,
    /// Conflicting `SlotDigest` pairs honest nodes observed.
    pub digest_conflicts: u64,
    /// `DigestReq` pulls issued to resolve conflicts.
    pub conflict_pulls: u64,
    /// Nodes that proceeded past a timed-out barrier.
    pub degraded_nodes: u64,
    /// Wall-clock for the whole cluster run, ms.
    pub wall_ms: f64,
    /// Transport counters merged across every node's report.
    pub net: NetStats,
}

impl AdversaryPoint {
    /// Fraction of honest PoP runs that reached consensus.
    pub fn honest_completion(&self) -> f64 {
        if self.honest_attempts == 0 {
            0.0
        } else {
            self.honest_successes as f64 / self.honest_attempts as f64
        }
    }
}

/// The sweep output.
#[derive(Clone, Debug)]
pub struct AdversaryData {
    /// One point per adversary level, in sweep order.
    pub points: Vec<AdversaryPoint>,
}

/// Discovers `n` distinct loopback UDP ports by binding and releasing.
fn discover_ports(n: usize) -> Vec<std::net::SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

/// The engine reference for one cast: same seed, same topology, the
/// placement applied through the same helper `tldag cluster` uses.
fn reference_run(config: &AdversaryConfig, placements: &[AdversaryPlacement]) -> TldagNetwork {
    let topology = deployment_topology(config.seed, config.founders, 300.0);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(cfg, topology, schedule, config.seed);
    net.set_verification_workload(VerificationWorkload::RandomPast {
        min_age_slots: config.founders as u64,
    });
    replay_reference_schedule(
        &mut net,
        &[],
        placements,
        config.founders,
        config.seed,
        config.slots,
    );
    net
}

/// Runs one in-process wire cluster with the given cast and returns the
/// per-node outcomes in id order.
fn wire_run(config: &AdversaryConfig, placements: &[AdversaryPlacement]) -> Vec<NodeOutcome> {
    let addrs = discover_ports(config.founders);
    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = (0..config.founders)
        .map(|i| {
            let id = NodeId(i as u32);
            let mut node_config =
                NetNodeConfig::new(id, addrs[i], config.seed, config.founders, config.slots);
            node_config.gamma = config.gamma;
            // PoP mode: digest gossip fans out to every generator, so
            // detection does not depend on where an adversary happens to
            // sit in the radio topology.
            node_config.pop = true;
            node_config.peers = (0..config.founders)
                .filter(|&j| j != i)
                .map(|j| (NodeId(j as u32), addrs[j]))
                .collect();
            if let Some(p) = placements.iter().find(|p| p.node == id) {
                node_config.behavior = p.behavior;
                node_config.behavior_from = p.slot;
            }
            // A selfish node never answers, so requests aimed at it must
            // burn their full retry schedule; keep that schedule short so
            // the failure is cheap and the slot budget generous so the
            // barrier never degrades while it burns.
            node_config.endpoint.request_timeout = std::time::Duration::from_millis(40);
            node_config.endpoint.max_retries = 8;
            node_config.endpoint.max_backoff = std::time::Duration::from_millis(300);
            node_config.slot_timeout = std::time::Duration::from_secs(20);
            node_config.hello_timeout = std::time::Duration::from_secs(20);
            node_config.linger = std::time::Duration::from_millis(2500);
            std::thread::spawn(move || {
                NetNode::new(node_config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();
    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| o.run.node.0);
    outcomes
}

/// Runs the sweep.
pub fn run(config: &AdversaryConfig) -> AdversaryData {
    let mut points = Vec::with_capacity(config.levels.len());
    for &adversaries in &config.levels {
        let placements = config.placements(adversaries);
        let reference = reference_run(config, &placements);

        let started = Instant::now();
        let outcomes = wire_run(config, &placements);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let is_adversary = |id: u32| placements.iter().any(|p| p.node.0 == id);
        let honest: Vec<&NodeOutcome> = outcomes
            .iter()
            .filter(|o| !is_adversary(o.run.node.0))
            .collect();
        let honest_parity = honest
            .iter()
            .all(|o| o.run.chain_digest == reference.chain_digest(o.run.node));
        points.push(AdversaryPoint {
            adversaries,
            fraction: adversaries as f64 / config.founders as f64,
            behaviors: placements
                .iter()
                .map(|p| format!("{}:{}", p.node, p.behavior))
                .collect::<Vec<_>>()
                .join(" "),
            honest_attempts: honest.iter().map(|o| o.run.pop_attempts).sum(),
            honest_successes: honest.iter().map(|o| o.run.pop_successes).sum(),
            total_pop: (
                outcomes.iter().map(|o| o.run.pop_attempts).sum(),
                outcomes.iter().map(|o| o.run.pop_successes).sum(),
            ),
            reference_pop: reference.pop_counters(),
            honest_parity,
            digest_conflicts: outcomes.iter().map(|o| o.stats.digest_conflicts).sum(),
            conflict_pulls: outcomes.iter().map(|o| o.stats.conflict_pulls).sum(),
            degraded_nodes: outcomes.iter().filter(|o| o.run.degraded).count() as u64,
            wall_ms,
            net: outcomes.iter().fold(NetStats::default(), |mut acc, o| {
                acc.merge(&o.stats);
                acc
            }),
        });
    }
    AdversaryData { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minority_cast_keeps_honest_parity_and_detection_fires() {
        let config = AdversaryConfig {
            founders: 4,
            slots: 9,
            gamma: 3,
            seed: 19,
            from_slot: 2,
            levels: vec![1],
        };
        let data = run(&config);
        let p = &data.points[0];
        assert_eq!(p.behaviors, "n3:equivocate");
        assert!(
            p.honest_parity,
            "honest chains must match the engine reference"
        );
        assert_eq!(
            p.total_pop, p.reference_pop,
            "cluster PoP counters must match the engine under the same cast"
        );
        assert!(
            p.honest_attempts > 0,
            "the workload must run honest PoP verifications"
        );
        assert!(
            (p.honest_completion() - 1.0).abs() < f64::EPSILON,
            "gossip-plane attacks must not cost honest completion \
(got {})",
            p.honest_completion()
        );
        assert!(
            p.digest_conflicts >= 1 && p.conflict_pulls >= 1,
            "detection must fire (conflicts {}, pulls {})",
            p.digest_conflicts,
            p.conflict_pulls
        );
        assert_eq!(p.degraded_nodes, 0, "no barrier may time out");
    }
}
