//! Node-restart recovery — a Fig. 9-style experiment the paper does not
//! run but its storage model implies: when an IoT node's process dies and
//! comes back from durable storage, how does Proof-of-Path availability of
//! its blocks evolve, and does the recovered chain lose anything?
//!
//! Per seed, every node stores its chain in a `tldag-storage` durable engine
//! ([`DiskFactory`]). A [`RestartPlan`] kills scheduled nodes mid-run
//! (dropping all volatile state and unsynced storage tail) and revives them
//! by reopening their block log. At sampled slots, probe PoPs target the
//! victims' pre-crash blocks; the failure probability traces the outage and
//! the recovery. The run also audits the durability contract: a revived
//! node must recover **at least** its durable watermark — with the network's
//! sync-per-slot policy, exactly every block generated before the crash.

use std::path::PathBuf;
use tldag_core::block::BlockId;
use tldag_core::config::ProtocolConfig;
use tldag_core::dag::LogicalDag;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::fault::RestartPlan;
use tldag_sim::metrics::SeriesSet;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{DetRng, NodeId};
use tldag_storage::{DiskFactory, StorageOptions};

use crate::experiments::scale::Scale;

/// Parameters of the restart-recovery sweep.
#[derive(Clone, Debug)]
pub struct RestartConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Horizon in slots.
    pub slots: u64,
    /// Consensus margin γ.
    pub gamma: usize,
    /// How many distinct nodes crash per run.
    pub restarts: usize,
    /// Crash slots are drawn uniformly from this window.
    pub crash_window: std::ops::Range<u64>,
    /// Slots each crashed node stays down.
    pub downtime_slots: u64,
    /// Probe PoPs per sampled slot per seed.
    pub probes_per_sample: usize,
    /// Sampling interval in slots.
    pub sample_every: u64,
    /// Independent seeds.
    pub seeds: u64,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Root directory for the per-seed, per-node block logs.
    pub storage_root: PathBuf,
    /// Durable-engine tuning.
    pub storage: StorageOptions,
}

impl RestartConfig {
    /// Builds the configuration for a [`Scale`].
    pub fn at_scale(scale: Scale) -> Self {
        let storage_root =
            std::env::temp_dir().join(format!("tldag-restart-{}-{scale:?}", std::process::id()));
        match scale {
            Scale::Paper => RestartConfig {
                nodes: 50,
                slots: 80,
                gamma: 10,
                restarts: 3,
                crash_window: 20..40,
                downtime_slots: 10,
                probes_per_sample: 4,
                sample_every: 4,
                seeds: 6,
                topology: TopologyConfig::paper_default(),
                storage_root,
                storage: StorageOptions::default(),
            },
            Scale::Quick => RestartConfig {
                nodes: 12,
                slots: 36,
                gamma: 3,
                restarts: 1,
                crash_window: 10..14,
                downtime_slots: 6,
                probes_per_sample: 3,
                sample_every: 4,
                seeds: 2,
                topology: TopologyConfig::small(12),
                storage_root,
                storage: StorageOptions {
                    segment_bytes: 64 * 1024,
                    ..StorageOptions::default()
                },
            },
        }
    }
}

/// What one crash/revive cycle recovered.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Seed of the run.
    pub seed: u64,
    /// The crashed node.
    pub node: NodeId,
    /// Slot the process died.
    pub crash_slot: u64,
    /// Slot the process returned.
    pub revive_slot: u64,
    /// Chain length when the process died.
    pub blocks_before_crash: usize,
    /// Durability watermark when the process died (synced blocks).
    pub durable_before_crash: usize,
    /// Chain length recovered from the reopened block log.
    pub blocks_recovered: usize,
    /// Whether the revive slot fell inside the run horizon (a crash near
    /// the end of the run may never be revived; that is not data loss).
    pub revived: bool,
}

impl RecoveryOutcome {
    /// The durability contract: nothing synced may be lost on recovery.
    /// Never-revived crashes are excluded — nothing was reopened to audit.
    pub fn lost_committed_blocks(&self) -> bool {
        self.revived && self.blocks_recovered < self.durable_before_crash
    }
}

/// Result of the sweep.
#[derive(Clone, Debug)]
pub struct RestartData {
    /// Failure probability of probes on victims' pre-crash blocks
    /// (series `"victim blocks"`) and on other nodes' blocks
    /// (control series `"control blocks"`), per sampled slot.
    pub series: SeriesSet,
    /// One entry per crash/revive cycle per seed.
    pub recoveries: Vec<RecoveryOutcome>,
    /// Largest resident-memory estimate observed across disk-backed nodes.
    pub peak_resident_bytes: usize,
    /// Largest on-disk chain observed (bytes), for the resident/disk ratio.
    pub peak_disk_bytes: u64,
}

/// Runs the sweep.
pub fn run(cfg: &RestartConfig) -> RestartData {
    let sample_slots: Vec<u64> = (cfg.sample_every..=cfg.slots)
        .step_by(cfg.sample_every as usize)
        .collect();
    let mut victim_failures = vec![0u64; sample_slots.len()];
    let mut victim_attempts = vec![0u64; sample_slots.len()];
    let mut control_failures = vec![0u64; sample_slots.len()];
    let mut control_attempts = vec![0u64; sample_slots.len()];
    let mut recoveries = Vec::new();
    let mut peak_resident_bytes = 0usize;
    let mut peak_disk_bytes = 0u64;

    for seed in 0..cfg.seeds {
        let mut rng = DetRng::seed_from(0x5eed + seed * 7919 + cfg.gamma as u64);
        let topology = Topology::random_connected(&cfg.topology, &mut rng);
        let schedule = GenerationSchedule::uniform(topology.len());
        let proto = ProtocolConfig::test_default().with_gamma(cfg.gamma);
        let factory = DiskFactory::new(
            cfg.storage_root.join(format!("seed-{seed}")),
            cfg.storage.clone(),
        );
        let mut net =
            TldagNetwork::with_factory(proto, topology.clone(), schedule, seed, Box::new(factory));
        net.set_verification_workload(VerificationWorkload::Disabled);
        let plan = RestartPlan::uniform(
            &topology,
            cfg.restarts,
            cfg.crash_window.clone(),
            cfg.downtime_slots,
            &mut rng.fork(1),
        );
        let victims: Vec<NodeId> = plan.events().iter().map(|e| e.node).collect();
        let mut probe_rng = rng.fork(2);
        // Verifiable pre-crash blocks of the victims, captured at crash time
        // (the victims' own stores are unreadable while they are down).
        let mut victim_targets: Vec<BlockId> = Vec::new();

        for slot in 0..cfg.slots {
            let crashes = plan.crashes_at(slot);
            if !crashes.is_empty() {
                let dag = LogicalDag::build(net.nodes());
                for &node in &crashes {
                    victim_targets.extend(verifiable_blocks(&net, &dag, node));
                }
            }
            for node in crashes {
                let store = net.node(node).store();
                let (before, durable) = (store.len(), store.durable_len());
                net.crash_node(node);
                let event = plan
                    .events()
                    .iter()
                    .find(|e| e.node == node && e.crash_slot == slot)
                    .expect("event exists");
                recoveries.push(RecoveryOutcome {
                    seed,
                    node,
                    crash_slot: slot,
                    revive_slot: event.revive_slot,
                    blocks_before_crash: before,
                    durable_before_crash: durable,
                    blocks_recovered: 0, // filled at revive
                    revived: false,
                });
            }
            for node in plan.revives_at(slot) {
                let recovered = net
                    .restart_node(node)
                    .expect("reopen of a cleanly synced log cannot fail");
                let outcome = recoveries
                    .iter_mut()
                    .rev()
                    .find(|r| r.seed == seed && r.node == node)
                    .expect("crash recorded before revive");
                outcome.blocks_recovered = recovered;
                outcome.revived = true;
            }
            net.step();

            for node in net.topology().node_ids() {
                if !net.has_departed(node) {
                    peak_resident_bytes =
                        peak_resident_bytes.max(net.node(node).store().resident_bytes());
                }
            }

            if let Some(i) = sample_slots.iter().position(|&s| s == slot + 1) {
                let dag = LogicalDag::build(net.nodes());
                // The control candidates depend only on the sample-time
                // state, so scan once per sample, not once per probe.
                let controls = control_candidates(&net, &dag, &victims, &plan);
                for _ in 0..cfg.probes_per_sample {
                    // Victim probe: a pre-crash block of a scheduled victim
                    // (only once crashes have started populating the list).
                    if let Some((validator, target)) =
                        pick_victim_probe(&net, &victims, &victim_targets, &mut probe_rng)
                    {
                        victim_attempts[i] += 1;
                        if !net.run_pop(validator, target, false).is_success() {
                            victim_failures[i] += 1;
                        }
                    }
                    // Control probe: an equally old block of a non-victim.
                    if let Some((validator, target)) =
                        pick_control_probe(&net, &victims, &controls, &mut probe_rng)
                    {
                        control_attempts[i] += 1;
                        if !net.run_pop(validator, target, false).is_success() {
                            control_failures[i] += 1;
                        }
                    }
                }
            }
        }

        peak_disk_bytes = peak_disk_bytes.max(estimate_disk_bytes(&cfg.storage_root, seed));
    }

    let mut series = SeriesSet::new();
    let victim = series.series_mut("victim blocks");
    for (i, &slot) in sample_slots.iter().enumerate() {
        if victim_attempts[i] > 0 {
            victim.record(slot, victim_failures[i] as f64 / victim_attempts[i] as f64);
        }
    }
    let control = series.series_mut("control blocks");
    for (i, &slot) in sample_slots.iter().enumerate() {
        if control_attempts[i] > 0 {
            control.record(
                slot,
                control_failures[i] as f64 / control_attempts[i] as f64,
            );
        }
    }

    RestartData {
        series,
        recoveries,
        peak_resident_bytes,
        peak_disk_bytes,
    }
}

/// Sums segment-file sizes under one seed's storage root.
fn estimate_disk_bytes(root: &std::path::Path, seed: u64) -> u64 {
    let mut total = 0u64;
    let seed_dir = root.join(format!("seed-{seed}"));
    let Ok(nodes) = std::fs::read_dir(&seed_dir) else {
        return 0;
    };
    for node in nodes.flatten() {
        if let Ok(files) = std::fs::read_dir(node.path()) {
            for f in files.flatten() {
                if let Ok(meta) = f.metadata() {
                    total += meta.len();
                }
            }
        }
    }
    total
}

/// A currently-up validator that is not itself a scheduled victim.
fn pick_validator(net: &TldagNetwork, victims: &[NodeId], rng: &mut DetRng) -> Option<NodeId> {
    let validators: Vec<NodeId> = net
        .topology()
        .node_ids()
        .filter(|id| !victims.contains(id) && !net.has_departed(*id))
        .collect();
    rng.choose(&validators).copied()
}

/// All blocks of `owner` that some *other* node's block references — i.e.
/// blocks PoP can in principle verify (the same orphan exclusion as the
/// Fig. 9 probe).
fn verifiable_blocks(net: &TldagNetwork, dag: &LogicalDag, owner: NodeId) -> Vec<BlockId> {
    net.node(owner)
        .store()
        .iter()
        .filter(|block| {
            let digest = block.header_digest();
            dag.children_of(&digest)
                .iter()
                .any(|c| dag.block_id(c).is_some_and(|id| id.owner != owner))
        })
        .map(|block| block.id)
        .collect()
}

/// Victim probe: one of the pre-crash targets captured at crash time.
fn pick_victim_probe(
    net: &TldagNetwork,
    victims: &[NodeId],
    victim_targets: &[BlockId],
    rng: &mut DetRng,
) -> Option<(NodeId, BlockId)> {
    let target = *rng.choose(victim_targets)?;
    Some((pick_validator(net, victims, rng)?, target))
}

/// Control-probe candidates: blocks generated before the first crash slot
/// by unaffected nodes, with the same verifiability requirement as the
/// victim targets. Computed once per sampled slot.
fn control_candidates(
    net: &TldagNetwork,
    dag: &LogicalDag,
    victims: &[NodeId],
    plan: &RestartPlan,
) -> Vec<BlockId> {
    let Some(era) = plan.events().iter().map(|e| e.crash_slot).min() else {
        return Vec::new();
    };
    let mut candidates: Vec<BlockId> = Vec::new();
    for owner in net.topology().node_ids() {
        if victims.contains(&owner) || net.has_departed(owner) {
            continue;
        }
        for block in net.node(owner).store().iter() {
            if block.header.time >= era {
                continue;
            }
            let digest = block.header_digest();
            let has_foreign_child = dag
                .children_of(&digest)
                .iter()
                .any(|c| dag.block_id(c).is_some_and(|id| id.owner != owner));
            if has_foreign_child {
                candidates.push(block.id);
            }
        }
    }
    candidates
}

/// Control probe: a candidate not owned by the chosen validator.
fn pick_control_probe(
    net: &TldagNetwork,
    victims: &[NodeId],
    candidates: &[BlockId],
    rng: &mut DetRng,
) -> Option<(NodeId, BlockId)> {
    let validator = pick_validator(net, victims, rng)?;
    let eligible: Vec<BlockId> = candidates
        .iter()
        .copied()
        .filter(|t| t.owner != validator)
        .collect();
    rng.choose(&eligible).map(|&t| (validator, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> RestartConfig {
        RestartConfig {
            nodes: 10,
            slots: 20,
            gamma: 3,
            restarts: 1,
            crash_window: 6..8,
            downtime_slots: 4,
            probes_per_sample: 2,
            sample_every: 4,
            seeds: 2,
            topology: TopologyConfig::small(10),
            storage_root: std::env::temp_dir()
                .join(format!("tldag-restart-test-{name}-{}", std::process::id())),
            storage: StorageOptions::compact_test(),
        }
    }

    #[test]
    fn no_committed_blocks_lost_and_consensus_recovers() {
        let cfg = tiny("audit");
        let data = run(&cfg);
        let _ = std::fs::remove_dir_all(&cfg.storage_root);

        assert_eq!(
            data.recoveries.len(),
            (cfg.restarts as u64 * cfg.seeds) as usize
        );
        for r in &data.recoveries {
            assert!(
                r.revived,
                "tiny() schedules every revive inside the horizon"
            );
            assert!(
                !r.lost_committed_blocks(),
                "{} lost committed blocks: durable {} > recovered {}",
                r.node,
                r.durable_before_crash,
                r.blocks_recovered
            );
            // The network syncs at every slot end, so a crash at slot start
            // loses nothing at all.
            assert_eq!(r.blocks_recovered, r.blocks_before_crash);
            assert!(r.blocks_recovered > 0, "crash after generation started");
        }

        // Victim-block probes must fail during downtime (owner unreachable)
        // and succeed again afterwards.
        let victim = data.series.series("victim blocks").unwrap();
        let worst = victim
            .points()
            .iter()
            .map(|&(_, p)| p)
            .fold(0.0f64, f64::max);
        assert_eq!(worst, 1.0, "downtime must be observable: {victim:?}");
        let last = victim.points().last().unwrap().1;
        assert_eq!(last, 0.0, "PoP on victim blocks must recover: {victim:?}");

        // Durable backends keep resident memory well below the on-disk chain.
        assert!(data.peak_disk_bytes > 0);
    }

    #[test]
    fn control_blocks_recover_like_fig9() {
        let cfg = tiny("control");
        let data = run(&cfg);
        let _ = std::fs::remove_dir_all(&cfg.storage_root);
        // Early control probes may fail while the DAG is young (the Fig. 9
        // effect); by the end of the run they must all succeed — restarts
        // elsewhere never regress consensus on unrelated blocks.
        let control = data.series.series("control blocks").unwrap();
        let points = control.points();
        let last = points.last().unwrap();
        assert_eq!(
            last.1, 0.0,
            "control probes must settle at zero: {control:?}"
        );
    }
}
