//! Experiment implementations, one module per paper panel group.

pub mod ablation;
pub mod adversary;
pub mod churn;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod lifecycle;
pub mod restart;
pub mod retention;
pub mod saturation;
pub mod scale;
pub mod scaling;
pub mod summary;
pub mod wire;
