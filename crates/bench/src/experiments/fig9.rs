//! Fig. 9 — consensus failure probability versus elapsed slots.
//!
//! For γ ∈ {10, 15, 20, 24} and several malicious-node counts, the network
//! runs with every node generating one block per {1, 2} slots; at sampled
//! slots, probe PoPs verify blocks generated in the first γ slots. The
//! failure probability is the fraction of probes (across seeds) that do not
//! reach `γ + 1` distinct vouching nodes. Consensus "is reached" at the
//! first sampled slot where the probability hits zero.

use crate::experiments::scale::Scale;
use tldag_core::attack::Behavior;
use tldag_core::block::BlockId;
use tldag_core::config::ProtocolConfig;
use tldag_core::dag::LogicalDag;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::fault::{FaultPlan, MaliciousPlacement};
use tldag_sim::metrics::SeriesSet;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng, NodeId};

/// One Fig. 9 panel setting.
#[derive(Clone, Debug)]
pub struct Fig9Panel {
    /// Consensus margin γ.
    pub gamma: usize,
    /// Malicious-node counts to sweep (one series each).
    pub malicious_counts: Vec<usize>,
    /// Sampled slots: `(start, end, step)`.
    pub slot_range: (u64, u64, u64),
}

/// Parameters of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Panels to produce.
    pub panels: Vec<Fig9Panel>,
    /// Probe PoPs per sampled slot per seed.
    pub probes_per_sample: usize,
    /// Independent seeds.
    pub seeds: u64,
    /// Body size in MB (the paper uses 0.5; failure probability does not
    /// depend on it, only sizes do).
    pub body_mb: f64,
    /// Topology parameters.
    pub topology: TopologyConfig,
}

impl Fig9Config {
    /// Builds the configuration for a [`Scale`]. Paper panels:
    /// γ=10 with {0,5,8,10} malicious, γ=15 with {0,5,10,15},
    /// γ=20 with {0,5,18,20}, γ=24 with {0,5,10,20,22,24}.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Fig9Config {
                nodes: 50,
                panels: vec![
                    Fig9Panel {
                        gamma: 10,
                        malicious_counts: vec![0, 5, 8, 10],
                        slot_range: (10, 22, 2),
                    },
                    Fig9Panel {
                        gamma: 15,
                        malicious_counts: vec![0, 5, 10, 15],
                        slot_range: (15, 35, 2),
                    },
                    Fig9Panel {
                        gamma: 20,
                        malicious_counts: vec![0, 5, 18, 20],
                        slot_range: (20, 46, 2),
                    },
                    Fig9Panel {
                        gamma: 24,
                        malicious_counts: vec![0, 5, 10, 20, 22, 24],
                        slot_range: (30, 140, 10),
                    },
                ],
                probes_per_sample: 4,
                seeds: 12,
                body_mb: 0.5,
                topology: TopologyConfig::paper_default(),
            },
            Scale::Quick => Fig9Config {
                nodes: 16,
                panels: vec![
                    Fig9Panel {
                        gamma: 4,
                        malicious_counts: vec![0, 2, 4],
                        slot_range: (4, 20, 2),
                    },
                    Fig9Panel {
                        gamma: 6,
                        malicious_counts: vec![0, 3],
                        slot_range: (6, 26, 4),
                    },
                ],
                probes_per_sample: 3,
                seeds: 4,
                body_mb: 0.1,
                topology: TopologyConfig {
                    nodes: 16,
                    side_m: 300.0,
                    ..TopologyConfig::paper_default()
                },
            },
        }
    }
}

/// Result of one panel: failure-probability series keyed by
/// `"{m} malicious"`.
#[derive(Clone, Debug)]
pub struct Fig9PanelData {
    /// Consensus margin γ.
    pub gamma: usize,
    /// One series per malicious count; y ∈ [0, 1].
    pub series: SeriesSet,
    /// Slots-to-consensus per malicious count (first sampled slot where every
    /// probe succeeded), `None` if never within the range.
    pub slots_to_consensus: Vec<(usize, Option<u64>)>,
}

/// Runs all panels.
pub fn run(cfg: &Fig9Config) -> Vec<Fig9PanelData> {
    cfg.panels
        .iter()
        .map(|panel| run_panel(cfg, panel))
        .collect()
}

fn run_panel(cfg: &Fig9Config, panel: &Fig9Panel) -> Fig9PanelData {
    let (start, end, step) = panel.slot_range;
    let sample_slots: Vec<u64> = (start..=end).step_by(step as usize).collect();
    let mut series = SeriesSet::new();
    let mut slots_to_consensus = Vec::new();

    for &malicious in &panel.malicious_counts {
        let label = format!("{malicious} malicious");
        // failures[i], attempts[i] accumulated across seeds per sample slot.
        let mut failures = vec![0u64; sample_slots.len()];
        let mut attempts = vec![0u64; sample_slots.len()];

        for seed in 0..cfg.seeds {
            let mut rng = DetRng::seed_from(0x9e37 + seed * 1000 + panel.gamma as u64);
            let topology = Topology::random_connected(&cfg.topology, &mut rng);
            let schedule = GenerationSchedule::random_periods(cfg.nodes, &[1, 2], &mut rng.fork(1));
            let proto = ProtocolConfig::paper_default()
                .with_body_bits(Bits::from_megabytes_f(cfg.body_mb).bits())
                .with_gamma(panel.gamma);
            let mut net = TldagNetwork::new(proto, topology.clone(), schedule, seed);
            // Probes drive the measurement; the regular verification
            // workload stays off so runtime scales with the sweep.
            net.set_verification_workload(VerificationWorkload::Disabled);
            let plan = FaultPlan::select(
                &topology,
                malicious,
                MaliciousPlacement::Uniform,
                &mut rng.fork(2),
            );
            net.apply_fault_plan(&plan, Behavior::Unresponsive);
            let mut probe_rng = rng.fork(3);

            for (i, &sample_slot) in sample_slots.iter().enumerate() {
                while net.slot() < sample_slot {
                    net.step();
                }
                let dag = LogicalDag::build(net.nodes());
                for _ in 0..cfg.probes_per_sample {
                    let Some((validator, target)) =
                        pick_probe(&net, &dag, panel.gamma as u64, &plan, &mut probe_rng)
                    else {
                        continue;
                    };
                    attempts[i] += 1;
                    let report = net.run_pop(validator, target, false);
                    if !report.is_success() {
                        failures[i] += 1;
                    }
                }
            }
        }

        let s = series.series_mut(&label);
        for (i, &slot) in sample_slots.iter().enumerate() {
            let p = if attempts[i] == 0 {
                1.0
            } else {
                failures[i] as f64 / attempts[i] as f64
            };
            s.record(slot, p);
        }
        let reached = sample_slots
            .iter()
            .enumerate()
            .find(|(i, _)| attempts[*i] > 0 && failures[*i] == 0)
            .map(|(_, &slot)| slot);
        slots_to_consensus.push((malicious, reached));
    }

    Fig9PanelData {
        gamma: panel.gamma,
        series,
        slots_to_consensus,
    }
}

/// Picks an honest validator and an honest-owned block from the first γ
/// slots (the paper's probe workload). Targets must have at least one child
/// block at another node: a digest that every neighbor replaced before
/// generating ("orphaned" block) can never be verified no matter how long
/// the DAG grows, and Fig. 9 measures DAG-growth delay, not orphanhood (the
/// paper's curves reach exactly zero). The orphan rate itself is reported by
/// the `ablation_bounds` binary.
fn pick_probe(
    net: &TldagNetwork,
    dag: &LogicalDag,
    era_slots: u64,
    plan: &FaultPlan,
    rng: &mut DetRng,
) -> Option<(NodeId, BlockId)> {
    let honest = plan.honest_ids();
    let validator = *rng.choose(&honest)?;
    let mut candidates: Vec<BlockId> = Vec::new();
    for &owner in &honest {
        if owner == validator {
            continue;
        }
        for block in net.node(owner).store().iter() {
            if block.header.time >= era_slots {
                continue;
            }
            let digest = block.header_digest();
            let has_foreign_child = dag
                .children_of(&digest)
                .iter()
                .any(|c| dag.block_id(c).is_some_and(|id| id.owner != owner));
            if has_foreign_child {
                candidates.push(block.id);
            }
        }
    }
    rng.choose(&candidates).map(|&t| (validator, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig9Config {
        Fig9Config {
            nodes: 10,
            panels: vec![Fig9Panel {
                gamma: 3,
                malicious_counts: vec![0, 2],
                slot_range: (4, 16, 4),
            }],
            probes_per_sample: 2,
            seeds: 2,
            body_mb: 0.05,
            topology: TopologyConfig::small(10),
        }
    }

    #[test]
    fn failure_probability_decreases_with_slots() {
        let data = run(&tiny());
        let series = data[0].series.series("0 malicious").unwrap();
        let points = series.points();
        let first = points.first().unwrap().1;
        let last = points.last().unwrap().1;
        assert!(
            last <= first,
            "failure probability should not grow: {first} -> {last}"
        );
        // With zero malicious nodes and enough DAG, probes eventually succeed.
        assert!(last < 0.5, "late failure probability {last} too high");
    }

    #[test]
    fn probabilities_are_valid() {
        let data = run(&tiny());
        for panel in &data {
            for name in panel.series.names() {
                for (_, p) in panel.series.series(name).unwrap().points() {
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn malicious_nodes_do_not_reduce_failures() {
        let data = run(&tiny());
        let clean: Vec<f64> = data[0]
            .series
            .series("0 malicious")
            .unwrap()
            .points()
            .iter()
            .map(|&(_, p)| p)
            .collect();
        let dirty: Vec<f64> = data[0]
            .series
            .series("2 malicious")
            .unwrap()
            .points()
            .iter()
            .map(|&(_, p)| p)
            .collect();
        let clean_sum: f64 = clean.iter().sum();
        let dirty_sum: f64 = dirty.iter().sum();
        assert!(dirty_sum >= clean_sum - 0.5, "adversaries should not help");
    }
}
