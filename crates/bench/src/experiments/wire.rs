//! `fig11_wire`: PoP over a *real* socket path under injected datagram
//! faults.
//!
//! The in-memory engine's lossy-link model (Fig. 9) decides drops at the
//! abstraction of "a message"; this experiment measures the actual wire
//! stack — envelope codec, fragmentation, request retry with bounded
//! backoff — by running PoP verifications between UDP endpoints on
//! localhost whose transports inject datagram loss, duplication, and
//! reordering ([`tldag_net::FaultyTransport`]). The sweep reports, per
//! fault rate, the PoP success rate, latency, and the retry/timeout work
//! the transport performed to deliver it.
//!
//! TPS is disabled so every path extension crosses the socket: the numbers
//! measure the transport, not the validator's cache.

use crate::Scale;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tldag_core::blacklist::Blacklist;
use tldag_core::block::BlockId;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_core::node::LedgerNode;
use tldag_core::pop::validator::Validator;
use tldag_core::store::TrustCache;
use tldag_core::workload::VerificationWorkload;
use tldag_net::runtime::{
    deployment_protocol_config, deployment_topology, serve_wire_request, NetPopTransport,
};
use tldag_net::{
    Endpoint, EndpointConfig, FaultSpec, FaultyTransport, Inbound, NetStats, PeerTable,
    UdpTransport,
};
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::{DetRng, NodeId, Topology};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Nodes (= UDP endpoints).
    pub nodes: usize,
    /// Slots of in-memory warm-up that build the chains to verify.
    pub warm_slots: u64,
    /// PoP verifications measured per fault rate.
    pub pops_per_rate: usize,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Datagram fault rates to sweep (drop probability; duplication and
    /// reordering are scaled off it, see [`FaultSpec::degraded`]).
    pub loss_rates: Vec<f64>,
    /// Datagrams per receiver wakeup on every endpoint: 1 reproduces the
    /// lockstep-era one-datagram-per-wakeup loop, the default is the
    /// pipelined batched receive path.
    pub batch: usize,
}

impl WireConfig {
    /// Sweep sized for `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => WireConfig {
                nodes: 12,
                warm_slots: 30,
                pops_per_rate: 25,
                gamma: 3,
                seed: 42,
                loss_rates: vec![0.0, 0.05, 0.10, 0.20, 0.30],
                batch: EndpointConfig::default().batch,
            },
            Scale::Quick => WireConfig {
                nodes: 8,
                warm_slots: 20,
                pops_per_rate: 8,
                gamma: 3,
                seed: 42,
                loss_rates: vec![0.0, 0.10, 0.25],
                batch: EndpointConfig::default().batch,
            },
        }
    }
}

/// Measurements at one fault rate.
#[derive(Clone, Debug)]
pub struct RatePoint {
    /// Injected datagram drop probability (per direction).
    pub loss: f64,
    /// PoP runs attempted.
    pub attempts: u64,
    /// PoP runs that reached consensus.
    pub successes: u64,
    /// Mean wall-clock latency of one PoP, milliseconds.
    pub mean_latency_ms: f64,
    /// Worst-case PoP latency, milliseconds.
    pub max_latency_ms: f64,
    /// Request retransmissions the validator's endpoint performed.
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub timeouts: u64,
    /// Datagrams sent across every endpoint.
    pub datagrams: u64,
    /// Datagrams the fault injection swallowed (all endpoints).
    pub injected_drops: u64,
    /// Protocol messages the validator exchanged (PoP metric).
    pub messages: u64,
    /// Transport counters merged across every endpoint at this rate.
    pub net: NetStats,
    /// Median request round trip on the validator's endpoint, µs
    /// (telemetry histogram estimate: upper bound, < 2× exact).
    pub rtt_p50_us: u64,
    /// 99th-percentile request round trip on the validator's endpoint, µs.
    pub rtt_p99_us: u64,
}

impl RatePoint {
    /// Fraction of PoP runs that reached consensus.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// The sweep output.
#[derive(Clone, Debug)]
pub struct WireData {
    /// One point per fault rate, in sweep order.
    pub points: Vec<RatePoint>,
}

/// One live endpoint: a responder (or the validator) with its receiver
/// thread and a handle on its fault injector.
struct WireNode {
    endpoint: Arc<Endpoint>,
    faults: Arc<FaultyTransport<UdpTransport>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WireNode {
    fn spawn(node: Arc<LedgerNode>, spec: FaultSpec, rng: DetRng, batch: usize) -> WireNode {
        let udp = UdpTransport::bind("127.0.0.1:0".parse().expect("addr")).expect("bind");
        let faults = Arc::new(FaultyTransport::new(udp, spec, rng));
        let endpoint = Arc::new(Endpoint::with_transport(
            node.id(),
            Box::new(Arc::clone(&faults)),
            EndpointConfig {
                request_timeout: Duration::from_millis(25),
                max_retries: 7,
                max_backoff: Duration::from_millis(250),
                batch,
                ..EndpointConfig::default()
            },
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let endpoint = Arc::clone(&endpoint);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handler = |inbound: Inbound| {
                    if let Inbound::Wire { src, seq, msg, .. } = inbound {
                        if let Some(reply) = serve_wire_request(&node, &msg) {
                            let _ = endpoint.send_reply(src, seq, &reply);
                        }
                    }
                };
                endpoint.run_receiver(&stop, &mut handler);
            })
        };
        WireNode {
            endpoint,
            faults,
            stop,
            thread: Some(thread),
        }
    }

    fn addr(&self) -> SocketAddr {
        self.endpoint.local_addr().expect("addr")
    }
}

impl Drop for WireNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Builds the chains once (in memory, workload off) and clones them into
/// standalone responder nodes.
fn warm_nodes(
    cfg: &ProtocolConfig,
    topology: &Topology,
    config: &WireConfig,
) -> Vec<Arc<LedgerNode>> {
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(*cfg, topology.clone(), schedule, config.seed);
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(config.warm_slots);
    topology
        .node_ids()
        .map(|id| {
            let mut node = LedgerNode::new(id, topology.neighbors(id).to_vec(), cfg);
            for block in net.node(id).store().iter() {
                node.store_mut().append(block).expect("copy chain");
            }
            Arc::new(node)
        })
        .collect()
}

/// Runs the sweep.
pub fn run(config: &WireConfig) -> WireData {
    let mut cfg = deployment_protocol_config(config.gamma);
    cfg.enable_tps = false; // measure the wire, not the cache
    let topology = deployment_topology(config.seed, config.nodes, 300.0);
    let nodes = warm_nodes(&cfg, &topology, config);
    let validator_id = NodeId(0);

    let mut points = Vec::with_capacity(config.loss_rates.len());
    for (rate_idx, &loss) in config.loss_rates.iter().enumerate() {
        // Fresh endpoints per rate: counters start at zero.
        let wire: Vec<WireNode> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                WireNode::spawn(
                    Arc::clone(node),
                    FaultSpec::degraded(loss),
                    DetRng::seed_from(config.seed ^ ((rate_idx as u64) << 32) ^ i as u64),
                    config.batch,
                )
            })
            .collect();
        let peers = PeerTable::new(
            wire.iter()
                .enumerate()
                .map(|(i, w)| (NodeId(i as u32), w.addr())),
        );
        let validator_endpoint = &wire[validator_id.index()].endpoint;
        let own_store = nodes[validator_id.index()].store();

        let mut target_rng = DetRng::seed_from(config.seed ^ 0x000f_1611 ^ rate_idx as u64);
        let mut successes = 0u64;
        let mut latencies_ms = Vec::with_capacity(config.pops_per_rate);
        let mut messages = 0u64;
        for _ in 0..config.pops_per_rate {
            // An old block of a random other owner, as the paper's
            // min-age workload would pick.
            let owner = NodeId(1 + target_rng.index(config.nodes - 1) as u32);
            let old = (config.warm_slots / 2).max(1) as u32;
            let target = BlockId::new(owner, target_rng.index(old as usize) as u32);

            // Fresh validator state per run: each PoP is an independent
            // sample of the transport (no cache, no carried-over bans).
            let mut trust = TrustCache::new();
            let mut blacklist = Blacklist::new(cfg.blacklist);
            let mut pop_rng = DetRng::seed_from(target_rng.next_u64());
            let mut transport = NetPopTransport {
                endpoint: validator_endpoint,
                peers: &peers,
                horizon: None,
                spans: None,
            };
            let started = Instant::now();
            let report = Validator::new(
                &cfg,
                &topology,
                validator_id,
                own_store,
                &mut trust,
                &mut blacklist,
                &mut pop_rng,
            )
            .run(target, &mut transport);
            latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
            messages += report.metrics.total_messages();
            if report.is_success() {
                successes += 1;
            }
        }

        let validator_stats = validator_endpoint.stats();
        let rtt = validator_endpoint.request_rtt().snapshot();
        let mut net = NetStats::default();
        let mut injected_drops = 0u64;
        for w in &wire {
            net.merge(&w.endpoint.stats());
            injected_drops += w.faults.injected_drops();
        }
        let datagrams = net.datagrams_sent;
        let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
        let max = latencies_ms.iter().cloned().fold(0.0f64, f64::max);
        points.push(RatePoint {
            loss,
            attempts: config.pops_per_rate as u64,
            successes,
            mean_latency_ms: mean,
            max_latency_ms: max,
            retries: validator_stats.request_retries,
            timeouts: validator_stats.request_timeouts,
            datagrams,
            injected_drops,
            messages,
            net,
            rtt_p50_us: rtt.p50(),
            rtt_p99_us: rtt.p99(),
        });
        drop(wire); // join receiver threads before the next rate
    }
    WireData { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_completes_under_injected_loss_via_retry() {
        // The acceptance bar: ≥10% datagram loss, PoP still completes.
        let config = WireConfig {
            nodes: 8,
            warm_slots: 16,
            pops_per_rate: 3,
            gamma: 2,
            seed: 9,
            loss_rates: vec![0.15],
            batch: EndpointConfig::default().batch,
        };
        let data = run(&config);
        let point = &data.points[0];
        assert_eq!(
            point.successes, point.attempts,
            "PoP must recover via retry"
        );
        assert!(point.retries > 0, "recovery must actually retry");
        assert!(point.injected_drops > 0, "faults must actually fire");
    }

    #[test]
    fn lossless_sweep_point_needs_no_retries() {
        let config = WireConfig {
            nodes: 6,
            warm_slots: 12,
            pops_per_rate: 2,
            gamma: 2,
            seed: 5,
            loss_rates: vec![0.0],
            batch: 1,
        };
        let data = run(&config);
        let point = &data.points[0];
        assert_eq!(point.successes, point.attempts);
        assert_eq!(point.injected_drops, 0);
        assert_eq!(point.timeouts, 0);
    }
}
