//! Retention budgets vs the Eq. 2 storage model — the experiment the
//! paper's Propositions 2–3 imply but its evaluation never runs: when a
//! node bounds `S_i` with a disk budget (compacting the oldest segments
//! away), what happens to Proof-of-Path availability, and how much does a
//! persisted trust cache `H_i` buy a restarted node?
//!
//! Two sweeps:
//!
//! * **Retention** — per budget (expressed as an Eq. 2 block horizon:
//!   `budget = horizon × block_bits(mean degree + 1)` plus physical framing),
//!   every node stores its chain in a [`DiskFactory`] with
//!   `retain_disk_bytes` set. After the run, probe PoPs target **old**
//!   blocks (seq 0, the first to be pruned) and **mid-age** blocks (above
//!   every pruned floor). Old-block probes on a compacted chain must come
//!   back as graceful [`PopError::TargetPruned`] misses — counted, never a
//!   panic — while mid-age probes keep succeeding. The measured disk usage
//!   is compared against the Eq. 2 prediction for the retained window.
//! * **Warm restart** — with trust-cache persistence off vs on: a victim
//!   node verifies a fixed target set (filling `H_i`), crashes, restarts,
//!   and re-verifies the same targets. With `--persist-trust-cache`
//!   semantics on, `H_i` is restored and TPS serves the paths from cache
//!   (high hit-rate, no `REQ_CHILD` traffic); cold restarts pay the full
//!   re-verification.

use std::path::PathBuf;
use tldag_core::block::BlockId;
use tldag_core::config::ProtocolConfig;
use tldag_core::error::PopError;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{DetRng, NodeId};
use tldag_storage::{DiskFactory, StorageOptions};

use crate::experiments::scale::Scale;

/// Parameters of the retention sweep.
#[derive(Clone, Debug)]
pub struct RetentionConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Horizon in slots (every node generates one block per slot).
    pub slots: u64,
    /// Consensus margin γ.
    pub gamma: usize,
    /// Retention horizons in blocks (`None` = unbounded, the baseline).
    /// The disk budget for horizon `h` is `h × (Eq. 2 block bytes + frame)`.
    pub horizons: Vec<Option<u32>>,
    /// Probe PoPs per age class per budget.
    pub probes: usize,
    /// Slots to run before the warm-restart victim crashes.
    pub warm_slots: u64,
    /// Slots the victim stays down.
    pub downtime_slots: u64,
    /// Targets the victim verifies before the crash (and re-verifies after).
    pub warm_targets: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Root directory for the per-budget node stores.
    pub storage_root: PathBuf,
    /// Base engine options (segment size is kept small so budgets bite).
    pub storage: StorageOptions,
}

impl RetentionConfig {
    /// Builds the configuration for a [`Scale`].
    pub fn at_scale(scale: Scale) -> Self {
        let storage_root =
            std::env::temp_dir().join(format!("tldag-fig7ret-{}-{scale:?}", std::process::id()));
        let storage = StorageOptions {
            segment_bytes: 8 * 1024,
            flush_buffer_bytes: 4 * 1024,
            ..StorageOptions::default()
        };
        match scale {
            Scale::Paper => RetentionConfig {
                nodes: 40,
                slots: 80,
                gamma: 8,
                horizons: vec![None, Some(60), Some(40), Some(20)],
                probes: 24,
                warm_slots: 40,
                downtime_slots: 8,
                warm_targets: 12,
                seed: 0x7e7e,
                topology: TopologyConfig {
                    nodes: 40,
                    ..TopologyConfig::paper_default()
                },
                storage_root,
                storage,
            },
            Scale::Quick => RetentionConfig {
                nodes: 12,
                slots: 36,
                gamma: 3,
                horizons: vec![None, Some(12)],
                probes: 8,
                warm_slots: 20,
                downtime_slots: 4,
                warm_targets: 6,
                seed: 0x7e7e,
                topology: TopologyConfig::small(12),
                storage_root,
                storage,
            },
        }
    }
}

/// One budget's measurements.
#[derive(Clone, Debug)]
pub struct BudgetSample {
    /// The retention horizon in blocks (`None` = unbounded).
    pub horizon_blocks: Option<u32>,
    /// The derived per-node disk budget in bytes (`None` = unbounded).
    pub budget_bytes: Option<u64>,
    /// Mean measured on-disk bytes per node at the end of the run.
    pub mean_disk_bytes: f64,
    /// Eq. 2 **logical** size of the retained window, in bytes per node
    /// (the model prices the full sensed body `C`; the simulator's physical
    /// payloads are smaller, so this tracks the *model's* budget).
    pub eq2_retained_bytes: f64,
    /// Mean retained blocks per node (`len − pruned floor`).
    pub mean_retained_blocks: f64,
    /// Mean pruned floor across nodes (0 = nothing pruned).
    pub mean_pruned_floor: f64,
    /// Old-block probes: successes / attempts.
    pub old_success: (u64, u64),
    /// Old-block probes answered with a graceful `TargetPruned` miss.
    pub old_pruned_misses: u64,
    /// Old-block probes where the target itself was still retained but
    /// consensus failed with pruned evidence on the proof path (another
    /// node's compacted chain answered a path extension with `Pruned`) —
    /// the third graceful outcome retention can produce.
    pub old_path_pruned_failures: u64,
    /// Mid-age probes (above every pruned floor): successes / attempts.
    pub mid_success: (u64, u64),
    /// `ChildResponse::Pruned` replies observed on the probe paths.
    pub pruned_replies_on_paths: u64,
}

/// One warm-restart measurement (persistence off or on).
#[derive(Clone, Debug)]
pub struct WarmSample {
    /// Whether `H_i` persistence was enabled.
    pub persist: bool,
    /// Trusted headers in the victim's cache right after the restart.
    pub headers_after_restart: usize,
    /// TPS path extensions across the post-restart re-verifications.
    pub tps_extensions: u64,
    /// `REQ_CHILD` messages the re-verifications still had to send.
    pub req_child_sent: u64,
    /// Post-restart re-verifications that reached consensus.
    pub successes: u64,
    /// TPS cache hit-rate: extensions / (extensions + REQ_CHILDs).
    pub hit_rate: f64,
}

/// Results of both sweeps.
#[derive(Clone, Debug)]
pub struct RetentionData {
    /// One sample per budget, in sweep order.
    pub budgets: Vec<BudgetSample>,
    /// Cold (persist off) then warm (persist on) restart samples.
    pub warm: Vec<WarmSample>,
}

/// Estimated physical bytes of one block record: the Eq. 2 logical size
/// plus the codec/frame overhead (frame header, ids, length fields).
fn record_bytes_estimate(proto: &ProtocolConfig, digest_entries: usize) -> u64 {
    proto.block_bits(digest_entries).bits() / 8 + 64
}

fn protocol(gamma: usize) -> ProtocolConfig {
    ProtocolConfig::test_default().with_gamma(gamma)
}

/// Runs both sweeps.
pub fn run(cfg: &RetentionConfig) -> RetentionData {
    let mut rng = DetRng::seed_from(cfg.seed);
    let topology = Topology::random_connected(&cfg.topology, &mut rng);
    let proto = protocol(cfg.gamma);
    let mean_entries = topology.mean_degree().round() as usize + 1;
    let per_block = record_bytes_estimate(&proto, mean_entries);

    let budgets = cfg
        .horizons
        .iter()
        .map(|h| run_budget(cfg, &topology, *h, h.map(|h| u64::from(h) * per_block)))
        .collect();

    let warm = [false, true]
        .into_iter()
        .map(|persist| run_warm(cfg, &topology, persist))
        .collect();

    let _ = std::fs::remove_dir_all(&cfg.storage_root);
    RetentionData { budgets, warm }
}

/// Runs one retention budget and probes availability by block age.
fn run_budget(
    cfg: &RetentionConfig,
    topology: &Topology,
    horizon_blocks: Option<u32>,
    budget_bytes: Option<u64>,
) -> BudgetSample {
    let proto = protocol(cfg.gamma);
    let label = match horizon_blocks {
        Some(h) => format!("h{h}"),
        None => "unbounded".to_string(),
    };
    eprintln!(
        "fig7_retention: budget sweep `{label}` ({} nodes × {} slots) …",
        cfg.nodes, cfg.slots
    );
    let root = cfg.storage_root.join(format!("budget-{label}"));
    let factory = DiskFactory::new(
        &root,
        cfg.storage.clone().with_retain_disk_bytes(budget_bytes),
    );
    let mut net = TldagNetwork::with_factory(
        proto,
        topology.clone(),
        GenerationSchedule::uniform(topology.len()),
        cfg.seed,
        Box::new(factory),
    );
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.run_slots(cfg.slots);
    net.sync_storage().expect("final flush");

    let floors: Vec<u32> = topology
        .node_ids()
        .map(|id| net.node(id).pruned_floor())
        .collect();
    let mean_pruned_floor = floors.iter().map(|&f| f64::from(f)).sum::<f64>() / cfg.nodes as f64;
    let max_floor = floors.iter().copied().max().unwrap_or(0);
    let mean_retained_blocks = topology
        .node_ids()
        .map(|id| {
            let node = net.node(id);
            (node.chain_len() as u32 - node.pruned_floor()) as f64
        })
        .sum::<f64>()
        / cfg.nodes as f64;
    let mean_disk_bytes = measure_disk_bytes(&root) as f64 / cfg.nodes as f64;
    // Eq. 2 over the retained window: the engines' logical_bits() sums
    // header + body bits of exactly the retained blocks.
    let eq2_retained_bytes = topology
        .node_ids()
        .map(|id| net.node(id).store().logical_bits(&proto).bits() as f64 / 8.0)
        .sum::<f64>()
        / cfg.nodes as f64;

    // Probes. Old targets are seq 0 (pruned first); mid-age targets sit
    // above every pruned floor but old enough to have children everywhere.
    let mut probe_rng = DetRng::seed_from(cfg.seed ^ 0xa9e);
    let mid_seq = max_floor.saturating_add(2).min(cfg.slots as u32 - 2);
    let mut old_success = (0u64, 0u64);
    let mut old_pruned_misses = 0u64;
    let mut old_path_pruned_failures = 0u64;
    let mut mid_success = (0u64, 0u64);
    let mut pruned_replies_on_paths = 0u64;
    let ids: Vec<NodeId> = topology.node_ids().collect();
    for _ in 0..cfg.probes {
        let owner = *probe_rng.choose(&ids).expect("nodes exist");
        let validator = NodeId((owner.0 + 1) % cfg.nodes as u32);
        for (seq, bucket, pruned_counter) in [
            (0u32, &mut old_success, true),
            (mid_seq, &mut mid_success, false),
        ] {
            let report = net.run_pop(validator, BlockId::new(owner, seq), false);
            bucket.1 += 1;
            if report.is_success() {
                bucket.0 += 1;
            } else if pruned_counter {
                if let Err(PopError::TargetPruned { .. }) = report.outcome {
                    old_pruned_misses += 1;
                } else if report.metrics.pruned_misses > 0 {
                    // The target was still on disk at its owner (floors
                    // differ per node), but the proof path ran into other
                    // nodes' pruned chains: a retention-caused failure,
                    // distinct from a graceful target miss.
                    old_path_pruned_failures += 1;
                }
            }
            pruned_replies_on_paths += report.metrics.pruned_misses;
        }
    }

    BudgetSample {
        horizon_blocks,
        budget_bytes,
        mean_disk_bytes,
        eq2_retained_bytes,
        mean_retained_blocks,
        mean_pruned_floor,
        old_success,
        old_pruned_misses,
        old_path_pruned_failures,
        mid_success,
        pruned_replies_on_paths,
    }
}

/// Runs the warm-restart comparison for one persistence setting.
fn run_warm(cfg: &RetentionConfig, topology: &Topology, persist: bool) -> WarmSample {
    eprintln!("fig7_retention: warm-restart sweep (persist_trust_cache = {persist}) …",);
    let proto = protocol(cfg.gamma);
    let root = cfg.storage_root.join(format!("warm-{persist}"));
    let factory = DiskFactory::new(&root, cfg.storage.clone());
    let mut net = TldagNetwork::with_factory(
        proto,
        topology.clone(),
        GenerationSchedule::uniform(topology.len()),
        cfg.seed,
        Box::new(factory),
    );
    net.set_verification_workload(VerificationWorkload::Disabled);
    net.set_persist_trust_cache(persist);
    net.run_slots(cfg.warm_slots);

    // A fixed target set, chosen identically for both settings.
    let mut target_rng = DetRng::seed_from(cfg.seed ^ 0x3aa);
    let victim = NodeId(0);
    let ids: Vec<NodeId> = topology.node_ids().filter(|&id| id != victim).collect();
    let targets: Vec<BlockId> = (0..cfg.warm_targets)
        .map(|_| {
            let owner = *target_rng.choose(&ids).expect("nodes exist");
            let seq = target_rng.next_below(cfg.warm_slots.saturating_sub(4).max(1)) as u32;
            BlockId::new(owner, seq)
        })
        .collect();

    // Pre-crash: the victim verifies every target, filling H_i; the
    // storage flush also persists the cache when enabled.
    for &target in &targets {
        net.run_pop(victim, target, true);
    }
    net.sync_storage().expect("pre-crash flush");

    net.crash_node(victim);
    net.run_slots(cfg.downtime_slots);
    net.restart_node(victim).expect("disk-backed restart");
    let headers_after_restart = net.node(victim).trust_cache().len();

    // Post-restart: re-verify the same targets. Probes (commit = false)
    // leave the restored cache untouched, so every probe measures exactly
    // the restart state.
    let mut tps_extensions = 0u64;
    let mut req_child_sent = 0u64;
    let mut successes = 0u64;
    for &target in &targets {
        let report = net.run_pop(victim, target, false);
        tps_extensions += report.metrics.tps_extensions;
        req_child_sent += report.metrics.req_child_sent;
        if report.is_success() {
            successes += 1;
        }
    }
    let denom = tps_extensions + req_child_sent;
    WarmSample {
        persist,
        headers_after_restart,
        tps_extensions,
        req_child_sent,
        successes,
        hit_rate: if denom == 0 {
            0.0
        } else {
            tps_extensions as f64 / denom as f64
        },
    }
}

/// Sums file sizes under one budget's storage root.
fn measure_disk_bytes(root: &std::path::Path) -> u64 {
    let mut total = 0u64;
    let Ok(nodes) = std::fs::read_dir(root) else {
        return 0;
    };
    for node in nodes.flatten() {
        if let Ok(files) = std::fs::read_dir(node.path()) {
            for f in files.flatten() {
                let name = f.file_name();
                let is_segment = name.to_string_lossy().ends_with(".log");
                if is_segment {
                    if let Ok(meta) = f.metadata() {
                        total += meta.len();
                    }
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str) -> RetentionConfig {
        RetentionConfig {
            nodes: 10,
            slots: 24,
            gamma: 2,
            horizons: vec![None, Some(8)],
            probes: 4,
            warm_slots: 12,
            downtime_slots: 3,
            warm_targets: 4,
            seed: 11,
            topology: TopologyConfig::small(10),
            storage_root: std::env::temp_dir()
                .join(format!("tldag-fig7ret-test-{name}-{}", std::process::id())),
            storage: StorageOptions {
                segment_bytes: 2 * 1024,
                flush_buffer_bytes: 512,
                ..StorageOptions::default()
            },
        }
    }

    #[test]
    fn budgets_prune_and_old_probes_miss_gracefully() {
        let cfg = tiny("budget");
        let data = run(&cfg);
        let _ = std::fs::remove_dir_all(&cfg.storage_root);

        let unbounded = &data.budgets[0];
        assert_eq!(unbounded.mean_pruned_floor, 0.0, "no budget, no pruning");
        assert_eq!(
            unbounded.old_success.0, unbounded.old_success.1,
            "unbounded retention keeps old blocks verifiable"
        );
        assert_eq!(unbounded.old_pruned_misses, 0);

        let tight = &data.budgets[1];
        assert!(tight.mean_pruned_floor > 0.0, "budget must prune");
        assert!(
            tight.old_pruned_misses > 0,
            "pruned targets must surface as graceful TargetPruned misses"
        );
        assert_eq!(
            tight.old_success.0 + tight.old_pruned_misses + tight.old_path_pruned_failures,
            tight.old_success.1,
            "every old probe succeeds, reports a pruned target, or fails \
with pruned evidence on the path — never an unexplained failure"
        );
        assert_eq!(
            tight.mid_success.0, tight.mid_success.1,
            "blocks above the floor stay verifiable"
        );
        assert!(
            tight.mean_disk_bytes < unbounded.mean_disk_bytes,
            "the budget must actually shrink disk usage"
        );
        // The budget is honoured up to one tail segment of slack per node
        // (compaction runs at segment rolls and never drops the tail).
        let cap = tight.budget_bytes.unwrap() as f64 + cfg.storage.segment_bytes as f64;
        assert!(
            tight.mean_disk_bytes <= cap,
            "disk {} exceeds budget {} + segment slack",
            tight.mean_disk_bytes,
            cap
        );
        // The Eq. 2 model prices exactly the retained window: fewer
        // retained blocks ⇒ proportionally smaller modelled footprint.
        assert!(tight.mean_retained_blocks < unbounded.mean_retained_blocks);
        assert!(tight.eq2_retained_bytes < unbounded.eq2_retained_bytes);
        let per_block_tight = tight.eq2_retained_bytes / tight.mean_retained_blocks;
        let per_block_unbounded = unbounded.eq2_retained_bytes / unbounded.mean_retained_blocks;
        assert!(
            (per_block_tight / per_block_unbounded - 1.0).abs() < 0.15,
            "Eq. 2 per-block cost should be budget-independent: {per_block_tight} vs {per_block_unbounded}"
        );
    }

    #[test]
    fn warm_restart_beats_cold_restart() {
        let cfg = tiny("warm");
        let data = run(&cfg);
        let _ = std::fs::remove_dir_all(&cfg.storage_root);

        let cold = &data.warm[0];
        let warm = &data.warm[1];
        assert!(!cold.persist && warm.persist);
        assert_eq!(cold.headers_after_restart, 0, "cold restart loses H_i");
        assert!(warm.headers_after_restart > 0, "warm restart restores H_i");
        assert!(
            warm.hit_rate > cold.hit_rate,
            "persisted H_i must raise the TPS hit-rate: warm {} vs cold {}",
            warm.hit_rate,
            cold.hit_rate
        );
        assert!(
            warm.req_child_sent < cold.req_child_sent,
            "warm TPS must save REQ_CHILD traffic"
        );
    }
}
