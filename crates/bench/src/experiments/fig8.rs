//! Fig. 8 — communication overhead.
//!
//! Panel (a): overall average per-node transmitted data (Mb) versus slots for
//! PBFT, IOTA, and 2LDAG with 33 % and 49 % of nodes malicious. Panel (b):
//! the DAG-construction component (digest broadcasts only). Panel (c): the
//! consensus component (PoP header traffic). Panel (d): the CDF of per-node
//! transmitted data at the final slot.
//!
//! The paper's definition — "the total amount of data a node transmits" — is
//! matched by using tx-side accounting; the target-block body retrieval is
//! application traffic and excluded (see DESIGN.md §3.3).

use crate::experiments::scale::Scale;
use tldag_baselines::iota::IotaNetwork;
use tldag_baselines::pbft::PbftNetwork;
use tldag_baselines::BaselineConfig;
use tldag_core::attack::Behavior;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::bus::TrafficClass;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::fault::{FaultPlan, MaliciousPlacement};
use tldag_sim::metrics::SeriesSet;
use tldag_sim::stats::Cdf;
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::{Bits, DetRng};

/// One 2LDAG adversary setting.
#[derive(Clone, Debug)]
pub struct GammaVariant {
    /// Series label, e.g. `"2LDAG-33%"`.
    pub label: String,
    /// Consensus margin γ.
    pub gamma: usize,
    /// Number of malicious (unresponsive) nodes.
    pub malicious: usize,
}

/// Parameters of the Fig. 8 sweep.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Horizon in slots.
    pub slots: u64,
    /// Sampling interval.
    pub sample_every: u64,
    /// Body size in MB (the paper uses 0.5).
    pub body_mb: f64,
    /// The 2LDAG adversary settings (paper: 33 % and 49 %).
    pub variants: Vec<GammaVariant>,
    /// Topology parameters.
    pub topology: TopologyConfig,
    /// Root seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Builds the configuration for a [`Scale`].
    pub fn at_scale(scale: Scale) -> Self {
        let nodes = scale.nodes();
        // Floor keeps the 49 % setting feasible at any scale: consensus
        // needs gamma + 1 distinct path nodes among the nodes - gamma honest
        // ones, so gamma <= (nodes - 1) / 2.
        let pct = |f: f64| ((nodes as f64 * f).floor() as usize).min((nodes - 1) / 2);
        Fig8Config {
            nodes,
            slots: scale.slots(),
            sample_every: scale.sample_every(),
            body_mb: 0.5,
            variants: vec![
                GammaVariant {
                    label: "2LDAG-33%".into(),
                    gamma: pct(0.33),
                    malicious: pct(0.33),
                },
                GammaVariant {
                    label: "2LDAG-49%".into(),
                    gamma: pct(0.49),
                    malicious: pct(0.49),
                },
            ],
            topology: TopologyConfig {
                nodes,
                ..TopologyConfig::paper_default()
            },
            seed: 11,
        }
    }
}

/// The full Fig. 8 dataset. All series carry cumulative mean per-node
/// transmitted megabits.
#[derive(Clone, Debug)]
pub struct Fig8Data {
    /// Panel (a): PBFT, IOTA, and each 2LDAG variant.
    pub overall: SeriesSet,
    /// Panel (b): digest traffic per 2LDAG variant.
    pub dag_construction: SeriesSet,
    /// Panel (c): PoP traffic per 2LDAG variant.
    pub consensus: SeriesSet,
    /// Panel (d): per-node transmitted Mb at the final slot, per variant.
    pub cdfs: Vec<(String, Cdf)>,
    /// PoP attempt/success counters per variant (diagnostic).
    pub pop_counters: Vec<(String, u64, u64)>,
}

/// Runs the sweep.
pub fn run(cfg: &Fig8Config) -> Fig8Data {
    let mut rng = DetRng::seed_from(cfg.seed);
    let topology = Topology::random_connected(&cfg.topology, &mut rng);
    let body_bits = Bits::from_megabytes_f(cfg.body_mb).bits();
    let schedule = GenerationSchedule::uniform(cfg.nodes);

    let mut overall = SeriesSet::new();
    let mut dag_construction = SeriesSet::new();
    let mut consensus = SeriesSet::new();
    let mut cdfs = Vec::new();
    let mut pop_counters = Vec::new();

    // Baselines.
    let base = BaselineConfig::paper_default().with_body_bits(body_bits);
    let mut pbft = PbftNetwork::new(base, topology.clone(), cfg.seed);
    let mut iota = IotaNetwork::new(base, topology.clone(), cfg.seed);
    for slot in 1..=cfg.slots {
        pbft.step();
        iota.step();
        if slot % cfg.sample_every == 0 {
            overall.series_mut("PBFT").record(
                slot,
                pbft.accounting()
                    .mean_node_tx(TrafficClass::Pbft)
                    .as_megabits(),
            );
            overall.series_mut("IOTA").record(
                slot,
                iota.accounting()
                    .mean_node_tx(TrafficClass::IotaGossip)
                    .as_megabits(),
            );
        }
    }

    // 2LDAG variants.
    for variant in &cfg.variants {
        let proto = ProtocolConfig::paper_default()
            .with_body_bits(body_bits)
            .with_gamma(variant.gamma);
        let mut net = TldagNetwork::new(proto, topology.clone(), schedule.clone(), cfg.seed);
        net.set_verification_workload(VerificationWorkload::RandomPast {
            min_age_slots: cfg.nodes as u64,
        });
        let plan = FaultPlan::select(
            &topology,
            variant.malicious,
            MaliciousPlacement::Uniform,
            &mut rng.fork(variant.gamma as u64),
        );
        net.apply_fault_plan(&plan, Behavior::Unresponsive);

        for slot in 1..=cfg.slots {
            net.step();
            if slot % cfg.sample_every == 0 {
                let acc = net.accounting();
                let dag = acc
                    .mean_node_tx(TrafficClass::DagConstruction)
                    .as_megabits();
                let pop = acc.mean_node_tx(TrafficClass::Consensus).as_megabits();
                overall.series_mut(&variant.label).record(slot, dag + pop);
                dag_construction
                    .series_mut(&variant.label)
                    .record(slot, dag);
                consensus.series_mut(&variant.label).record(slot, pop);
            }
        }
        let per_node: Vec<f64> = net
            .accounting()
            .per_node_tx(&[TrafficClass::DagConstruction, TrafficClass::Consensus])
            .iter()
            .map(|b| b.as_megabits())
            .collect();
        cdfs.push((variant.label.clone(), Cdf::from_samples(per_node)));
        let (attempts, successes) = net.pop_counters();
        pop_counters.push((variant.label.clone(), attempts, successes));
    }

    Fig8Data {
        overall,
        dag_construction,
        consensus,
        cdfs,
        pop_counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig8Config {
        Fig8Config {
            nodes: 10,
            slots: 24,
            sample_every: 6,
            body_mb: 0.1,
            variants: vec![
                GammaVariant {
                    label: "2LDAG-2".into(),
                    gamma: 2,
                    malicious: 2,
                },
                GammaVariant {
                    label: "2LDAG-3".into(),
                    gamma: 3,
                    malicious: 3,
                },
            ],
            topology: TopologyConfig::small(10),
            seed: 5,
        }
    }

    #[test]
    fn tldag_transmits_orders_less_than_baselines() {
        let cfg = tiny();
        let data = run(&cfg);
        let last = |set: &SeriesSet, name: &str| set.series(name).unwrap().last().unwrap().1;
        let pbft = last(&data.overall, "PBFT");
        let iota = last(&data.overall, "IOTA");
        let tldag = last(&data.overall, "2LDAG-2");
        assert!(pbft > tldag * 20.0, "PBFT {pbft} vs 2LDAG {tldag}");
        assert!(iota > tldag * 20.0, "IOTA {iota} vs 2LDAG {tldag}");
    }

    #[test]
    fn consensus_traffic_dwarfs_dag_construction() {
        // The paper: "the communication overhead of 2LDAG for consensus is
        // much higher than DAG construction" (digests are tiny).
        let cfg = tiny();
        let data = run(&cfg);
        let dag = data
            .dag_construction
            .series("2LDAG-2")
            .unwrap()
            .last()
            .unwrap()
            .1;
        let pop = data.consensus.series("2LDAG-2").unwrap().last().unwrap().1;
        // At tiny scale the trust cache quickly blankets the small target
        // era, so late PoPs are nearly free; consensus traffic still must be
        // the same order as digest traffic. The paper-scale run (fig8_comm)
        // shows the full separation.
        assert!(pop > dag * 0.3, "consensus {pop} vs DAG {dag}");
    }

    #[test]
    fn higher_gamma_costs_more_consensus_traffic() {
        let cfg = tiny();
        let data = run(&cfg);
        let lo = data.consensus.series("2LDAG-2").unwrap().last().unwrap().1;
        let hi = data.consensus.series("2LDAG-3").unwrap().last().unwrap().1;
        assert!(hi > lo, "γ=3 ({hi}) should out-talk γ=2 ({lo})");
    }

    #[test]
    fn cdfs_cover_all_nodes() {
        let cfg = tiny();
        let data = run(&cfg);
        assert_eq!(data.cdfs.len(), 2);
        for (label, cdf) in &data.cdfs {
            assert_eq!(cdf.len(), cfg.nodes, "{label}");
        }
    }
}
