//! Slot-loop scaling — the experiment behind the sharded engine and the
//! group-commit storage layer (not a paper panel; the ROADMAP's ~10⁵-node
//! target implies it).
//!
//! Three sweeps:
//!
//! * **Threads** (memory backend, large N): the same fixed-seed run executed
//!   at 1, 2, 4, … worker threads. Reports slot-loop throughput and checks
//!   that every run produced the **byte-identical** network digest — the
//!   determinism guarantee that makes sharding safe to enable anywhere.
//! * **Verify** (memory backend, moderate N): the same thread sweep with the
//!   PoP verification workload and lossy links **on**, so the determinism
//!   check also covers the shard-parallel verify phase (per-validator link
//!   fault streams, accounting merges, trust-cache take/restore).
//! * **Sync policy** (disk backends, moderate N): per-node `fsync` vs
//!   group-committed shard logs under `per-slot` and `grouped:n` policies.
//!   Reports throughput and the measured number of fsyncs, which is the
//!   syscall count the group-commit layer exists to collapse.
//!
//! Wall-clock speedup from threads requires physical cores; on a single-core
//! host the thread sweep degenerates to ~1× (the digest check still runs).
//! The fsync collapse is core-count independent.

use std::path::PathBuf;
use std::time::Instant;
use tldag_core::config::ProtocolConfig;
use tldag_core::network::TldagNetwork;
use tldag_core::store::SyncPolicy;
use tldag_core::workload::VerificationWorkload;
use tldag_sim::engine::{GenerationSchedule, Sharding};
use tldag_sim::topology::{Topology, TopologyConfig};
use tldag_sim::DetRng;
use tldag_storage::{DiskFactory, ShardedDiskFactory, StorageOptions};

use crate::experiments::scale::Scale;

/// Parameters of the scaling sweeps.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Nodes in the thread sweep (memory backend).
    pub thread_sweep_nodes: usize,
    /// Slots per thread-sweep run.
    pub thread_sweep_slots: u64,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Nodes in the PoP-enabled determinism sweep (smaller than the thread
    /// sweep: the candidate scan is O(nodes²) per slot).
    pub verify_sweep_nodes: usize,
    /// Slots per PoP-enabled determinism run.
    pub verify_sweep_slots: u64,
    /// Nodes in the sync-policy sweep (disk backends).
    pub sync_sweep_nodes: usize,
    /// Slots per sync-policy run.
    pub sync_sweep_slots: u64,
    /// Shards (= engine threads) for the group-committed runs.
    pub sync_sweep_shards: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Root directory for the disk runs (wiped per run).
    pub storage_root: PathBuf,
}

impl ScalingConfig {
    /// Builds the configuration for a [`Scale`].
    pub fn at_scale(scale: Scale) -> Self {
        let (thread_sweep_nodes, thread_sweep_slots, threads) = match scale {
            Scale::Paper => (10_000, 5, vec![1, 2, 4, 8]),
            Scale::Quick => (1_000, 3, vec![1, 2, 4]),
        };
        let (verify_sweep_nodes, verify_sweep_slots) = match scale {
            Scale::Paper => (1_500, 6),
            Scale::Quick => (300, 4),
        };
        let (sync_sweep_nodes, sync_sweep_slots) = match scale {
            Scale::Paper => (256, 12),
            Scale::Quick => (48, 6),
        };
        ScalingConfig {
            thread_sweep_nodes,
            thread_sweep_slots,
            threads,
            verify_sweep_nodes,
            verify_sweep_slots,
            sync_sweep_nodes,
            sync_sweep_slots,
            sync_sweep_shards: 4,
            seed: 1042,
            storage_root: std::env::temp_dir().join(format!("tldag-fig10-{}", std::process::id())),
        }
    }
}

/// One measured run of the thread sweep.
#[derive(Clone, Debug)]
pub struct ThreadSample {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Blocks generated per second of wall time.
    pub blocks_per_sec: f64,
    /// Throughput relative to the single-threaded run.
    pub speedup: f64,
    /// Hex prefix of the run's network digest (chains of all nodes).
    pub digest: String,
}

/// One measured run of the sync-policy sweep.
#[derive(Clone, Debug)]
pub struct SyncSample {
    /// Human-readable storage configuration.
    pub config: String,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Blocks generated per second of wall time.
    pub blocks_per_sec: f64,
    /// Physical fsyncs issued across the run.
    pub fsyncs: u64,
    /// Throughput relative to the per-node-fsync baseline.
    pub speedup: f64,
}

/// One measured run of the PoP-enabled determinism sweep.
#[derive(Clone, Debug)]
pub struct VerifySample {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Lifetime PoP attempts / successes — must match across thread counts.
    pub pop_counters: (u64, u64),
    /// Hex prefix of the run's network digest.
    pub digest: String,
}

/// Results of all three sweeps.
#[derive(Clone, Debug)]
pub struct ScalingData {
    /// Thread-sweep samples, in sweep order (threads ascending).
    pub thread_samples: Vec<ThreadSample>,
    /// Whether every thread count produced the identical network digest.
    pub digests_identical: bool,
    /// PoP-enabled determinism samples (verification workload + lossy
    /// links on), exercising the shard-parallel verify phase at scale.
    pub verify_samples: Vec<VerifySample>,
    /// Whether the PoP-enabled runs matched (digests **and** counters).
    pub verify_identical: bool,
    /// Sync-policy samples, baseline first.
    pub sync_samples: Vec<SyncSample>,
}

/// A deployment whose mean degree stays moderate (~7) at any scale: a
/// jittered grid with spacing below the radio range, the standard dense-mesh
/// IoT layout. The anchored placement of `Topology::random_connected` is the
/// wrong tool here — it grows a connected *blob*, so degree (and with it
/// header size and gossip cost) explodes with `nodes`; grid spacing pins the
/// density instead, and adjacency of grid neighbours guarantees
/// connectivity.
fn scaled_topology(nodes: usize, seed: u64) -> Topology {
    let range_m = TopologyConfig::paper_default().range_m; // 50 m radios
    let spacing = range_m * 0.66; // grid neighbours always in range
    let jitter = range_m * 0.15; // ±: breaks the lattice symmetry
    let cols = (nodes as f64).sqrt().ceil() as usize;
    let mut rng = DetRng::seed_from(seed);
    let positions = (0..nodes)
        .map(|i| {
            let (row, col) = (i / cols, i % cols);
            tldag_sim::geometry::Point::new(
                col as f64 * spacing + rng.range_f64(-jitter, jitter),
                row as f64 * spacing + rng.range_f64(-jitter, jitter),
            )
        })
        .collect();
    Topology::from_positions(positions, range_m)
}

fn protocol() -> ProtocolConfig {
    // Small bodies and the CLI's mining difficulty: the sweep measures the
    // slot loop (mining, signing, gossip, sync), not payload memcpy.
    ProtocolConfig::paper_default()
        .with_body_bits(1024)
        .with_gamma(3)
        .with_difficulty(6)
}

fn io_bound_protocol() -> ProtocolConfig {
    // The sync-policy sweep models the disk-bound regime group commit
    // exists for: lightweight sensor blocks (no mining, tiny bodies) where
    // the fsync syscall — not block construction — caps slot throughput.
    ProtocolConfig::paper_default()
        .with_body_bits(256)
        .with_gamma(3)
        .with_difficulty(0)
}

fn run_memory(cfg: &ScalingConfig, topology: &Topology, threads: usize) -> ThreadSample {
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(protocol(), topology.clone(), schedule, cfg.seed);
    net.set_sharding(Sharding::threads(threads));
    net.set_verification_workload(VerificationWorkload::Disabled);
    let start = Instant::now();
    net.run_slots(cfg.thread_sweep_slots);
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let mut digest = net.network_digest().to_string();
    digest.truncate(16);
    ThreadSample {
        threads,
        wall_ms,
        blocks_per_sec: net.total_blocks() as f64 / wall.as_secs_f64(),
        speedup: 0.0, // filled in by the caller relative to threads=1
        digest,
    }
}

/// One run with the verification workload **on** (plus lossy links), so the
/// shard-parallel PoP phase — the most intricate parallel phase — is part of
/// what the determinism check covers.
fn run_verify(cfg: &ScalingConfig, topology: &Topology, threads: usize) -> VerifySample {
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut net = TldagNetwork::new(protocol(), topology.clone(), schedule, cfg.seed);
    net.set_sharding(Sharding::threads(threads));
    net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 2 });
    net.set_link_faults(tldag_sim::fault::LinkFaults::lossy(
        0.02,
        DetRng::seed_from(cfg.seed ^ 0x10),
    ));
    let start = Instant::now();
    net.run_slots(cfg.verify_sweep_slots);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut digest = net.network_digest().to_string();
    digest.truncate(16);
    VerifySample {
        threads,
        wall_ms,
        pop_counters: net.pop_counters(),
        digest,
    }
}

fn run_disk(
    cfg: &ScalingConfig,
    topology: &Topology,
    label: &str,
    sharded: bool,
    policy: SyncPolicy,
) -> SyncSample {
    let schedule = GenerationSchedule::uniform(topology.len());
    let root = cfg.storage_root.join(label.replace([' ', ':'], "-"));
    let factory: Box<dyn tldag_core::store::BackendFactory> = if sharded {
        Box::new(ShardedDiskFactory::new(
            &root,
            cfg.sync_sweep_shards,
            topology.len(),
        ))
    } else {
        Box::new(DiskFactory::new(&root, StorageOptions::default()))
    };
    let mut net = TldagNetwork::with_factory(
        io_bound_protocol(),
        topology.clone(),
        schedule,
        cfg.seed,
        factory,
    );
    net.set_sharding(Sharding::threads(cfg.sync_sweep_shards));
    net.set_sync_policy(policy);
    net.set_verification_workload(VerificationWorkload::Disabled);
    let start = Instant::now();
    net.run_slots(cfg.sync_sweep_slots);
    let wall = start.elapsed();
    // Per-node stores count their own fsyncs; sharded handles report the
    // shared shard log's count, so sum one representative per shard — the
    // first node of each contiguous band.
    let fsyncs: u64 = if sharded {
        Sharding::threads(cfg.sync_sweep_shards)
            .chunk_ranges(topology.len())
            .iter()
            .map(|band| {
                net.node(tldag_sim::NodeId(band.start as u32))
                    .store()
                    .fsync_count()
            })
            .sum()
    } else {
        net.topology()
            .node_ids()
            .map(|id| net.node(id).store().fsync_count())
            .sum()
    };
    let wall_ms = wall.as_secs_f64() * 1e3;
    let blocks_per_sec = net.total_blocks() as f64 / wall.as_secs_f64();
    drop(net);
    let _ = std::fs::remove_dir_all(&root);
    SyncSample {
        config: label.to_string(),
        wall_ms,
        blocks_per_sec,
        fsyncs,
        speedup: 0.0, // filled in by the caller relative to the baseline
    }
}

/// Runs both sweeps.
pub fn run(cfg: &ScalingConfig) -> ScalingData {
    // --- Thread sweep (memory backend). One topology shared by all runs.
    eprintln!(
        "fig10_scaling: building {}-node deployment …",
        cfg.thread_sweep_nodes
    );
    let topo = scaled_topology(cfg.thread_sweep_nodes, cfg.seed);
    let mut thread_samples: Vec<ThreadSample> = Vec::new();
    for &threads in &cfg.threads {
        eprintln!(
            "fig10_scaling: thread sweep {} nodes × {} slots, {} thread(s) …",
            cfg.thread_sweep_nodes, cfg.thread_sweep_slots, threads
        );
        thread_samples.push(run_memory(cfg, &topo, threads));
    }
    let base = thread_samples[0].blocks_per_sec;
    for s in &mut thread_samples {
        s.speedup = s.blocks_per_sec / base;
    }
    let digests_identical = thread_samples
        .iter()
        .all(|s| s.digest == thread_samples[0].digest);

    // --- PoP-enabled determinism sweep.
    let topo = scaled_topology(cfg.verify_sweep_nodes, cfg.seed ^ 0x9e37);
    let mut verify_samples = Vec::new();
    for &threads in &cfg.threads {
        eprintln!(
            "fig10_scaling: verify sweep {} nodes × {} slots (PoP on), {} thread(s) …",
            cfg.verify_sweep_nodes, cfg.verify_sweep_slots, threads
        );
        verify_samples.push(run_verify(cfg, &topo, threads));
    }
    let verify_identical = verify_samples.iter().all(|s| {
        s.digest == verify_samples[0].digest && s.pop_counters == verify_samples[0].pop_counters
    });

    // --- Sync-policy sweep (disk backends).
    let topo = scaled_topology(cfg.sync_sweep_nodes, cfg.seed ^ 0x51ac);
    let shards = cfg.sync_sweep_shards;
    let mut sync_samples = Vec::new();
    for (label, sharded, policy) in [
        ("per-node fsync, per-slot", false, SyncPolicy::PerSlot),
        ("group-commit, per-slot", true, SyncPolicy::PerSlot),
        ("group-commit, grouped:4", true, SyncPolicy::Grouped(4)),
    ] {
        eprintln!(
            "fig10_scaling: sync sweep `{label}` ({} nodes × {} slots, {shards} shards) …",
            cfg.sync_sweep_nodes, cfg.sync_sweep_slots
        );
        sync_samples.push(run_disk(cfg, &topo, label, sharded, policy));
    }
    let base = sync_samples[0].blocks_per_sec;
    for s in &mut sync_samples {
        s.speedup = s.blocks_per_sec / base;
    }
    let _ = std::fs::remove_dir_all(&cfg.storage_root);

    ScalingData {
        thread_samples,
        digests_identical,
        verify_samples,
        verify_identical,
        sync_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_deterministic_and_collapses_fsyncs() {
        let mut cfg = ScalingConfig::at_scale(Scale::Quick);
        // Keep the unit test fast: tiny run, 1 vs 2 threads.
        cfg.thread_sweep_nodes = 64;
        cfg.thread_sweep_slots = 2;
        cfg.threads = vec![1, 2];
        cfg.verify_sweep_nodes = 48;
        cfg.verify_sweep_slots = 4;
        cfg.sync_sweep_nodes = 16;
        cfg.sync_sweep_slots = 4;
        cfg.storage_root =
            std::env::temp_dir().join(format!("tldag-fig10-test-{}", std::process::id()));
        let data = run(&cfg);
        assert!(data.digests_identical, "thread counts diverged");
        assert_eq!(data.thread_samples.len(), 2);
        assert!(data.verify_identical, "PoP-enabled runs diverged");
        assert!(
            data.verify_samples[0].pop_counters.0 > 0,
            "verify sweep must actually run PoPs"
        );
        let baseline = &data.sync_samples[0];
        let grouped = &data.sync_samples[1];
        // 16 nodes × 4 slots with one fsync per node per slot vs one per
        // shard per slot.
        assert_eq!(baseline.fsyncs, 16 * 4);
        assert_eq!(grouped.fsyncs, 4 * 4);
        assert_eq!(data.sync_samples[2].fsyncs, 4, "grouped:4 syncs once");
    }
}
