//! Slot-loop scaling experiment: shard-parallel engine throughput across
//! thread counts (with a byte-identity check on the resulting chains) and
//! disk-mode throughput across sync policies (per-node fsync vs the
//! group-commit shard log).
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig10_scaling [--quick]`

use tldag_bench::experiments::scaling::{self, ScalingConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = ScalingConfig::at_scale(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "fig10_scaling: {} nodes × {} slots (thread sweep), {} nodes × {} slots \
(sync sweep), {cores} core(s) available ({scale:?} scale)",
        cfg.thread_sweep_nodes, cfg.thread_sweep_slots, cfg.sync_sweep_nodes, cfg.sync_sweep_slots
    );
    if cores == 1 {
        eprintln!(
            "fig10_scaling: WARNING — single-core host; thread-sweep speedups \
will be ~1x (the determinism check still runs)"
        );
    }
    let data = scaling::run(&cfg);

    println!(
        "\n== slot-loop throughput vs worker threads ({} nodes, {} slots, memory) ==",
        cfg.thread_sweep_nodes, cfg.thread_sweep_slots
    );
    let rows: Vec<Vec<String>> = data
        .thread_samples
        .iter()
        .map(|s| {
            vec![
                s.threads.to_string(),
                report::fmt_f64(s.wall_ms),
                report::fmt_f64(s.blocks_per_sec),
                format!("{:.2}x", s.speedup),
                s.digest.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "threads",
                "wall_ms",
                "blocks/s",
                "speedup",
                "net digest[..16]"
            ],
            &rows
        )
    );
    println!(
        "chain digests across thread counts: {}",
        if data.digests_identical {
            "IDENTICAL (determinism holds)"
        } else {
            "DIVERGED — determinism violated!"
        }
    );

    println!(
        "\n== determinism with PoP + lossy links on ({} nodes, {} slots, memory) ==",
        cfg.verify_sweep_nodes, cfg.verify_sweep_slots
    );
    let rows: Vec<Vec<String>> = data
        .verify_samples
        .iter()
        .map(|s| {
            vec![
                s.threads.to_string(),
                report::fmt_f64(s.wall_ms),
                format!("{}/{}", s.pop_counters.1, s.pop_counters.0),
                s.digest.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &["threads", "wall_ms", "pop ok/attempts", "net digest[..16]"],
            &rows
        )
    );
    println!(
        "PoP-phase digests and counters across thread counts: {}",
        if data.verify_identical {
            "IDENTICAL (determinism holds)"
        } else {
            "DIVERGED — determinism violated!"
        }
    );

    println!(
        "\n== disk-mode throughput vs sync policy ({} nodes, {} slots, {} shards) ==",
        cfg.sync_sweep_nodes, cfg.sync_sweep_slots, cfg.sync_sweep_shards
    );
    let rows: Vec<Vec<String>> = data
        .sync_samples
        .iter()
        .map(|s| {
            vec![
                s.config.clone(),
                report::fmt_f64(s.wall_ms),
                report::fmt_f64(s.blocks_per_sec),
                s.fsyncs.to_string(),
                format!("{:.2}x", s.speedup),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &["storage config", "wall_ms", "blocks/s", "fsyncs", "speedup"],
            &rows
        )
    );

    let mut csv = String::from("sweep,config,wall_ms,blocks_per_sec,fsyncs,speedup\n");
    for s in &data.thread_samples {
        csv.push_str(&format!(
            "threads,{},{:.3},{:.1},,{:.3}\n",
            s.threads, s.wall_ms, s.blocks_per_sec, s.speedup
        ));
    }
    for s in &data.sync_samples {
        csv.push_str(&format!(
            "sync,{},{:.3},{:.1},{},{:.3}\n",
            s.config.replace(',', ";"),
            s.wall_ms,
            s.blocks_per_sec,
            s.fsyncs,
            s.speedup
        ));
    }
    if let Some(path) = report::write_csv("fig10_scaling", &csv) {
        eprintln!("wrote {}", path.display());
    }

    // Machine-readable summary: the numbers the perf trajectory tracks.
    let thread_samples = json_array(data.thread_samples.iter().map(|s| {
        JsonMap::new()
            .int("threads", s.threads as u64)
            .num("wall_ms", s.wall_ms)
            .num("blocks_per_sec", s.blocks_per_sec)
            .num("speedup", s.speedup)
            .render()
    }));
    let sync_samples = json_array(data.sync_samples.iter().map(|s| {
        JsonMap::new()
            .str("config", &s.config)
            .num("wall_ms", s.wall_ms)
            .num("blocks_per_sec", s.blocks_per_sec)
            .int("fsyncs", s.fsyncs)
            .num("speedup", s.speedup)
            .render()
    }));
    let json = JsonMap::new()
        .str("experiment", "fig10_scaling")
        .str("scale", &format!("{scale:?}"))
        .int("cores_available", cores as u64)
        .int("thread_sweep_nodes", cfg.thread_sweep_nodes as u64)
        .int("sync_sweep_nodes", cfg.sync_sweep_nodes as u64)
        .bool("digests_identical", data.digests_identical)
        .bool("verify_identical", data.verify_identical)
        .raw("thread_samples", thread_samples)
        .raw("sync_samples", sync_samples)
        .render();
    if let Some(path) = report::write_bench_json("fig10_scaling", &json) {
        eprintln!("wrote {}", path.display());
    }
    assert!(
        data.digests_identical,
        "fig10_scaling: thread counts produced different chains"
    );
    assert!(
        data.verify_identical,
        "fig10_scaling: PoP-enabled runs diverged across thread counts"
    );
}
