//! Regenerates Fig. 7: storage overhead of 2LDAG vs PBFT vs IOTA.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig7_storage [--quick]`

use tldag_bench::experiments::fig7::{self, Fig7Config};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = Fig7Config::at_scale(scale);
    eprintln!(
        "fig7_storage: {} nodes, {} slots, C = {:?} MB ({scale:?} scale)",
        cfg.nodes, cfg.slots, cfg.bodies_mb
    );
    let data = fig7::run(&cfg);

    for (i, panel) in data.panels.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        println!(
            "\n== Fig. 7({letter}): average node storage (MB), C = {} MB ==",
            panel.c_mb
        );
        let names = panel.series.names().to_vec();
        let slots = panel
            .series
            .series(&names[0])
            .expect("series exists")
            .slots();
        let mut rows = Vec::new();
        for slot in slots {
            let mut row = vec![slot.to_string()];
            for name in &names {
                let v = panel.series.series(name).and_then(|s| s.value_at(slot));
                row.push(v.map(report::fmt_f64).unwrap_or_default());
            }
            rows.push(row);
        }
        let mut headers = vec!["slot"];
        headers.extend(names.iter().map(String::as_str));
        print!("{}", report::render_table(&headers, &rows));
        if let Some(path) = report::write_csv(
            &format!("fig7{letter}_storage_c{}", panel.c_mb),
            &panel.series.to_csv(),
        ) {
            eprintln!("wrote {}", path.display());
        }
    }

    println!(
        "\n== Fig. 7(d): CDF of per-node 2LDAG storage at final slot, C = {} MB ==",
        data.cdf_body_mb
    );
    let rows: Vec<Vec<String>> = data
        .cdf
        .points()
        .into_iter()
        .map(|(x, f)| vec![report::fmt_f64(x), report::fmt_f64(f)])
        .collect();
    print!("{}", report::render_table(&["storage_mb", "cdf"], &rows));
    let csv: String = std::iter::once("storage_mb,cdf".to_string())
        .chain(
            data.cdf
                .points()
                .into_iter()
                .map(|(x, f)| format!("{x:.6},{f:.6}")),
        )
        .collect::<Vec<_>>()
        .join("\n");
    if let Some(path) = report::write_csv("fig7d_storage_cdf", &csv) {
        eprintln!("wrote {}", path.display());
    }
}
