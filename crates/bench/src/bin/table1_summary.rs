//! Regenerates the headline comparison behind the paper's abstract:
//! storage ≈ 2 and communication ≈ 3 orders of magnitude below PBFT/IOTA,
//! and consensus with ~49 % malicious nodes.
//!
//! Usage: `cargo run -p tldag-bench --release --bin table1_summary [--quick]`

use tldag_bench::experiments::summary;
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    eprintln!("table1_summary ({scale:?} scale)");
    let data = summary::run(scale);

    println!(
        "\n== Headline comparison after {} slots (C = 0.5 MB) ==",
        data.slots
    );
    let rows: Vec<Vec<String>> = data
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                report::fmt_f64(r.storage_mb),
                report::fmt_f64(r.comm_mb),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(&["system", "storage MB/node", "comm Mb/node (tx)"], &rows)
    );

    println!("\norders of magnitude vs 2LDAG (log10 ratios):");
    println!(
        "  storage : PBFT {:.2}, IOTA {:.2}   (paper: ≈2)",
        data.storage_orders.0, data.storage_orders.1
    );
    println!(
        "  comm    : PBFT {:.2}, IOTA {:.2}   (paper: ≈3)",
        data.comm_orders.0, data.comm_orders.1
    );
    println!(
        "\nPoP success rate with ~49% malicious nodes: {:.1}%  (paper: consensus achieved)",
        data.success_rate_49pct * 100.0
    );
}
