//! Retention-budget experiment: Eq. 2 storage budgets enforced by the
//! segmented engines' compaction, PoP availability by block age (graceful
//! `TargetPruned` misses for compacted blocks), and the TPS cache hit-rate
//! of a warm (persisted `H_i`) vs cold node restart.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig7_retention [--quick]`

use tldag_bench::experiments::retention::{self, RetentionConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = RetentionConfig::at_scale(scale);
    eprintln!(
        "fig7_retention: {} nodes × {} slots, {} budgets, γ = {} ({scale:?} scale)",
        cfg.nodes,
        cfg.slots,
        cfg.horizons.len(),
        cfg.gamma
    );
    let data = retention::run(&cfg);

    println!("\n== disk usage & PoP availability vs retention budget (Eq. 2 horizons) ==");
    let rows: Vec<Vec<String>> = data
        .budgets
        .iter()
        .map(|b| {
            vec![
                b.horizon_blocks
                    .map_or("unbounded".into(), |h| format!("{h} blocks")),
                b.budget_bytes
                    .map_or("-".into(), |v| format!("{:.1}", v as f64 / 1024.0)),
                format!("{:.1}", b.mean_disk_bytes / 1024.0),
                format!("{:.1}", b.eq2_retained_bytes / 1024.0),
                report::fmt_f64(b.mean_retained_blocks),
                report::fmt_f64(b.mean_pruned_floor),
                format!("{}/{}", b.old_success.0, b.old_success.1),
                b.old_pruned_misses.to_string(),
                b.old_path_pruned_failures.to_string(),
                format!("{}/{}", b.mid_success.0, b.mid_success.1),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "budget",
                "cap KiB",
                "disk KiB",
                "eq2 KiB",
                "retained",
                "floor",
                "old ok",
                "pruned",
                "path-pruned",
                "mid ok"
            ],
            &rows
        )
    );

    println!("\n== TPS after restart: cold vs warm (persisted H_i) ==");
    let rows: Vec<Vec<String>> = data
        .warm
        .iter()
        .map(|w| {
            vec![
                if w.persist {
                    "warm (persisted)"
                } else {
                    "cold"
                }
                .to_string(),
                w.headers_after_restart.to_string(),
                w.tps_extensions.to_string(),
                w.req_child_sent.to_string(),
                format!("{}/{}", w.successes, cfg.warm_targets),
                format!("{:.1}%", w.hit_rate * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "restart",
                "H_i headers",
                "tps ext",
                "req_child",
                "ok",
                "hit rate"
            ],
            &rows
        )
    );

    // CSV + machine-readable summary.
    let mut csv = String::from(
        "budget,cap_bytes,disk_bytes,eq2_bytes,retained,floor,old_ok,old_n,pruned,\
path_pruned,mid_ok,mid_n\n",
    );
    for b in &data.budgets {
        csv.push_str(&format!(
            "{},{},{:.0},{:.0},{:.2},{:.2},{},{},{},{},{},{}\n",
            b.horizon_blocks.map_or(0, |h| h),
            b.budget_bytes.unwrap_or(0),
            b.mean_disk_bytes,
            b.eq2_retained_bytes,
            b.mean_retained_blocks,
            b.mean_pruned_floor,
            b.old_success.0,
            b.old_success.1,
            b.old_pruned_misses,
            b.old_path_pruned_failures,
            b.mid_success.0,
            b.mid_success.1,
        ));
    }
    if let Some(path) = report::write_csv("fig7_retention", &csv) {
        eprintln!("wrote {}", path.display());
    }

    let budgets = json_array(data.budgets.iter().map(|b| {
        JsonMap::new()
            .int("horizon_blocks", u64::from(b.horizon_blocks.unwrap_or(0)))
            .int("budget_bytes", b.budget_bytes.unwrap_or(0))
            .num("mean_disk_bytes", b.mean_disk_bytes)
            .num("eq2_retained_bytes", b.eq2_retained_bytes)
            .num("mean_retained_blocks", b.mean_retained_blocks)
            .num("mean_pruned_floor", b.mean_pruned_floor)
            .int("old_ok", b.old_success.0)
            .int("old_attempts", b.old_success.1)
            .int("old_pruned_misses", b.old_pruned_misses)
            .int("old_path_pruned_failures", b.old_path_pruned_failures)
            .int("mid_ok", b.mid_success.0)
            .int("mid_attempts", b.mid_success.1)
            .render()
    }));
    let warm = json_array(data.warm.iter().map(|w| {
        JsonMap::new()
            .bool("persist", w.persist)
            .int("headers_after_restart", w.headers_after_restart as u64)
            .int("tps_extensions", w.tps_extensions)
            .int("req_child_sent", w.req_child_sent)
            .int("successes", w.successes)
            .num("hit_rate", w.hit_rate)
            .render()
    }));
    let json = JsonMap::new()
        .str("experiment", "fig7_retention")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("slots", cfg.slots)
        .raw("budgets", budgets)
        .raw("warm_restart", warm)
        .render();
    if let Some(path) = report::write_bench_json("fig7_retention", &json) {
        eprintln!("wrote {}", path.display());
    }

    // Acceptance: pruned targets must surface as graceful misses, and a
    // persisted H_i must measurably beat a cold restart.
    let tightest = data.budgets.last().expect("at least one budget");
    if tightest.horizon_blocks.is_some() {
        assert!(
            tightest.mean_pruned_floor > 0.0,
            "fig7_retention: the tightest budget never pruned"
        );
        assert_eq!(
            tightest.old_success.0 + tightest.old_pruned_misses + tightest.old_path_pruned_failures,
            tightest.old_success.1,
            "fig7_retention: every old probe must succeed, miss the pruned \
target gracefully, or fail with pruned evidence on the path"
        );
    }
    let cold = &data.warm[0];
    let warm = &data.warm[1];
    assert!(
        warm.hit_rate > cold.hit_rate,
        "fig7_retention: warm restart ({:.3}) must beat cold ({:.3})",
        warm.hit_rate,
        cold.hit_rate
    );
}
