//! Ablation A4: endpoint-only vs shortest-physical-path accounting of PoP
//! traffic — quantifying the relay burden that the paper's Sec. VII
//! validator-to-verifier routing proposal targets.
//!
//! Usage: `cargo run -p tldag-bench --release --bin ablation_multihop [--quick]`

use tldag_bench::experiments::ablation::{self, AblationConfig};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = match scale {
        Scale::Paper => AblationConfig::paper(),
        Scale::Quick => AblationConfig::quick(),
    };
    eprintln!(
        "ablation_multihop: {} nodes, γ = {} ({scale:?} scale)",
        cfg.nodes, cfg.gamma
    );
    let stats = ablation::run_multihop_ablation(&cfg);

    println!("\n== A4: physical-layer relaying of PoP traffic ==");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                report::fmt_f64(s.mean_node_consensus_mb),
                report::fmt_f64(s.network_consensus_mb),
                format!("{:.1}%", s.success_rate * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "accounting",
                "consensus Mb/node",
                "network Mb",
                "PoP success"
            ],
            &rows
        )
    );
    if stats.len() == 2 && stats[0].network_consensus_mb > 0.0 {
        let factor = stats[1].network_consensus_mb / stats[0].network_consensus_mb;
        println!(
            "\nrelay inflation factor: {factor:.2}× — the headroom for the paper's\n\
             proposed shortest-path validator→verifier routing."
        );
    }
}
