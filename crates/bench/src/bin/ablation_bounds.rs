//! Ablation A3: measured overhead vs the analytic bounds of Sec. V
//! (Propositions 1–4).
//!
//! Usage: `cargo run -p tldag-bench --release --bin ablation_bounds [--quick]`

use tldag_bench::experiments::ablation::{self, AblationConfig};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = match scale {
        Scale::Paper => AblationConfig::paper(),
        Scale::Quick => AblationConfig::quick(),
    };
    eprintln!(
        "ablation_bounds: {} nodes, γ = {} ({scale:?} scale)",
        cfg.nodes, cfg.gamma
    );
    let rows = ablation::run_bounds_check(&cfg);

    println!("\n== A3: measured vs analytic bounds (Propositions 1–4) ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.proposition.clone(),
                report::fmt_f64(r.measured),
                report::fmt_f64(r.bound),
                if r.holds {
                    "holds".into()
                } else {
                    "VIOLATED".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(&["proposition", "measured", "bound", "status"], &table)
    );
    if rows.iter().any(|r| !r.holds) {
        std::process::exit(1);
    }
}
