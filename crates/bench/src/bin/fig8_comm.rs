//! Regenerates Fig. 8: communication overhead of 2LDAG vs PBFT vs IOTA.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig8_comm [--quick]`

use tldag_bench::experiments::fig8::{self, Fig8Config};
use tldag_bench::report;
use tldag_bench::Scale;
use tldag_sim::metrics::SeriesSet;

fn print_panel(title: &str, csv_name: &str, set: &SeriesSet) {
    println!("\n== {title} ==");
    let names = set.names().to_vec();
    if names.is_empty() {
        println!("(no data)");
        return;
    }
    let slots = set.series(&names[0]).expect("series exists").slots();
    let mut rows = Vec::new();
    for slot in slots {
        let mut row = vec![slot.to_string()];
        for name in &names {
            let v = set.series(name).and_then(|s| s.value_at(slot));
            row.push(v.map(report::fmt_f64).unwrap_or_default());
        }
        rows.push(row);
    }
    let mut headers = vec!["slot"];
    headers.extend(names.iter().map(String::as_str));
    print!("{}", report::render_table(&headers, &rows));
    if let Some(path) = report::write_csv(csv_name, &set.to_csv()) {
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let scale = Scale::from_env_args();
    let cfg = Fig8Config::at_scale(scale);
    eprintln!(
        "fig8_comm: {} nodes, {} slots, C = {} MB ({scale:?} scale)",
        cfg.nodes, cfg.slots, cfg.body_mb
    );
    let data = fig8::run(&cfg);

    print_panel(
        "Fig. 8(a): overall mean node communication (Mb transmitted)",
        "fig8a_comm_overall",
        &data.overall,
    );
    print_panel(
        "Fig. 8(b): DAG-construction component (Mb)",
        "fig8b_comm_dag",
        &data.dag_construction,
    );
    print_panel(
        "Fig. 8(c): consensus component (Mb)",
        "fig8c_comm_consensus",
        &data.consensus,
    );

    println!("\n== Fig. 8(d): CDF of per-node transmitted Mb at final slot ==");
    for (label, cdf) in &data.cdfs {
        println!("-- {label} --");
        let rows: Vec<Vec<String>> = cdf
            .points()
            .into_iter()
            .map(|(x, f)| vec![report::fmt_f64(x), report::fmt_f64(f)])
            .collect();
        print!("{}", report::render_table(&["comm_mb", "cdf"], &rows));
    }

    println!("\n== PoP diagnostics ==");
    let rows: Vec<Vec<String>> = data
        .pop_counters
        .iter()
        .map(|(label, attempts, successes)| {
            let rate = if *attempts == 0 {
                0.0
            } else {
                *successes as f64 / *attempts as f64
            };
            vec![
                label.clone(),
                attempts.to_string(),
                successes.to_string(),
                format!("{:.1}%", rate * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(&["variant", "pop_attempts", "successes", "rate"], &rows)
    );
}
