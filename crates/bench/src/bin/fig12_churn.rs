//! Dynamic-membership sweep: join/leave churn over lossy UDP transports,
//! measuring PoP completion, joiner catch-up latency, and digest parity
//! with the in-memory engine on the identical membership schedule.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig12_churn [--quick]`

use tldag_bench::experiments::churn::{self, ChurnConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;
use tldag_net::NetStats;

/// Every transport counter as one JSON object (the merged snapshot the
/// telemetry endpoint would serve).
fn net_json(net: &NetStats) -> String {
    net.fields()
        .into_iter()
        .fold(JsonMap::new(), |m, (name, value)| m.int(name, value))
        .render()
}

fn main() {
    let scale = Scale::from_env_args();
    let cfg = ChurnConfig::at_scale(scale);
    eprintln!(
        "fig12_churn: {} founders × {} slots, {:.0}% loss, levels {:?} ({scale:?} scale)",
        cfg.founders,
        cfg.slots,
        cfg.loss * 100.0,
        cfg.levels
            .iter()
            .map(|l| format!("{}j+{}l", l.joins, l.leaves))
            .collect::<Vec<_>>()
    );
    let data = churn::run(&cfg);

    println!(
        "\n== PoP under membership churn over lossy UDP (γ = {}, {:.0}% loss) ==",
        cfg.gamma,
        cfg.loss * 100.0
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}+{}", p.joins, p.leaves),
                format!("{}/{}", p.pop_successes, p.pop_attempts),
                format!("{:.1}%", p.completion() * 100.0),
                format!("{}/{}", p.reference_pop.1, p.reference_pop.0),
                report::fmt_f64(p.mean_catch_up_ms),
                report::fmt_f64(p.max_catch_up_ms),
                if p.parity { "ok" } else { "MISMATCH" }.into(),
                p.degraded_nodes.to_string(),
                p.retries.to_string(),
                report::fmt_f64(p.wall_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "join+leave",
                "PoP ok",
                "rate",
                "engine",
                "catchup ms",
                "max ms",
                "parity",
                "degraded",
                "retries",
                "wall ms",
            ],
            &rows,
        )
    );

    let mut csv = String::from(
        "joins,leaves,pop_attempts,pop_successes,completion,ref_attempts,\
ref_successes,mean_catch_up_ms,max_catch_up_ms,parity,degraded_nodes,\
retries,datagrams,wall_ms\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{:.3},{:.3},{},{},{},{},{:.1}\n",
            p.joins,
            p.leaves,
            p.pop_attempts,
            p.pop_successes,
            p.completion(),
            p.reference_pop.0,
            p.reference_pop.1,
            p.mean_catch_up_ms,
            p.max_catch_up_ms,
            p.parity,
            p.degraded_nodes,
            p.retries,
            p.datagrams,
            p.wall_ms,
        ));
    }
    if let Some(path) = report::write_csv("fig12_churn", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let json = JsonMap::new()
        .str("experiment", "fig12_churn")
        .str("scale", &format!("{scale:?}"))
        .int("founders", cfg.founders as u64)
        .int("slots", cfg.slots)
        .num("loss", cfg.loss)
        .raw(
            "points",
            json_array(data.points.iter().map(|p| {
                JsonMap::new()
                    .int("joins", p.joins as u64)
                    .int("leaves", p.leaves as u64)
                    .int("pop_attempts", p.pop_attempts)
                    .int("pop_successes", p.pop_successes)
                    .num("completion", p.completion())
                    .int("ref_attempts", p.reference_pop.0)
                    .int("ref_successes", p.reference_pop.1)
                    .num("mean_catch_up_ms", p.mean_catch_up_ms)
                    .num("max_catch_up_ms", p.max_catch_up_ms)
                    .bool("parity", p.parity)
                    .int("degraded_nodes", p.degraded_nodes)
                    .int("retries", p.retries)
                    .int("datagrams", p.datagrams)
                    .num("wall_ms", p.wall_ms)
                    .raw("net", net_json(&p.net))
                    .raw(
                        "status_series",
                        json_array(p.samples.iter().map(|s| {
                            JsonMap::new()
                                .int("slot", s.slot)
                                .int("nodes", s.nodes)
                                .int("chain_total", s.chain_total)
                                .int("pop_attempts", s.pop_attempts)
                                .int("pop_successes", s.pop_successes)
                                .int("retries", s.retries)
                                .render()
                        })),
                    )
                    .render()
            })),
        )
        .raw("net", {
            let mut merged = NetStats::default();
            for p in &data.points {
                merged.merge(&p.net);
            }
            net_json(&merged)
        })
        .render();
    if let Some(path) = report::write_bench_json("fig12_churn", &json) {
        eprintln!("bench summary written to {}", path.display());
    }

    if let Some(p) = data.points.iter().find(|p| p.joins + p.leaves > 0) {
        println!(
            "\nheadline: with {} joins + {} leaves at {:.0}% datagram loss, \
{:.1}% of PoP runs completed and the joiners caught up in {:.0} ms mean \
(digest parity: {})",
            p.joins,
            p.leaves,
            cfg.loss * 100.0,
            p.completion() * 100.0,
            p.mean_catch_up_ms,
            if p.parity { "exact" } else { "BROKEN" }
        );
    }
}
