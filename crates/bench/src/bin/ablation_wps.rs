//! Ablation A1: Weighted Path Selection (Algorithm 1) vs random next-hop.
//!
//! Usage: `cargo run -p tldag-bench --release --bin ablation_wps [--quick]`

use tldag_bench::experiments::ablation::{self, AblationConfig};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = match scale {
        Scale::Paper => AblationConfig::paper(),
        Scale::Quick => AblationConfig::quick(),
    };
    eprintln!(
        "ablation_wps: {} nodes, γ = {}, {} probes ({scale:?} scale)",
        cfg.nodes, cfg.gamma, cfg.probes
    );
    let stats = ablation::run_wps_ablation(&cfg);

    println!("\n== A1: next-hop selection strategy ==");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                format!("{}/{}", s.successes, s.runs),
                report::fmt_f64(s.mean_requests),
                report::fmt_f64(s.mean_path_len),
                report::fmt_f64(s.mean_rollbacks),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "strategy",
                "success",
                "mean REQ_CHILD",
                "mean path len",
                "mean rollbacks"
            ],
            &rows
        )
    );
}
