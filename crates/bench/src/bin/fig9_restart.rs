//! Node-restart recovery experiment: every node's chain lives in the
//! `tldag-storage` durable engine; scheduled nodes are killed mid-run and
//! revived from disk. Reports the PoP failure probability on the victims'
//! pre-crash blocks over time, the per-crash recovery audit, and the
//! resident-memory/disk ratio of the durable backend.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig9_restart [--quick]`

use tldag_bench::experiments::restart::{self, RestartConfig};
use tldag_bench::report::{self, JsonMap};
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = RestartConfig::at_scale(scale);
    eprintln!(
        "fig9_restart: {} nodes, {} seeds, {} restarts/run, downtime {} slots ({scale:?} scale)",
        cfg.nodes, cfg.seeds, cfg.restarts, cfg.downtime_slots
    );
    let data = restart::run(&cfg);
    let _ = std::fs::remove_dir_all(&cfg.storage_root);

    println!(
        "\n== PoP failure probability around node restarts (γ = {}) ==",
        cfg.gamma
    );
    let names = data.series.names().to_vec();
    let slots = data
        .series
        .series(&names[0])
        .expect("series exists")
        .slots();
    let mut rows = Vec::new();
    for slot in slots {
        let mut row = vec![slot.to_string()];
        for name in &names {
            let v = data.series.series(name).and_then(|s| s.value_at(slot));
            row.push(v.map(report::fmt_f64).unwrap_or_default());
        }
        rows.push(row);
    }
    let mut headers = vec!["slot"];
    headers.extend(names.iter().map(String::as_str));
    print!("{}", report::render_table(&headers, &rows));

    println!("\nrecovery audit (crash → reopen):");
    let rows: Vec<Vec<String>> = data
        .recoveries
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                r.node.to_string(),
                format!("{}..{}", r.crash_slot, r.revive_slot),
                r.blocks_before_crash.to_string(),
                r.durable_before_crash.to_string(),
                if r.revived {
                    r.blocks_recovered.to_string()
                } else {
                    "-".into()
                },
                if r.lost_committed_blocks() {
                    "LOST".into()
                } else if !r.revived {
                    "still down".into()
                } else {
                    "ok".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "seed",
                "node",
                "down",
                "blocks",
                "durable",
                "recovered",
                "audit"
            ],
            &rows
        )
    );
    let lost = data
        .recoveries
        .iter()
        .filter(|r| r.lost_committed_blocks())
        .count();
    println!(
        "\ncommitted blocks lost across {} crashes: {lost}",
        data.recoveries.len()
    );
    println!(
        "peak resident block memory: {:.1} KiB (vs {:.1} KiB peak on disk)",
        data.peak_resident_bytes as f64 / 1024.0,
        data.peak_disk_bytes as f64 / 1024.0
    );

    if let Some(path) = report::write_csv("fig9_restart_failure", &data.series.to_csv()) {
        eprintln!("wrote {}", path.display());
    }

    // Machine-readable summary: the numbers the perf trajectory tracks.
    let last_of = |name: &str| {
        data.series
            .series(name)
            .and_then(|s| s.points().last().map(|&(_, v)| v))
            .unwrap_or(f64::NAN)
    };
    let revived = data.recoveries.iter().filter(|r| r.revived).count();
    let json = JsonMap::new()
        .str("experiment", "fig9_restart")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("seeds", cfg.seeds)
        .int("crashes", data.recoveries.len() as u64)
        .int("revived", revived as u64)
        .int("lost_committed_blocks", lost as u64)
        .num("final_victim_failure", last_of("victim blocks"))
        .num("final_control_failure", last_of("control blocks"))
        .int("peak_resident_bytes", data.peak_resident_bytes as u64)
        .int("peak_disk_bytes", data.peak_disk_bytes)
        .render();
    if let Some(path) = report::write_bench_json("fig9_restart", &json) {
        eprintln!("wrote {}", path.display());
    }
    if lost > 0 {
        std::process::exit(1);
    }
}
