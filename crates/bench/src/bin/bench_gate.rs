//! Regression gate: compares fresh `BENCH_*.json` artifacts against the
//! committed baselines and fails CI on a perf or completion regression.
//!
//! Usage: `cargo run -p tldag-bench --release --bin bench_gate -- \
//!     [--baseline DIR] [--current DIR]`
//!
//! Defaults: baselines from `experiments/baselines/`, fresh artifacts from
//! `target/experiments/` (where the `fig*` bins write them). Both sides
//! must be produced at the same scale (`--quick` vs paper) — the gate
//! matches sweep points by document order and fails on a count mismatch.
//!
//! Rules:
//! - `fig13_saturation`: every `blocks_per_s` point must stay within 20%
//!   of its baseline (current ≥ 0.8 × baseline).
//! - `fig11_wire`: every swept `success_rate` (PoP completion under loss)
//!   must not regress below baseline.
//! - `fig12_churn`: every `completion` point under membership churn must
//!   not regress below baseline.
//! - `fig14_lifecycle`: every `parity` flag must still be true — tracing
//!   must never perturb the protocol.
//! - `fig15_adversary`: honest PoP completion must not regress below
//!   baseline and must stay ≥ 95% at every swept adversary fraction
//!   (all ≤ 1/3), and every honest-subset `parity` flag must stay true.
//!
//! A missing baseline file is a skip (so the gate can be introduced before
//! every figure has a baseline); a missing current file is a failure —
//! it means the experiment bin did not run or did not write its artifact.

use std::path::{Path, PathBuf};
use std::process::exit;
use tldag_bench::report::json_numbers;

/// Throughput points may drop up to 20% before the gate trips.
const THROUGHPUT_FLOOR: f64 = 0.8;
/// Absolute slack for completion-rate comparisons (float formatting noise).
const RATE_EPSILON: f64 = 1e-9;

struct Gate {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    checked: u32,
    skipped: u32,
    failures: Vec<String>,
}

impl Gate {
    fn load(&mut self, name: &str) -> Option<(String, String)> {
        let file = format!("BENCH_{name}.json");
        let baseline_path = self.baseline_dir.join(&file);
        let current_path = self.current_dir.join(&file);
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(_) => {
                println!("SKIP {name}: no baseline at {}", baseline_path.display());
                self.skipped += 1;
                return None;
            }
        };
        let current = match std::fs::read_to_string(&current_path) {
            Ok(s) => s,
            Err(_) => {
                self.failures.push(format!(
                    "{name}: baseline exists but no fresh artifact at {} — \
                     did the experiment run?",
                    current_path.display()
                ));
                return None;
            }
        };
        Some((baseline, current))
    }

    /// Order-matched per-point check of `key`, each point compared with
    /// `ok(current, baseline)`.
    fn check(&mut self, name: &str, key: &str, what: &str, ok: impl Fn(f64, f64) -> bool) {
        let Some((baseline, current)) = self.load(name) else {
            return;
        };
        let base = json_numbers(&baseline, key);
        let cur = json_numbers(&current, key);
        if base.is_empty() {
            self.failures
                .push(format!("{name}: baseline has no \"{key}\" values"));
            return;
        }
        if base.len() != cur.len() {
            self.failures.push(format!(
                "{name}: sweep shape changed — baseline has {} \"{key}\" \
                 points, current has {} (scale mismatch? re-baseline)",
                base.len(),
                cur.len()
            ));
            return;
        }
        self.checked += 1;
        let mut worst: Option<String> = None;
        for (i, (&b, &c)) in base.iter().zip(cur.iter()).enumerate() {
            if !ok(c, b) {
                worst = Some(format!(
                    "{name}: {what} regressed at point {i}: {c} vs baseline {b}"
                ));
                break;
            }
        }
        match worst {
            Some(msg) => self.failures.push(msg),
            None => println!(
                "PASS {name}: {} \"{key}\" point(s) within bounds",
                base.len()
            ),
        }
    }
}

fn arg_value(args: &[String], flag: &str, default: &str) -> PathBuf {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(default).to_path_buf())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut gate = Gate {
        baseline_dir: arg_value(&args, "--baseline", "experiments/baselines"),
        current_dir: arg_value(&args, "--current", "target/experiments"),
        checked: 0,
        skipped: 0,
        failures: Vec::new(),
    };
    println!(
        "bench_gate: {} vs baseline {}",
        gate.current_dir.display(),
        gate.baseline_dir.display()
    );

    gate.check(
        "fig13_saturation",
        "blocks_per_s",
        "throughput (>20% drop)",
        |c, b| c >= THROUGHPUT_FLOOR * b,
    );
    gate.check(
        "fig11_wire",
        "success_rate",
        "PoP completion under loss",
        |c, b| c >= b - RATE_EPSILON,
    );
    gate.check(
        "fig12_churn",
        "completion",
        "PoP completion under churn",
        |c, b| c >= b - RATE_EPSILON,
    );
    gate.check(
        "fig14_lifecycle",
        "parity",
        "digest parity under tracing",
        |c, _| c >= 1.0,
    );
    gate.check(
        "fig15_adversary",
        "honest_completion",
        "honest PoP completion under adversaries (floor 95%)",
        |c, b| c >= b - RATE_EPSILON && c >= 0.95,
    );
    gate.check(
        "fig15_adversary",
        "parity",
        "honest-subset digest parity under adversaries",
        |c, _| c >= 1.0,
    );

    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("FAIL {f}");
        }
        eprintln!(
            "bench_gate: {} regression(s) against {}",
            gate.failures.len(),
            gate.baseline_dir.display()
        );
        exit(1);
    }
    if gate.checked == 0 {
        println!(
            "bench_gate: nothing checked ({} skipped) — no baselines yet",
            gate.skipped
        );
    } else {
        println!(
            "bench_gate: OK — {} figure(s) checked, {} skipped",
            gate.checked, gate.skipped
        );
    }
}
