//! Regenerates Fig. 9: consensus failure probability vs elapsed slots for
//! γ ∈ {10, 15, 20, 24} under varying malicious-node counts.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig9_failure [--quick]`

use tldag_bench::experiments::fig9::{self, Fig9Config};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = Fig9Config::at_scale(scale);
    eprintln!(
        "fig9_failure: {} nodes, {} seeds, {} probes/sample ({scale:?} scale)",
        cfg.nodes, cfg.seeds, cfg.probes_per_sample
    );
    let panels = fig9::run(&cfg);

    for (i, panel) in panels.iter().enumerate() {
        let letter = (b'a' + i as u8) as char;
        println!(
            "\n== Fig. 9({letter}): consensus failure probability, γ = {} ==",
            panel.gamma
        );
        let names = panel.series.names().to_vec();
        let slots = panel
            .series
            .series(&names[0])
            .expect("series exists")
            .slots();
        let mut rows = Vec::new();
        for slot in slots {
            let mut row = vec![slot.to_string()];
            for name in &names {
                let v = panel.series.series(name).and_then(|s| s.value_at(slot));
                row.push(v.map(report::fmt_f64).unwrap_or_default());
            }
            rows.push(row);
        }
        let mut headers = vec!["slot"];
        headers.extend(names.iter().map(String::as_str));
        print!("{}", report::render_table(&headers, &rows));

        println!("slots to consensus (first sampled slot with zero failures):");
        for (malicious, reached) in &panel.slots_to_consensus {
            match reached {
                Some(slot) => println!("  {malicious} malicious: slot {slot}"),
                None => println!("  {malicious} malicious: not reached in range"),
            }
        }
        if let Some(path) = report::write_csv(
            &format!("fig9{letter}_failure_gamma{}", panel.gamma),
            &panel.series.to_csv(),
        ) {
            eprintln!("wrote {}", path.display());
        }
    }
}
