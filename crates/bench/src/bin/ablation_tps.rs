//! Ablation A2: Trust Path Selection cache on vs off across repeated
//! verifications of the same DAG region.
//!
//! Usage: `cargo run -p tldag-bench --release --bin ablation_tps [--quick]`

use tldag_bench::experiments::ablation::{self, AblationConfig};
use tldag_bench::report;
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = match scale {
        Scale::Paper => AblationConfig::paper(),
        Scale::Quick => AblationConfig::quick(),
    };
    eprintln!(
        "ablation_tps: {} nodes, γ = {} ({scale:?} scale)",
        cfg.nodes, cfg.gamma
    );
    let stats = ablation::run_tps_ablation(&cfg);

    println!("\n== A2: trust-cache (TPS) contribution ==");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                s.first_run_requests.to_string(),
                report::fmt_f64(s.mean_repeat_requests),
                report::fmt_f64(s.mean_tps_extensions),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "mode",
                "first-run REQ_CHILD",
                "repeat REQ_CHILD (mean)",
                "TPS extensions (mean)"
            ],
            &rows
        )
    );
}
