//! Adversary-fraction sweep: Byzantine nodes (selfish / equivocate /
//! digest-lie) over real loopback UDP, measuring honest PoP completion,
//! honest-subset digest parity with the in-memory engine under the same
//! placement, and the detection counters the defense produced.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig15_adversary [--quick]`

use tldag_bench::experiments::adversary::{self, AdversaryConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;
use tldag_net::NetStats;

/// Every transport counter as one JSON object.
fn net_json(net: &NetStats) -> String {
    net.fields()
        .into_iter()
        .fold(JsonMap::new(), |m, (name, value)| m.int(name, value))
        .render()
}

fn main() {
    let scale = Scale::from_env_args();
    let cfg = AdversaryConfig::at_scale(scale);
    eprintln!(
        "fig15_adversary: {} founders × {} slots, adversary levels {:?} ({scale:?} scale)",
        cfg.founders, cfg.slots, cfg.levels
    );
    let data = adversary::run(&cfg);

    println!(
        "\n== Honest PoP reliability vs adversary fraction (γ = {}) ==",
        cfg.gamma
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}/{}", p.adversaries, cfg.founders),
                if p.behaviors.is_empty() {
                    "-".into()
                } else {
                    p.behaviors.clone()
                },
                format!("{}/{}", p.honest_successes, p.honest_attempts),
                format!("{:.1}%", p.honest_completion() * 100.0),
                format!("{}/{}", p.reference_pop.1, p.reference_pop.0),
                if p.honest_parity { "ok" } else { "MISMATCH" }.into(),
                p.digest_conflicts.to_string(),
                p.conflict_pulls.to_string(),
                p.degraded_nodes.to_string(),
                report::fmt_f64(p.wall_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "adv",
                "cast",
                "honest PoP",
                "rate",
                "engine",
                "parity",
                "conflicts",
                "pulls",
                "degraded",
                "wall ms",
            ],
            &rows,
        )
    );

    let mut csv = String::from(
        "adversaries,fraction,behaviors,honest_attempts,honest_successes,\
honest_completion,total_attempts,total_successes,ref_attempts,ref_successes,\
parity,digest_conflicts,conflict_pulls,degraded_nodes,wall_ms\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{:.4},{},{},{},{:.4},{},{},{},{},{},{},{},{},{:.1}\n",
            p.adversaries,
            p.fraction,
            p.behaviors.replace(' ', ";"),
            p.honest_attempts,
            p.honest_successes,
            p.honest_completion(),
            p.total_pop.0,
            p.total_pop.1,
            p.reference_pop.0,
            p.reference_pop.1,
            p.honest_parity,
            p.digest_conflicts,
            p.conflict_pulls,
            p.degraded_nodes,
            p.wall_ms,
        ));
    }
    if let Some(path) = report::write_csv("fig15_adversary", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let json = JsonMap::new()
        .str("experiment", "fig15_adversary")
        .str("scale", &format!("{scale:?}"))
        .int("founders", cfg.founders as u64)
        .int("slots", cfg.slots)
        .raw(
            "points",
            json_array(data.points.iter().map(|p| {
                JsonMap::new()
                    .int("adversaries", p.adversaries as u64)
                    .num("fraction", p.fraction)
                    .str("behaviors", &p.behaviors)
                    .int("honest_attempts", p.honest_attempts)
                    .int("honest_successes", p.honest_successes)
                    .num("honest_completion", p.honest_completion())
                    .int("total_attempts", p.total_pop.0)
                    .int("total_successes", p.total_pop.1)
                    .int("ref_attempts", p.reference_pop.0)
                    .int("ref_successes", p.reference_pop.1)
                    .bool("parity", p.honest_parity)
                    .int("digest_conflicts", p.digest_conflicts)
                    .int("conflict_pulls", p.conflict_pulls)
                    .int("degraded_nodes", p.degraded_nodes)
                    .num("wall_ms", p.wall_ms)
                    .raw("net", net_json(&p.net))
                    .render()
            })),
        )
        .raw("net", {
            let mut merged = NetStats::default();
            for p in &data.points {
                merged.merge(&p.net);
            }
            net_json(&merged)
        })
        .render();
    if let Some(path) = report::write_bench_json("fig15_adversary", &json) {
        eprintln!("bench summary written to {}", path.display());
    }

    if let Some(p) = data.points.iter().find(|p| p.adversaries > 0) {
        println!(
            "\nheadline: with {} Byzantine node(s) ({:.0}% of the cluster: {}), \
{:.1}% of honest PoP runs completed and every honest chain stayed \
byte-identical to the engine (parity: {})",
            p.adversaries,
            p.fraction * 100.0,
            p.behaviors,
            p.honest_completion() * 100.0,
            if p.honest_parity { "exact" } else { "BROKEN" }
        );
    }
}
