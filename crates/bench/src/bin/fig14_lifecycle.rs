//! End-to-end block lifecycle latency (generate → committed-everywhere)
//! from causal traces, lockstep vs pipelined runtime.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig14_lifecycle [--quick]`

use tldag_bench::experiments::lifecycle::{self, LifecycleConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = LifecycleConfig::at_scale(scale);
    eprintln!(
        "fig14_lifecycle: {} nodes, {} slots, windows {:?} ({scale:?} scale)",
        cfg.nodes, cfg.slots, cfg.windows
    );
    let data = lifecycle::run(&cfg);

    println!(
        "\n== Block lifecycle latency: generate → committed everywhere (γ = {}) ==",
        cfg.gamma
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.window.to_string(),
                (p.p50_us as f64 / 1e3).to_string(),
                (p.p99_us as f64 / 1e3).to_string(),
                (p.max_us as f64 / 1e3).to_string(),
                format!("{}/{}", p.committed, p.timelines),
                p.fully_stitched.to_string(),
                p.spans.to_string(),
                p.dropped.to_string(),
                if p.parity { "ok" } else { "DRIFT" }.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "window",
                "p50 ms",
                "p99 ms",
                "max ms",
                "committed",
                "stitched",
                "spans",
                "dropped",
                "parity",
            ],
            &rows,
        )
    );

    let mut csv = String::from(
        "window,timelines,fully_stitched,committed,spans,dropped,p50_us,p99_us,max_us,parity\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            p.window,
            p.timelines,
            p.fully_stitched,
            p.committed,
            p.spans,
            p.dropped,
            p.p50_us,
            p.p99_us,
            p.max_us,
            p.parity,
        ));
    }
    if let Some(path) = report::write_csv("fig14_lifecycle", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let points = json_array(data.points.iter().map(|p| {
        JsonMap::new()
            .int("window", p.window)
            .int("timelines", p.timelines)
            .int("fully_stitched", p.fully_stitched)
            .int("committed", p.committed)
            .int("spans", p.spans)
            .int("dropped", p.dropped)
            .int("p50_us", p.p50_us)
            .int("p99_us", p.p99_us)
            .int("max_us", p.max_us)
            .bool("parity", p.parity)
            .int("pop_attempts", p.wire_pop.0)
            .int("pop_successes", p.wire_pop.1)
            .render()
    }));
    let json = JsonMap::new()
        .str("experiment", "fig14_lifecycle")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("slots", cfg.slots)
        .int("gamma", cfg.gamma as u64)
        .int("reference_pop_attempts", data.reference_pop.0)
        .int("reference_pop_successes", data.reference_pop.1)
        .raw("points", points)
        .render();
    if let Some(path) = report::write_bench_json("fig14_lifecycle", &json) {
        eprintln!("json written to {}", path.display());
    }

    let drifted = data.points.iter().any(|p| !p.parity);
    if drifted {
        eprintln!("fig14_lifecycle: PARITY DRIFT under tracing — failing");
        std::process::exit(1);
    }
}
