//! Wire-transport loss sweep: PoP over real UDP sockets under injected
//! datagram loss/duplication/reordering, measuring delivery rate, latency,
//! and the retry work the transport performs.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig11_wire [--quick] [--pipelined]`
//!
//! With `--pipelined` the same loss sweep runs twice — once with the
//! lockstep-era one-datagram-per-wakeup receive loop (`batch = 1`) and
//! once with the pipelined batched receive path — and the JSON gains a
//! per-rate comparison. PoP completion must not regress at any swept loss
//! rate; the process exits nonzero if it does.

use tldag_bench::experiments::wire::{self, WireConfig, WireData};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;
use tldag_net::NetStats;

/// Every transport counter as one JSON object (the merged snapshot the
/// telemetry endpoint would serve).
fn net_json(net: &NetStats) -> String {
    net.fields()
        .into_iter()
        .fold(JsonMap::new(), |m, (name, value)| m.int(name, value))
        .render()
}

fn print_table(label: &str, cfg: &WireConfig, data: &WireData) {
    println!(
        "\n== PoP over UDP under injected datagram faults (γ = {}, {label}) ==",
        cfg.gamma
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{}/{}", p.successes, p.attempts),
                format!("{:.1}%", p.success_rate() * 100.0),
                report::fmt_f64(p.mean_latency_ms),
                report::fmt_f64(p.max_latency_ms),
                p.retries.to_string(),
                p.timeouts.to_string(),
                p.datagrams.to_string(),
                p.injected_drops.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "loss",
                "PoP ok",
                "rate",
                "mean ms",
                "max ms",
                "retries",
                "timeouts",
                "datagrams",
                "injected",
            ],
            &rows,
        )
    );
}

fn points_json(data: &WireData) -> String {
    json_array(data.points.iter().map(|p| {
        JsonMap::new()
            .num("loss", p.loss)
            .int("attempts", p.attempts)
            .int("successes", p.successes)
            .num("success_rate", p.success_rate())
            .num("mean_latency_ms", p.mean_latency_ms)
            .num("max_latency_ms", p.max_latency_ms)
            .int("retries", p.retries)
            .int("timeouts", p.timeouts)
            .int("datagrams", p.datagrams)
            .int("injected_drops", p.injected_drops)
            .int("messages", p.messages)
            .int("rtt_p50_us", p.rtt_p50_us)
            .int("rtt_p99_us", p.rtt_p99_us)
            .raw("net", net_json(&p.net))
            .render()
    }))
}

fn main() {
    let scale = Scale::from_env_args();
    let compare = std::env::args().any(|a| a == "--pipelined");
    let cfg = WireConfig::at_scale(scale);
    eprintln!(
        "fig11_wire: {} UDP endpoints, {} warm slots, {} PoPs/rate, rates {:?} ({scale:?} scale{})",
        cfg.nodes,
        cfg.warm_slots,
        cfg.pops_per_rate,
        cfg.loss_rates,
        if compare { ", both I/O modes" } else { "" }
    );

    // Lockstep-era I/O baseline first when comparing, so the pipelined run
    // — the mode the runtime actually ships — provides the headline data.
    let lockstep = compare.then(|| {
        let mut base = cfg.clone();
        base.batch = 1;
        wire::run(&base)
    });
    let data = wire::run(&cfg);

    if let Some(base) = &lockstep {
        print_table("batch 1, lockstep-era I/O", &cfg, base);
    }
    print_table(&format!("batch {}, pipelined I/O", cfg.batch), &cfg, &data);

    let mut csv = String::from(
        "loss,attempts,successes,success_rate,mean_latency_ms,max_latency_ms,\
retries,timeouts,datagrams,injected_drops,messages\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.3},{:.3},{},{},{},{},{}\n",
            p.loss,
            p.attempts,
            p.successes,
            p.success_rate(),
            p.mean_latency_ms,
            p.max_latency_ms,
            p.retries,
            p.timeouts,
            p.datagrams,
            p.injected_drops,
            p.messages,
        ));
    }
    if let Some(path) = report::write_csv("fig11_wire", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let mut regressed = false;
    let mut json = JsonMap::new()
        .str("experiment", "fig11_wire")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("warm_slots", cfg.warm_slots)
        .int("pops_per_rate", cfg.pops_per_rate as u64)
        .int("batch", cfg.batch as u64)
        .raw("points", points_json(&data));
    if let Some(base) = &lockstep {
        let comparison = json_array(base.points.iter().zip(&data.points).map(|(l, p)| {
            let regression = p.success_rate() < l.success_rate();
            regressed |= regression;
            JsonMap::new()
                .num("loss", p.loss)
                .num("lockstep_success_rate", l.success_rate())
                .num("pipelined_success_rate", p.success_rate())
                .num("lockstep_mean_latency_ms", l.mean_latency_ms)
                .num("pipelined_mean_latency_ms", p.mean_latency_ms)
                .bool("completion_regressed", regression)
                .render()
        }));
        json = json
            .raw("lockstep_points", points_json(base))
            .raw("comparison", comparison)
            .bool("completion_regressed", regressed);
    }
    let json = json
        .raw("net", {
            let mut merged = NetStats::default();
            for p in &data.points {
                merged.merge(&p.net);
            }
            net_json(&merged)
        })
        .render();
    if let Some(path) = report::write_bench_json("fig11_wire", &json) {
        eprintln!("bench summary written to {}", path.display());
    }

    // The wire stack earns its keep when loss is survivable: report the
    // headline directly.
    if let Some(p) = data.points.iter().find(|p| p.loss >= 0.10) {
        println!(
            "\nheadline: at {:.0}% injected datagram loss, {:.1}% of PoP runs \
completed (via {} retries)",
            p.loss * 100.0,
            p.success_rate() * 100.0,
            p.retries
        );
    }
    if regressed {
        eprintln!(
            "fig11_wire: PoP completion REGRESSED with batched I/O — see the \
comparison block in the JSON"
        );
        std::process::exit(1);
    }
}
