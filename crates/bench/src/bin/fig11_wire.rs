//! Wire-transport loss sweep: PoP over real UDP sockets under injected
//! datagram loss/duplication/reordering, measuring delivery rate, latency,
//! and the retry work the transport performs.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig11_wire [--quick]`

use tldag_bench::experiments::wire::{self, WireConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;
use tldag_net::NetStats;

/// Every transport counter as one JSON object (the merged snapshot the
/// telemetry endpoint would serve).
fn net_json(net: &NetStats) -> String {
    net.fields()
        .into_iter()
        .fold(JsonMap::new(), |m, (name, value)| m.int(name, value))
        .render()
}

fn main() {
    let scale = Scale::from_env_args();
    let cfg = WireConfig::at_scale(scale);
    eprintln!(
        "fig11_wire: {} UDP endpoints, {} warm slots, {} PoPs/rate, rates {:?} ({scale:?} scale)",
        cfg.nodes, cfg.warm_slots, cfg.pops_per_rate, cfg.loss_rates
    );
    let data = wire::run(&cfg);

    println!(
        "\n== PoP over UDP under injected datagram faults (γ = {}) ==",
        cfg.gamma
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{}/{}", p.successes, p.attempts),
                format!("{:.1}%", p.success_rate() * 100.0),
                report::fmt_f64(p.mean_latency_ms),
                report::fmt_f64(p.max_latency_ms),
                p.retries.to_string(),
                p.timeouts.to_string(),
                p.datagrams.to_string(),
                p.injected_drops.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "loss",
                "PoP ok",
                "rate",
                "mean ms",
                "max ms",
                "retries",
                "timeouts",
                "datagrams",
                "injected",
            ],
            &rows,
        )
    );

    let mut csv = String::from(
        "loss,attempts,successes,success_rate,mean_latency_ms,max_latency_ms,\
retries,timeouts,datagrams,injected_drops,messages\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.3},{:.3},{},{},{},{},{}\n",
            p.loss,
            p.attempts,
            p.successes,
            p.success_rate(),
            p.mean_latency_ms,
            p.max_latency_ms,
            p.retries,
            p.timeouts,
            p.datagrams,
            p.injected_drops,
            p.messages,
        ));
    }
    if let Some(path) = report::write_csv("fig11_wire", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let json = JsonMap::new()
        .str("experiment", "fig11_wire")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("warm_slots", cfg.warm_slots)
        .int("pops_per_rate", cfg.pops_per_rate as u64)
        .raw(
            "points",
            json_array(data.points.iter().map(|p| {
                JsonMap::new()
                    .num("loss", p.loss)
                    .int("attempts", p.attempts)
                    .int("successes", p.successes)
                    .num("success_rate", p.success_rate())
                    .num("mean_latency_ms", p.mean_latency_ms)
                    .num("max_latency_ms", p.max_latency_ms)
                    .int("retries", p.retries)
                    .int("timeouts", p.timeouts)
                    .int("datagrams", p.datagrams)
                    .int("injected_drops", p.injected_drops)
                    .int("messages", p.messages)
                    .int("rtt_p50_us", p.rtt_p50_us)
                    .int("rtt_p99_us", p.rtt_p99_us)
                    .raw("net", net_json(&p.net))
                    .render()
            })),
        )
        .raw("net", {
            let mut merged = NetStats::default();
            for p in &data.points {
                merged.merge(&p.net);
            }
            net_json(&merged)
        })
        .render();
    if let Some(path) = report::write_bench_json("fig11_wire", &json) {
        eprintln!("bench summary written to {}", path.display());
    }

    // The wire stack earns its keep when loss is survivable: report the
    // headline directly.
    if let Some(p) = data.points.iter().find(|p| p.loss >= 0.10) {
        println!(
            "\nheadline: at {:.0}% injected datagram loss, {:.1}% of PoP runs \
completed (via {} retries)",
            p.loss * 100.0,
            p.success_rate() * 100.0,
            p.retries
        );
    }
}
