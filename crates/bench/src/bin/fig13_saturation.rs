//! Pipeline saturation sweep: loopback cluster throughput vs epoch-window
//! size, with the lockstep runtime (window 1) as the baseline.
//!
//! Usage: `cargo run -p tldag-bench --release --bin fig13_saturation [--quick]`

use tldag_bench::experiments::saturation::{self, SaturationConfig};
use tldag_bench::report::{self, json_array, JsonMap};
use tldag_bench::Scale;

fn main() {
    let scale = Scale::from_env_args();
    let cfg = SaturationConfig::at_scale(scale);
    eprintln!(
        "fig13_saturation: {} nodes, {} slots, windows {:?} ({scale:?} scale)",
        cfg.nodes, cfg.slots, cfg.windows
    );
    let data = saturation::run(&cfg);

    println!(
        "\n== Loopback cluster throughput vs pipeline window (γ = {}) ==",
        cfg.gamma
    );
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.window.to_string(),
                report::fmt_f64(p.blocks_per_s),
                report::fmt_f64(p.pops_per_s),
                report::fmt_f64(p.p50_slot_ms),
                report::fmt_f64(p.p99_slot_ms),
                p.slot_loop_ms.to_string(),
                format!("{:.2}x", p.speedup),
                if p.parity { "ok" } else { "DRIFT" }.to_string(),
                format!("{}/{}", p.pop_successes, p.pop_attempts),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &[
                "window", "blocks/s", "PoP/s", "p50 ms", "p99 ms", "loop ms", "speedup", "parity",
                "PoP ok",
            ],
            &rows,
        )
    );

    let mut csv = String::from(
        "window,blocks,blocks_per_s,pops_per_s,p50_slot_ms,p99_slot_ms,\
slot_loop_ms,wall_ms,speedup,parity,pop_attempts,pop_successes,retries,datagrams\n",
    );
    for p in &data.points {
        csv.push_str(&format!(
            "{},{},{:.2},{:.2},{:.3},{:.3},{},{:.1},{:.3},{},{},{},{},{}\n",
            p.window,
            p.blocks,
            p.blocks_per_s,
            p.pops_per_s,
            p.p50_slot_ms,
            p.p99_slot_ms,
            p.slot_loop_ms,
            p.wall_ms,
            p.speedup,
            p.parity,
            p.pop_attempts,
            p.pop_successes,
            p.retries,
            p.datagrams,
        ));
    }
    if let Some(path) = report::write_csv("fig13_saturation", &csv) {
        eprintln!("csv written to {}", path.display());
    }

    let json = JsonMap::new()
        .str("experiment", "fig13_saturation")
        .str("scale", &format!("{scale:?}"))
        .int("nodes", cfg.nodes as u64)
        .int("slots", cfg.slots)
        .int("gamma", cfg.gamma as u64)
        .num("best_speedup", data.best_speedup())
        .raw(
            "points",
            json_array(data.points.iter().map(|p| {
                JsonMap::new()
                    .int("window", p.window)
                    .int("blocks", p.blocks)
                    .num("blocks_per_s", p.blocks_per_s)
                    .num("pops_per_s", p.pops_per_s)
                    .num("p50_slot_ms", p.p50_slot_ms)
                    .num("p99_slot_ms", p.p99_slot_ms)
                    .int("slot_loop_ms", p.slot_loop_ms)
                    .num("wall_ms", p.wall_ms)
                    .num("speedup", p.speedup)
                    .bool("parity", p.parity)
                    .int("degraded_nodes", p.degraded_nodes)
                    .int("pop_attempts", p.pop_attempts)
                    .int("pop_successes", p.pop_successes)
                    .int("reference_pop_attempts", p.reference_pop.0)
                    .int("reference_pop_successes", p.reference_pop.1)
                    .int("retries", p.retries)
                    .int("datagrams", p.datagrams)
                    .render()
            })),
        )
        .render();
    if let Some(path) = report::write_bench_json("fig13_saturation", &json) {
        eprintln!("bench summary written to {}", path.display());
    }

    if let Some(base) = data.points.iter().find(|p| p.window == 1) {
        println!(
            "\nheadline: window {} reaches {:.0} blocks/s vs {:.0} lockstep — \
{:.1}x, at byte-identical digests",
            data.points
                .iter()
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                .map(|p| p.window)
                .unwrap_or(1),
            data.points
                .iter()
                .map(|p| p.blocks_per_s)
                .fold(0.0, f64::max),
            base.blocks_per_s,
            data.best_speedup(),
        );
    }
    if data
        .points
        .iter()
        .any(|p| !p.parity || p.degraded_nodes > 0)
    {
        eprintln!("fig13_saturation: PARITY VIOLATION OR DEGRADED NODE — see table");
        std::process::exit(1);
    }
}
