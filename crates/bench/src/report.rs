//! Plain-text reporting: aligned tables and CSV emission.

use std::fmt::Write as _;
use std::path::Path;

/// Renders rows as an aligned ASCII table with a header rule.
///
/// # Example
///
/// ```
/// let table = tldag_bench::report::render_table(
///     &["system", "storage"],
///     &[vec!["2LDAG".into(), "99.2".into()]],
/// );
/// assert!(table.contains("2LDAG"));
/// assert!(table.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<width$}", width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    write_row(&mut out, &header_cells);
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Writes CSV content to `target/experiments/<name>.csv`, creating the
/// directory if needed. Returns the path written, or `None` on I/O failure
/// (the harness treats file output as best-effort; stdout always has the
/// data).
pub fn write_csv(name: &str, content: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, content).ok()?;
    Some(path)
}

/// Formats a float compactly for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width for the first column block.
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xx"));
    }

    #[test]
    fn fmt_f64_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(2.34567), "2.35");
        assert_eq!(fmt_f64(0.001234), "0.0012");
    }
}
