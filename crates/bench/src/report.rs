//! Plain-text reporting: aligned tables, CSV emission, and the
//! machine-readable `BENCH_*.json` summaries that track the perf
//! trajectory across PRs.

use std::fmt::Write as _;
use std::path::Path;

/// Renders rows as an aligned ASCII table with a header rule.
///
/// # Example
///
/// ```
/// let table = tldag_bench::report::render_table(
///     &["system", "storage"],
///     &[vec!["2LDAG".into(), "99.2".into()]],
/// );
/// assert!(table.contains("2LDAG"));
/// assert!(table.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<width$}", width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    write_row(&mut out, &header_cells);
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Writes CSV content to `target/experiments/<name>.csv`, creating the
/// directory if needed. Returns the path written, or `None` on I/O failure
/// (the harness treats file output as best-effort; stdout always has the
/// data).
pub fn write_csv(name: &str, content: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, content).ok()?;
    Some(path)
}

/// Writes a machine-readable benchmark summary to
/// `target/experiments/BENCH_<name>.json`, creating the directory if
/// needed. Returns the path written, or `None` on I/O failure (file output
/// is best-effort; stdout always has the data). The JSON is assembled with
/// [`JsonMap`] so the perf trajectory of each experiment can be tracked
/// across PRs by any tooling that reads the directory.
pub fn write_bench_json(name: &str, json: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json).ok()?;
    Some(path)
}

/// Minimal JSON object builder (the build environment has no serde): keys
/// are emitted in insertion order, values are either pre-rendered raw JSON
/// (numbers, booleans, arrays of nested maps) or escaped strings.
#[derive(Debug, Default)]
pub struct JsonMap {
    fields: Vec<(String, String)>,
}

impl JsonMap {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds a numeric field. Non-finite floats become `null`.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            // Trim to a stable, diff-friendly precision.
            let v = format!("{value:.6}");
            v.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a pre-rendered raw JSON value (e.g. an array built with
    /// [`json_array`]).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push('}');
        out
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts every numeric value of `"key":<number>` from a JSON document,
/// in document order — the counterpart to [`JsonMap`] used by the
/// `bench_gate` regression check to compare `BENCH_*.json` files without a
/// JSON parser dependency. Booleans are read as 1/0 so completion flags
/// gate like rates.
pub fn json_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        let tail = &rest[at + needle.len()..];
        let end = tail
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.push(v);
        } else if tail.starts_with("true") {
            out.push(1.0);
        } else if tail.starts_with("false") {
            out.push(0.0);
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// Formats a float compactly for tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width for the first column block.
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xx"));
    }

    #[test]
    fn fmt_f64_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(2.34567), "2.35");
        assert_eq!(fmt_f64(0.001234), "0.0012");
    }

    #[test]
    fn json_map_renders_escaped_and_ordered() {
        let json = JsonMap::new()
            .str("name", "a \"quoted\" value\n")
            .int("count", 7)
            .num("rate", 0.5)
            .bool("ok", true)
            .raw("items", json_array([JsonMap::new().int("x", 1).render()]))
            .render();
        assert_eq!(
            json,
            "{\"name\":\"a \\\"quoted\\\" value\\n\",\"count\":7,\
\"rate\":0.5,\"ok\":true,\"items\":[{\"x\":1}]}"
        );
    }

    #[test]
    fn json_num_handles_edge_values() {
        assert!(JsonMap::new().num("v", f64::NAN).render().contains("null"));
        assert!(JsonMap::new().num("v", 3.0).render().contains(":3"));
    }

    #[test]
    fn json_numbers_extracts_in_document_order() {
        let doc = "{\"points\":[{\"rate\":0.5,\"n\":1},{\"rate\":1.0,\"n\":2}],\
\"rate\":-2.5e1,\"parity\":true,\"other\":\"\\\"rate\\\":9\"}";
        assert_eq!(json_numbers(doc, "rate"), vec![0.5, 1.0, -25.0]);
        assert_eq!(json_numbers(doc, "parity"), vec![1.0]);
        assert_eq!(json_numbers(doc, "n"), vec![1.0, 2.0]);
        assert_eq!(json_numbers(doc, "missing"), Vec::<f64>::new());
        // Round-trips what JsonMap writes.
        let own = JsonMap::new().num("x", 3.25).bool("ok", false).render();
        assert_eq!(json_numbers(&own, "x"), vec![3.25]);
        assert_eq!(json_numbers(&own, "ok"), vec![0.0]);
    }
}
