//! # tldag-bench — the 2LDAG evaluation harness
//!
//! One regeneration target per panel of the paper's evaluation (Sec. VI):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig7_storage` | Fig. 7(a–c) storage vs slots for C ∈ {0.1, 0.5, 1} MB, and 7(d) per-node storage CDF |
//! | `fig7_retention` | Eq. 2 retention budgets: disk vs budget, PoP availability by block age, warm vs cold restart TPS |
//! | `fig8_comm` | Fig. 8(a) overall comm, 8(b) DAG construction, 8(c) consensus, 8(d) per-node comm CDF |
//! | `fig9_failure` | Fig. 9(a–d) consensus-failure probability for γ ∈ {10, 15, 20, 24} |
//! | `fig9_restart` | Node kill + disk recovery: PoP availability through the outage |
//! | `fig10_scaling` | Sharded-engine throughput vs threads; disk throughput vs sync policy |
//! | `fig11_wire` | PoP over real UDP sockets under injected datagram loss/dup/reorder |
//! | `fig12_churn` | Dynamic membership: join/leave churn over lossy UDP — PoP completion, joiner catch-up latency, digest parity |
//! | `fig13_saturation` | Pipeline saturation: loopback cluster blocks/s, PoP/s, and p50/p99 slot latency vs epoch-window size, lockstep baseline |
//! | `table1_summary` | The abstract's headline ratios (storage ≈2, comm ≈3 orders of magnitude) |
//! | `ablation_wps` | WPS vs random next-hop selection |
//! | `ablation_tps` | TPS cache on vs off over repeated verifications |
//! | `ablation_bounds` | Measured overhead vs the Prop. 1–6 analytic bounds |
//!
//! All binaries accept `--quick` (or `TLDAG_QUICK=1`) for a reduced sweep and
//! print both an aligned table and CSV. Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::scale::Scale;
