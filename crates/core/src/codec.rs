//! Wire codec for 2LDAG types.
//!
//! The simulator passes structs in memory, but a deployment serialises
//! headers, blocks, and PoP messages onto radio frames. This module defines
//! a compact, canonical, length-prefixed big-endian encoding with full
//! decode validation — every `decode_*` rejects truncated, oversized, or
//! mistagged input, so a malformed frame can never panic a node.
//!
//! The *logical* sizes of the overhead model (Eq. 2–3) are defined by
//! [`crate::config::ProtocolConfig`]; this codec is the concrete transport
//! representation and is deliberately close to those sizes.

use crate::block::{BlockBody, BlockHeader, BlockId, DataBlock, DigestEntry};
use crate::pop::messages::{ChildReply, ChildResponse};
use bytes::Bytes;
use std::fmt;
use tldag_crypto::schnorr::Signature;
use tldag_crypto::Digest;
use tldag_sim::NodeId;

/// Maximum digest entries a decoded header may carry (sanity bound: a node
/// cannot have more neighbors than a deployment has nodes).
const MAX_DIGEST_ENTRIES: usize = 4096;
/// Maximum payload bytes a decoded body may carry.
const MAX_PAYLOAD_BYTES: usize = 16 * 1024 * 1024;

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// A type tag byte did not match any known variant.
    BadTag(u8),
    /// A *message* tag byte named no known [`WireMessage`] variant. Split
    /// from [`CodecError::BadTag`] so transports can count version skew —
    /// a peer speaking a newer message set — separately from corruption.
    UnknownTag(u8),
    /// A length field exceeded its sanity bound.
    LengthOverflow,
    /// Valid structure followed by unconsumed bytes.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input ended mid-structure"),
            CodecError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::LengthOverflow => write!(f, "length field exceeds sanity bound"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after structure"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor-based reader with bounds checking — the decoding core every
/// big-endian structure in the workspace shares (this codec, and the wire
/// transport's control-plane codec in `tldag-net`). Every accessor fails
/// with a clean [`CodecError`] instead of panicking on short input.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Consumes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than `n` bytes remain,
    /// [`CodecError::LengthOverflow`] when `n` overflows the cursor.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::LengthOverflow)?;
        if end > self.data.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a 32-byte digest.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than 32 bytes remain.
    pub fn digest(&mut self) -> Result<Digest, CodecError> {
        Ok(Digest::from_bytes(
            self.take(32)?.try_into().expect("32 bytes"),
        ))
    }

    /// Asserts the input was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Encodes a block header.
pub fn encode_header(header: &BlockHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + header.digests.len() * 36);
    out.extend_from_slice(&header.version.to_be_bytes());
    out.extend_from_slice(&header.time.to_be_bytes());
    out.extend_from_slice(header.root.as_bytes());
    out.extend_from_slice(&(header.digests.len() as u32).to_be_bytes());
    for entry in &header.digests {
        out.extend_from_slice(&entry.origin.0.to_be_bytes());
        out.extend_from_slice(entry.digest.as_bytes());
    }
    out.extend_from_slice(&header.nonce.to_be_bytes());
    out.extend_from_slice(&header.signature.to_bytes());
    out
}

fn read_header(r: &mut Reader<'_>) -> Result<BlockHeader, CodecError> {
    let version = r.u32()?;
    let time = r.u64()?;
    let root = r.digest()?;
    let count = r.u32()? as usize;
    if count > MAX_DIGEST_ENTRIES {
        return Err(CodecError::LengthOverflow);
    }
    let mut digests = Vec::with_capacity(count);
    for _ in 0..count {
        let origin = NodeId(r.u32()?);
        let digest = r.digest()?;
        digests.push(DigestEntry { origin, digest });
    }
    let nonce = r.u32()?;
    let signature = Signature::from_bytes(r.take(16)?.try_into().expect("16 bytes"));
    Ok(BlockHeader {
        version,
        time,
        root,
        digests,
        nonce,
        signature,
    })
}

/// Decodes a block header, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated, oversized, or trailing input.
pub fn decode_header(data: &[u8]) -> Result<BlockHeader, CodecError> {
    let mut r = Reader::new(data);
    let header = read_header(&mut r)?;
    r.finish()?;
    Ok(header)
}

/// Encodes a full data block (id + header + body).
pub fn encode_block(block: &DataBlock) -> Vec<u8> {
    let header = encode_header(&block.header);
    let mut out = Vec::with_capacity(24 + header.len() + block.body.payload.len());
    out.extend_from_slice(&block.id.owner.0.to_be_bytes());
    out.extend_from_slice(&block.id.seq.to_be_bytes());
    out.extend_from_slice(&(header.len() as u32).to_be_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(&block.body.logical_bits.to_be_bytes());
    out.extend_from_slice(&(block.body.payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&block.body.payload);
    out
}

/// Decodes a full data block.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_block(data: &[u8]) -> Result<DataBlock, CodecError> {
    let mut r = Reader::new(data);
    let owner = NodeId(r.u32()?);
    let seq = r.u32()?;
    let header_len = r.u32()? as usize;
    let header_bytes = r.take(header_len)?;
    let header = decode_header(header_bytes)?;
    let logical_bits = r.u64()?;
    let payload_len = r.u32()? as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(CodecError::LengthOverflow);
    }
    let payload = r.take(payload_len)?.to_vec();
    r.finish()?;
    Ok(DataBlock {
        id: BlockId::new(owner, seq),
        header,
        body: BlockBody {
            payload: Bytes::from(payload),
            logical_bits,
        },
    })
}

/// Wire form of the PoP exchanges (Sec. IV-C message set).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMessage {
    /// Digest broadcast during DAG construction.
    Digest {
        /// Sender.
        from: NodeId,
        /// `H(b^h)` of the sender's newest block.
        digest: Digest,
    },
    /// `REQ_CHILD`: asks for the oldest child of `target`.
    ReqChild {
        /// Requesting validator.
        from: NodeId,
        /// The verifying block digest.
        target: Digest,
    },
    /// `REQ_CHILD` bounded to a generation horizon: asks for the oldest
    /// child of `target` generated at or before slot `horizon`. Pipelined
    /// (epoch-windowed) validators use this so a responder running ahead
    /// of the verification front never leaks its future blocks into a
    /// proof path — the reply set is exactly what a lockstep responder
    /// would have held at slot `horizon`.
    ReqChildAt {
        /// Requesting validator.
        from: NodeId,
        /// The verifying block digest.
        target: Digest,
        /// Highest generation slot (inclusive) the reply may come from.
        horizon: u64,
    },
    /// `RPY_CHILD` carrying a child header.
    RpyChild(ChildReply),
    /// Cooperative "no child stored".
    Nack {
        /// Responding node.
        from: NodeId,
    },
    /// Cooperative "chain prefix pruned" — the responder compacted its log
    /// under a retention budget, so a child (or the requested block) may
    /// have been dropped. `retained_from` is its pruned floor.
    PrunedNack {
        /// Responding node.
        from: NodeId,
        /// First sequence number the responder still retains.
        retained_from: u32,
    },
    /// Full-block request.
    FetchBlock {
        /// Requesting validator.
        from: NodeId,
        /// Block to retrieve.
        id: BlockId,
    },
    /// Full-block response.
    Block(Box<DataBlock>),
}

const TAG_DIGEST: u8 = 0x01;
const TAG_REQ_CHILD: u8 = 0x02;
const TAG_RPY_CHILD: u8 = 0x03;
const TAG_NACK: u8 = 0x04;
const TAG_FETCH: u8 = 0x05;
const TAG_BLOCK: u8 = 0x06;
const TAG_PRUNED_NACK: u8 = 0x07;
const TAG_REQ_CHILD_AT: u8 = 0x08;

/// Encodes a wire message with a leading type tag.
pub fn encode_message(msg: &WireMessage) -> Vec<u8> {
    match msg {
        WireMessage::Digest { from, digest } => {
            let mut out = vec![TAG_DIGEST];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(digest.as_bytes());
            out
        }
        WireMessage::ReqChild { from, target } => {
            let mut out = vec![TAG_REQ_CHILD];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(target.as_bytes());
            out
        }
        WireMessage::ReqChildAt {
            from,
            target,
            horizon,
        } => {
            let mut out = vec![TAG_REQ_CHILD_AT];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(target.as_bytes());
            out.extend_from_slice(&horizon.to_be_bytes());
            out
        }
        WireMessage::RpyChild(reply) => {
            let header = encode_header(&reply.header);
            let mut out = vec![TAG_RPY_CHILD];
            out.extend_from_slice(&reply.claimed_owner.0.to_be_bytes());
            out.extend_from_slice(&reply.block_id.owner.0.to_be_bytes());
            out.extend_from_slice(&reply.block_id.seq.to_be_bytes());
            out.extend_from_slice(&(header.len() as u32).to_be_bytes());
            out.extend_from_slice(&header);
            out
        }
        WireMessage::Nack { from } => {
            let mut out = vec![TAG_NACK];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        WireMessage::PrunedNack {
            from,
            retained_from,
        } => {
            let mut out = vec![TAG_PRUNED_NACK];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(&retained_from.to_be_bytes());
            out
        }
        WireMessage::FetchBlock { from, id } => {
            let mut out = vec![TAG_FETCH];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(&id.owner.0.to_be_bytes());
            out.extend_from_slice(&id.seq.to_be_bytes());
            out
        }
        WireMessage::Block(block) => {
            let body = encode_block(block);
            let mut out = Vec::with_capacity(1 + body.len());
            out.push(TAG_BLOCK);
            out.extend_from_slice(&body);
            out
        }
    }
}

/// Decodes a wire message.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_message(data: &[u8]) -> Result<WireMessage, CodecError> {
    let mut r = Reader::new(data);
    let tag = r.u8()?;
    let msg = match tag {
        TAG_DIGEST => WireMessage::Digest {
            from: NodeId(r.u32()?),
            digest: r.digest()?,
        },
        TAG_REQ_CHILD => WireMessage::ReqChild {
            from: NodeId(r.u32()?),
            target: r.digest()?,
        },
        TAG_REQ_CHILD_AT => WireMessage::ReqChildAt {
            from: NodeId(r.u32()?),
            target: r.digest()?,
            horizon: r.u64()?,
        },
        TAG_RPY_CHILD => {
            let claimed_owner = NodeId(r.u32()?);
            let owner = NodeId(r.u32()?);
            let seq = r.u32()?;
            let header_len = r.u32()? as usize;
            let header = decode_header(r.take(header_len)?)?;
            WireMessage::RpyChild(ChildReply {
                claimed_owner,
                block_id: BlockId::new(owner, seq),
                header,
            })
        }
        TAG_NACK => WireMessage::Nack {
            from: NodeId(r.u32()?),
        },
        TAG_PRUNED_NACK => WireMessage::PrunedNack {
            from: NodeId(r.u32()?),
            retained_from: r.u32()?,
        },
        TAG_FETCH => {
            let from = NodeId(r.u32()?);
            let owner = NodeId(r.u32()?);
            let seq = r.u32()?;
            WireMessage::FetchBlock {
                from,
                id: BlockId::new(owner, seq),
            }
        }
        TAG_BLOCK => {
            let rest = r.take(data.len() - 1)?;
            return Ok(WireMessage::Block(Box::new(decode_block(rest)?)));
        }
        other => return Err(CodecError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Magic + version prefix of a persisted trust cache (`H_i`) blob.
const TRUST_CACHE_MAGIC: &[u8; 8] = b"TLDAGTC\x01";

/// Encodes a trusted-header cache `H_i` for persistence.
///
/// Entries are sorted by `(owner, seq, digest)` so the encoding is
/// deterministic regardless of hash-map iteration order. The format is
/// `magic ‖ count ‖ [owner, block-owner, seq, header-len, header]*` with the
/// header in the canonical [`encode_header`] form.
pub fn encode_trust_cache(cache: &crate::store::TrustCache) -> Vec<u8> {
    let mut entries: Vec<&crate::store::TrustedHeader> = cache.iter().collect();
    // The digest is a SHA-256 over the serialized header — cache the sort
    // key, or every comparison would recompute it (this encoder runs at
    // every commit point once persistence is on).
    entries.sort_by_cached_key(|t| (t.owner, t.block_id.seq, t.header.digest()));
    let mut out = Vec::with_capacity(16 + entries.len() * 96);
    out.extend_from_slice(TRUST_CACHE_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for t in entries {
        let header = encode_header(&t.header);
        out.extend_from_slice(&t.owner.0.to_be_bytes());
        out.extend_from_slice(&t.block_id.owner.0.to_be_bytes());
        out.extend_from_slice(&t.block_id.seq.to_be_bytes());
        out.extend_from_slice(&(header.len() as u32).to_be_bytes());
        out.extend_from_slice(&header);
    }
    out
}

/// Decodes a persisted trust cache `H_i`.
///
/// # Errors
///
/// Returns a [`CodecError`] on any framing violation — callers treat a
/// failed decode as "no cache" (a cold restart), never as data loss.
pub fn decode_trust_cache(data: &[u8]) -> Result<crate::store::TrustCache, CodecError> {
    let mut r = Reader::new(data);
    if r.take(8)? != TRUST_CACHE_MAGIC {
        return Err(CodecError::BadTag(data.first().copied().unwrap_or(0)));
    }
    let count = r.u32()? as usize;
    if count > 1 << 24 {
        return Err(CodecError::LengthOverflow);
    }
    let mut cache = crate::store::TrustCache::new();
    for _ in 0..count {
        let owner = NodeId(r.u32()?);
        let block_owner = NodeId(r.u32()?);
        let seq = r.u32()?;
        let header_len = r.u32()? as usize;
        let header = decode_header(r.take(header_len)?)?;
        cache.insert(crate::store::TrustedHeader {
            owner,
            block_id: BlockId::new(block_owner, seq),
            header,
        });
    }
    r.finish()?;
    Ok(cache)
}

/// Converts a [`ChildResponse`] into its wire form. A pruned miss carries
/// `retained_from`, the responder's pruned floor.
pub fn response_to_wire(from: NodeId, response: &ChildResponse, retained_from: u32) -> WireMessage {
    match response {
        ChildResponse::Found(reply) => WireMessage::RpyChild(reply.clone()),
        ChildResponse::NoChild => WireMessage::Nack { from },
        ChildResponse::Pruned => WireMessage::PrunedNack {
            from,
            retained_from,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use tldag_crypto::schnorr::KeyPair;

    fn sample_block(digests: usize) -> DataBlock {
        let cfg = ProtocolConfig::test_default();
        let kp = KeyPair::from_seed(5);
        let entries = (0..digests)
            .map(|i| DigestEntry {
                origin: NodeId(i as u32),
                digest: Digest::from_bytes([i as u8; 32]),
            })
            .collect();
        DataBlock::create(
            &cfg,
            BlockId::new(NodeId(3), 7),
            42,
            entries,
            BlockBody::new(vec![9u8; 100], cfg.body_bits),
            &kp,
        )
    }

    #[test]
    fn header_round_trip() {
        for digests in [0usize, 1, 5, 12] {
            let block = sample_block(digests);
            let encoded = encode_header(&block.header);
            let decoded = decode_header(&encoded).unwrap();
            assert_eq!(decoded, block.header);
            assert_eq!(decoded.digest(), block.header_digest(), "digest preserved");
        }
    }

    #[test]
    fn block_round_trip() {
        let block = sample_block(3);
        let decoded = decode_block(&encode_block(&block)).unwrap();
        assert_eq!(decoded, block);
    }

    #[test]
    fn truncated_input_rejected_at_every_length() {
        let block = sample_block(2);
        let encoded = encode_block(&block);
        for len in 0..encoded.len() {
            assert!(
                decode_block(&encoded[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let block = sample_block(1);
        let mut encoded = encode_header(&block.header);
        encoded.push(0);
        assert_eq!(decode_header(&encoded), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn oversized_digest_count_rejected() {
        let block = sample_block(0);
        let mut encoded = encode_header(&block.header);
        // The count field sits after version (4) + time (8) + root (32).
        encoded[44..48].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_header(&encoded), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn all_message_variants_round_trip() {
        let block = sample_block(2);
        let messages = vec![
            WireMessage::Digest {
                from: NodeId(1),
                digest: Digest::from_bytes([1; 32]),
            },
            WireMessage::ReqChild {
                from: NodeId(2),
                target: Digest::from_bytes([2; 32]),
            },
            WireMessage::ReqChildAt {
                from: NodeId(2),
                target: Digest::from_bytes([7; 32]),
                horizon: 41,
            },
            WireMessage::RpyChild(ChildReply {
                claimed_owner: NodeId(3),
                block_id: block.id,
                header: block.header.clone(),
            }),
            WireMessage::Nack { from: NodeId(4) },
            WireMessage::PrunedNack {
                from: NodeId(4),
                retained_from: 17,
            },
            WireMessage::FetchBlock {
                from: NodeId(5),
                id: BlockId::new(NodeId(6), 9),
            },
            WireMessage::Block(Box::new(block.clone())),
        ];
        for msg in messages {
            let decoded = decode_message(&encode_message(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(
            decode_message(&[0xff, 0, 0]),
            Err(CodecError::UnknownTag(0xff))
        );
        assert_eq!(decode_message(&[]), Err(CodecError::UnexpectedEnd));
        // Every tag outside the known set reports the skewed byte.
        for tag in 0x09..=0x20u8 {
            assert_eq!(decode_message(&[tag]), Err(CodecError::UnknownTag(tag)));
        }
    }

    #[test]
    fn response_to_wire_maps_both_variants() {
        let block = sample_block(1);
        let found = ChildResponse::Found(ChildReply {
            claimed_owner: NodeId(1),
            block_id: block.id,
            header: block.header.clone(),
        });
        assert!(matches!(
            response_to_wire(NodeId(1), &found, 0),
            WireMessage::RpyChild(_)
        ));
        assert_eq!(
            response_to_wire(NodeId(2), &ChildResponse::NoChild, 0),
            WireMessage::Nack { from: NodeId(2) }
        );
        assert_eq!(
            response_to_wire(NodeId(2), &ChildResponse::Pruned, 9),
            WireMessage::PrunedNack {
                from: NodeId(2),
                retained_from: 9
            }
        );
    }

    #[test]
    fn trust_cache_round_trip_is_deterministic() {
        use crate::store::{TrustCache, TrustedHeader};
        let mut cache = TrustCache::new();
        for owner in [3u32, 1, 2] {
            let block = sample_block(2);
            let kp = KeyPair::from_seed(u64::from(owner));
            let cfg = ProtocolConfig::test_default();
            let owned = DataBlock::create(
                &cfg,
                BlockId::new(NodeId(owner), owner),
                u64::from(owner),
                block.header.digests.clone(),
                BlockBody::new(vec![owner as u8], cfg.body_bits),
                &kp,
            );
            cache.insert(TrustedHeader {
                owner: NodeId(owner),
                block_id: owned.id,
                header: owned.header,
            });
        }
        let blob = encode_trust_cache(&cache);
        assert_eq!(blob, encode_trust_cache(&cache), "encoding is stable");
        let decoded = decode_trust_cache(&blob).unwrap();
        assert_eq!(decoded.len(), cache.len());
        for t in cache.iter() {
            let hit = decoded.get(&t.header.digest()).expect("entry survives");
            assert_eq!(hit, t);
        }
        // Any truncation is rejected, never silently partial.
        for cut in [0, 4, 11, blob.len() - 1] {
            assert!(decode_trust_cache(&blob[..cut]).is_err());
        }
    }

    #[test]
    fn decoded_header_still_validates() {
        // Signature and puzzle checks survive the round trip — the codec is
        // canonical with respect to the signed bytes.
        let cfg = ProtocolConfig::test_default();
        let block = sample_block(4);
        let decoded = decode_header(&encode_header(&block.header)).unwrap();
        assert!(decoded.verify_signature(&KeyPair::from_seed(5).public()));
        assert!(decoded.verify_puzzle(cfg.difficulty_bits));
    }
}
