//! Error types for block validation and the Proof-of-Path protocol.

use std::fmt;
use tldag_sim::NodeId;

/// Why a retrieved data block or header failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The recomputed Merkle root of the body does not match the header's
    /// `Root` field (Algorithm 3, line 3).
    RootMismatch,
    /// The header signature does not verify under the owner's public key.
    SignatureInvalid,
    /// The header nonce does not satisfy the difficulty target (Eq. 5).
    PuzzleInvalid,
    /// The header's Digests field does not contain the expected parent digest.
    DigestMismatch,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::RootMismatch => write!(f, "merkle root does not match block body"),
            ValidationError::SignatureInvalid => write!(f, "header signature invalid"),
            ValidationError::PuzzleInvalid => write!(f, "header nonce fails difficulty target"),
            ValidationError::DigestMismatch => {
                write!(f, "header does not reference expected parent digest")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Why a Proof-of-Path run ended without consensus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PopError {
    /// The verifier did not return the target block at all.
    BlockUnavailable {
        /// Node that was asked for the block.
        owner: NodeId,
    },
    /// The target block itself failed validation.
    InvalidBlock {
        /// Node that served the invalid block.
        owner: NodeId,
        /// What failed.
        reason: ValidationError,
    },
    /// The verifier retained the chain's tail but has **compacted away** the
    /// requested block under its storage budget (Eq. 2): a graceful miss,
    /// not an offense — the owner cooperated but the data is gone.
    TargetPruned {
        /// Node that pruned the block.
        owner: NodeId,
        /// First sequence number the owner still retains.
        retained_from: u32,
    },
    /// Every candidate path was exhausted before `γ + 1` distinct nodes
    /// vouched for the block (Algorithm 3, line 33).
    PathExhausted {
        /// Distinct nodes accumulated before exhaustion.
        distinct_nodes: usize,
        /// Consensus threshold `γ + 1` that was required.
        required: usize,
    },
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::BlockUnavailable { owner } => {
                write!(f, "verifier {owner} did not return the requested block")
            }
            PopError::InvalidBlock { owner, reason } => {
                write!(f, "block served by {owner} failed validation: {reason}")
            }
            PopError::TargetPruned {
                owner,
                retained_from,
            } => write!(
                f,
                "verifier {owner} pruned the requested block (retains seq {retained_from} onward)"
            ),
            PopError::PathExhausted {
                distinct_nodes,
                required,
            } => write!(
                f,
                "proof path exhausted with {distinct_nodes} of {required} required distinct nodes"
            ),
        }
    }
}

impl std::error::Error for PopError {}

/// Failures surfaced by block storage backends ([`crate::store::BlockBackend`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TldagError {
    /// A block was appended whose sequence number is not the next in the
    /// chain — nodes generate strictly sequential blocks (Sec. III-D).
    OutOfOrderAppend {
        /// The sequence number the chain expected next.
        expected: u32,
        /// The sequence number the rejected block carried.
        got: u32,
    },
    /// The underlying storage medium failed (I/O error, full disk, …).
    Storage(String),
    /// A persisted record failed to decode or its checksum did not match.
    Corrupt(String),
    /// Another live handle already owns the storage directory. Two engines
    /// appending to the same log would silently corrupt it; the lock file
    /// turns that into this refusal.
    Locked {
        /// The contested storage directory.
        dir: String,
        /// PID recorded in the directory's lock file.
        holder_pid: u32,
    },
}

impl TldagError {
    /// Wraps an I/O error as a storage failure.
    pub fn io(context: &str, err: &std::io::Error) -> Self {
        TldagError::Storage(format!("{context}: {err}"))
    }
}

impl fmt::Display for TldagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TldagError::OutOfOrderAppend { expected, got } => {
                write!(f, "out-of-order append: expected seq {expected}, got {got}")
            }
            TldagError::Storage(msg) => write!(f, "storage backend failure: {msg}"),
            TldagError::Corrupt(msg) => write!(f, "persisted state corrupt: {msg}"),
            TldagError::Locked { dir, holder_pid } => write!(
                f,
                "storage directory {dir} is locked by live process {holder_pid}"
            ),
        }
    }
}

impl std::error::Error for TldagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = PopError::PathExhausted {
            distinct_nodes: 3,
            required: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("3 of 5"));
        assert!(msg.starts_with(char::is_lowercase));
        assert_eq!(
            ValidationError::RootMismatch.to_string(),
            "merkle root does not match block body"
        );
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ValidationError>();
        assert_error::<PopError>();
    }
}
