//! Per-node storage: the block set `S_i` and the trusted-header cache `H_i`.
//!
//! A 2LDAG node stores **only its own blocks** (`S_i`, Sec. III-A) plus the
//! headers it has already verified through PoP (`H_i`, Sec. IV-B). Both are
//! sized by the overhead model so Propositions 2 and 3 can be checked against
//! simulated runs.
//!
//! `S_i` is accessed through the [`BlockBackend`] trait so a node can run on
//! either the in-memory [`BlockStore`] (fast, volatile — the original seed
//! behaviour) or a durable engine such as `tldag-storage`'s segmented block
//! log, which survives process restarts and keeps resident memory bounded.
//!
//! [`SyncPolicy`] decides **when** appended blocks are forced to stable
//! storage: per append, per slot (the default commit point), or every `n`
//! slots. The policy is enforced by the slot engine
//! (`tldag_core::network::TldagNetwork`), not by the backends themselves.

use crate::block::{BlockHeader, BlockId, DataBlock};
use crate::config::ProtocolConfig;
use crate::error::TldagError;
use std::collections::HashMap;
use std::fmt;
use tldag_crypto::Digest;
use tldag_sim::{Bits, NodeId};

/// When appended blocks are forced onto stable storage.
///
/// The slot engine drives the cadence: `PerAppend` syncs inside the
/// generation phase right after each append, the other two sync at slot
/// boundaries. Durable backends translate a sync into an `fsync`; the
/// group-commit shard log in `tldag-storage` additionally collapses the
/// slot-boundary syncs of all nodes sharing a shard into **one** `fsync`
/// per shard per slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Every append is made durable immediately (one fsync per block).
    /// Maximum durability, minimum throughput.
    PerAppend,
    /// Sync once per slot at the slot boundary (the seed behaviour): a crash
    /// loses at most the current slot's blocks.
    #[default]
    PerSlot,
    /// Sync every `n` slots: a crash loses at most `n` slots of blocks.
    /// `Grouped(1)` is equivalent to [`SyncPolicy::PerSlot`]. Slots after
    /// the last group boundary are only staged — a clean shutdown must
    /// flush them explicitly (`TldagNetwork::sync_storage`), or they are
    /// lost exactly as in a crash.
    Grouped(u32),
}

impl SyncPolicy {
    /// Whether the engine should sync backends at the **end** of `slot`.
    pub fn syncs_at_slot_end(self, slot: u64) -> bool {
        match self {
            SyncPolicy::PerAppend => false, // already durable per append
            SyncPolicy::PerSlot => true,
            SyncPolicy::Grouped(n) => {
                let n = u64::from(n.max(1));
                slot % n == n - 1
            }
        }
    }

    /// Whether the engine should sync right after each append.
    pub fn syncs_per_append(self) -> bool {
        matches!(self, SyncPolicy::PerAppend)
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::PerAppend => write!(f, "per-append"),
            SyncPolicy::PerSlot => write!(f, "per-slot"),
            SyncPolicy::Grouped(n) => write!(f, "grouped:{n}"),
        }
    }
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    /// Parses `per-append`, `per-slot`, or `grouped:N` (N ≥ 1).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-append" => Ok(SyncPolicy::PerAppend),
            "per-slot" => Ok(SyncPolicy::PerSlot),
            other => {
                let n = other
                    .strip_prefix("grouped:")
                    .and_then(|raw| raw.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("invalid sync policy `{other}` (per-append|per-slot|grouped:N)")
                    })?;
                Ok(SyncPolicy::Grouped(n))
            }
        }
    }
}

/// Storage abstraction over a node's own chain `S_i`.
///
/// Implementations must preserve the append-only, strictly sequential chain
/// discipline (Sec. III-D) and answer the responder-side lookups of Eq. 10–11.
/// Methods return **owned** blocks because durable backends decode records
/// from disk; the in-memory backend clones, which is cheap — block bodies are
/// reference-counted.
///
/// Backends must be `Send + Sync`: the shard-parallel engine reads peer
/// stores from several worker threads at once (PoP responder lookups), so
/// interior caches need thread-safe interior mutability.
///
/// # Example
///
/// The in-memory [`BlockStore`] is the reference implementation:
///
/// ```
/// use tldag_core::config::ProtocolConfig;
/// use tldag_core::store::{BlockBackend, BlockStore};
/// use tldag_core::{BlockBody, BlockId, DataBlock};
/// use tldag_crypto::schnorr::KeyPair;
/// use tldag_sim::NodeId;
///
/// let cfg = ProtocolConfig::test_default();
/// let keypair = KeyPair::from_seed(7);
/// let mut store = BlockStore::new();
///
/// // Appends must follow the chain: seq 0, then 1, then 2, …
/// let genesis = DataBlock::create(
///     &cfg,
///     BlockId::new(NodeId(7), 0),
///     0,
///     vec![],
///     BlockBody::new(vec![1, 2, 3], cfg.body_bits),
///     &keypair,
/// );
/// let digest = genesis.header_digest();
/// store.append(genesis.clone()).unwrap();
///
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.latest(), Some(genesis.clone()));
/// assert_eq!(store.by_header_digest(&digest), Some(genesis));
///
/// // Skipping a sequence number is refused.
/// let wrong = DataBlock::create(
///     &cfg,
///     BlockId::new(NodeId(7), 5),
///     1,
///     vec![],
///     BlockBody::new(vec![], cfg.body_bits),
///     &keypair,
/// );
/// assert!(store.append(wrong).is_err());
///
/// // Volatile backends treat sync as a no-op but still report durability.
/// store.sync().unwrap();
/// assert_eq!(store.durable_len(), 1);
/// ```
pub trait BlockBackend: fmt::Debug + Send + Sync {
    /// Appends the next block of the chain.
    ///
    /// # Errors
    ///
    /// [`TldagError::OutOfOrderAppend`] when `block.id.seq` is not `len()`,
    /// or [`TldagError::Storage`] when the medium fails.
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError>;

    /// Number of blocks in the chain.
    fn len(&self) -> usize;

    /// True if no block has been generated yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The block with sequence number `seq`.
    fn get(&self, seq: u32) -> Option<DataBlock>;

    /// The most recent block.
    fn latest(&self) -> Option<DataBlock> {
        match self.len() {
            0 => None,
            n => self.get((n - 1) as u32),
        }
    }

    /// Looks a block up by its header digest.
    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock>;

    /// The **oldest** own block whose Digests field contains `target` —
    /// the responder's selection rule (Eq. 11). Multiple blocks may contain
    /// the digest when this node generates faster than the target's owner.
    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock>;

    /// All own blocks whose Digests field contains `target`
    /// (`C_{j'}(b_v)` of Eq. 10), in generation order.
    fn children_of(&self, target: &Digest) -> Vec<DataBlock>;

    /// [`Self::oldest_child_of`] restricted to blocks generated at or
    /// before slot `horizon`. Pipelined responders answer slot-`horizon`
    /// verification with this so blocks minted while running ahead of the
    /// verification front never leak into a proof path — the reply is
    /// exactly what a lockstep responder would have held at `horizon`.
    fn oldest_child_of_within(&self, target: &Digest, horizon: u64) -> Option<DataBlock> {
        self.children_of(target)
            .into_iter()
            .find(|b| b.header.time <= horizon)
    }

    /// Iterates over all blocks in generation order.
    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_>;

    /// Iterates `(id, generation slot)` in generation order **without**
    /// materialising blocks — the candidate-scan fast path. Durable backends
    /// serve this from their index; the default decodes full blocks.
    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        Box::new(self.iter().map(|b| (b.id, b.header.time)))
    }

    /// Logical storage footprint of `S_i` (Eq. 2 summed over blocks).
    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits;

    /// Approximate bytes of process memory pinned by this backend (full
    /// blocks for the memory store; index + caches for durable engines).
    fn resident_bytes(&self) -> usize;

    /// Forces buffered appends onto stable storage.
    ///
    /// A no-op for volatile backends. After `sync` returns, every block
    /// appended so far must survive a crash of the process.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    fn sync(&mut self) -> Result<(), TldagError> {
        Ok(())
    }

    /// Number of leading chain blocks guaranteed to survive a crash.
    ///
    /// Volatile backends report `len()` (nothing survives, but nothing more
    /// was ever promised); durable engines report the synced watermark.
    fn durable_len(&self) -> usize {
        self.len()
    }

    /// First sequence number still retained — the **pruned floor**.
    ///
    /// 0 until a retention budget compacts the chain prefix away; after
    /// compaction, `get(seq)` returns `None` for every `seq` below the
    /// floor even though `len()` keeps counting the full chain. The PoP
    /// responder path uses the floor to answer requests for compacted
    /// blocks with a graceful miss instead of feigning silence. Volatile
    /// backends never prune.
    fn pruned_floor(&self) -> u32 {
        0
    }

    /// Number of physical `fsync` calls this backend has issued so far.
    ///
    /// Volatile backends report 0. Group-committed backends sharing one log
    /// report the **shared** log's count, so summing over the members of one
    /// shard overcounts; sum one backend per shard instead (the experiment
    /// harness reads counts from the factory, which does exactly that).
    fn fsync_count(&self) -> u64 {
        0
    }

    /// Number of on-disk log segments currently backing this store.
    ///
    /// A telemetry gauge: grows as the log rolls, shrinks when retention
    /// prunes whole segments. Volatile backends report 0.
    fn segment_count(&self) -> u64 {
        0
    }
}

/// Creates block backends for nodes, so `TldagNetwork` can provision storage
/// without depending on a concrete engine crate.
pub trait BackendFactory: fmt::Debug {
    /// A fresh (empty) backend for `node`.
    fn create(&mut self, node: NodeId) -> Box<dyn BlockBackend>;

    /// Reopens `node`'s backend after a crash, recovering durable state.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] / [`TldagError::Corrupt`] from the engine;
    /// volatile factories cannot recover and return an empty store.
    fn reopen(&mut self, node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError>;

    /// Persists `node`'s trusted-header cache `H_i` alongside its chain, so
    /// a restarted node can resume Trust Path Selection warm instead of
    /// re-verifying paths from scratch. Volatile factories ignore the call.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the medium fails.
    fn save_trust_cache(&mut self, _node: NodeId, _cache: &TrustCache) -> Result<(), TldagError> {
        Ok(())
    }

    /// Loads `node`'s persisted `H_i`, if any. `H_i` is a cache, not ledger
    /// state: a missing or unreadable file means a cold restart (`None`),
    /// never an error.
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] for genuine medium failures (durable
    /// implementations treat decode failures as `None`).
    fn load_trust_cache(&mut self, _node: NodeId) -> Result<Option<TrustCache>, TldagError> {
        Ok(None)
    }
}

/// The factory for the seed's in-memory stores: `create` and `reopen` both
/// yield empty [`BlockStore`]s (a crashed memory-backed node loses its chain).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryBackendFactory;

impl BackendFactory for MemoryBackendFactory {
    fn create(&mut self, _node: NodeId) -> Box<dyn BlockBackend> {
        Box::new(BlockStore::new())
    }

    fn reopen(&mut self, _node: NodeId) -> Result<Box<dyn BlockBackend>, TldagError> {
        Ok(Box::new(BlockStore::new()))
    }
}

/// The append-only chain of blocks generated by one node (`S_i`),
/// held entirely in memory.
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    blocks: Vec<DataBlock>,
    /// Header digest → seq of the block with that header.
    by_digest: HashMap<Digest, u32>,
    /// Contained digest → seqs of blocks whose Digests field includes it
    /// (the responder's `C_{j'}(b_v)` lookup, Eq. 10).
    children_of: HashMap<Digest, Vec<u32>>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockBackend for BlockStore {
    fn append(&mut self, block: DataBlock) -> Result<(), TldagError> {
        if block.id.seq as usize != self.blocks.len() {
            return Err(TldagError::OutOfOrderAppend {
                expected: self.blocks.len() as u32,
                got: block.id.seq,
            });
        }
        let digest = block.header_digest();
        self.by_digest.insert(digest, block.id.seq);
        for entry in &block.header.digests {
            self.children_of
                .entry(entry.digest)
                .or_default()
                .push(block.id.seq);
        }
        self.blocks.push(block);
        Ok(())
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn get(&self, seq: u32) -> Option<DataBlock> {
        self.blocks.get(seq as usize).cloned()
    }

    fn by_header_digest(&self, digest: &Digest) -> Option<DataBlock> {
        self.by_digest.get(digest).and_then(|&seq| self.get(seq))
    }

    fn oldest_child_of(&self, target: &Digest) -> Option<DataBlock> {
        let seqs = self.children_of.get(target)?;
        let min_seq = *seqs.iter().min()?;
        self.get(min_seq)
    }

    fn children_of(&self, target: &Digest) -> Vec<DataBlock> {
        let mut seqs = self.children_of.get(target).cloned().unwrap_or_default();
        seqs.sort_unstable();
        seqs.iter().filter_map(|&s| self.get(s)).collect()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = DataBlock> + '_> {
        Box::new(self.blocks.iter().cloned())
    }

    fn iter_meta(&self) -> Box<dyn Iterator<Item = (BlockId, u64)> + '_> {
        Box::new(self.blocks.iter().map(|b| (b.id, b.header.time)))
    }

    fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.blocks.iter().map(|b| b.logical_bits(cfg)).sum()
    }

    fn resident_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                std::mem::size_of::<DataBlock>()
                    + b.header.digests.len() * std::mem::size_of::<crate::block::DigestEntry>()
                    + b.body.payload.len()
            })
            .sum::<usize>()
            + self.by_digest.len() * (32 + 4)
            + self.children_of.len() * (32 + 8)
    }
}

/// A header verified via PoP, cached in `H_i` together with its provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrustedHeader {
    /// Node that generated the header's block.
    pub owner: NodeId,
    /// Block identity in the owner's chain.
    pub block_id: BlockId,
    /// The verified header.
    pub header: BlockHeader,
}

/// The trusted-header cache `H_i` used by Trust Path Selection (Sec. IV-B).
///
/// Indexed two ways: by the header's own digest, and by every digest the
/// header *contains*, so TPS can answer "is there a cached child of block
/// `d`?" in O(1).
#[derive(Clone, Debug, Default)]
pub struct TrustCache {
    by_digest: HashMap<Digest, TrustedHeader>,
    /// Contained digest → digests of cached headers that include it.
    children_of: HashMap<Digest, Vec<Digest>>,
}

impl TrustCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a verified header. Duplicate insertions are ignored.
    pub fn insert(&mut self, trusted: TrustedHeader) {
        let digest = trusted.header.digest();
        if self.by_digest.contains_key(&digest) {
            return;
        }
        for entry in &trusted.header.digests {
            self.children_of
                .entry(entry.digest)
                .or_default()
                .push(digest);
        }
        self.by_digest.insert(digest, trusted);
    }

    /// Number of cached headers.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// True if the cache is empty (`H_i = ∅`, the Prop. 4 worst case).
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// Fetches a cached header by its digest.
    pub fn get(&self, digest: &Digest) -> Option<&TrustedHeader> {
        self.by_digest.get(digest)
    }

    /// A cached header whose Digests field contains `target` — the TPS
    /// condition `H(b^h_v) ∈ b^h ∈ H_i` (Eq. 9). When several qualify the
    /// earliest-generated (then lowest owner id) is returned so TPS is
    /// deterministic.
    pub fn child_of(&self, target: &Digest) -> Option<&TrustedHeader> {
        let candidates = self.children_of.get(target)?;
        candidates
            .iter()
            .filter_map(|d| self.by_digest.get(d))
            .min_by_key(|t| (t.header.time, t.owner, t.block_id.seq))
    }

    /// All cached headers whose Digests field contains `target`, ordered by
    /// (time, owner, seq). TPS consumers filter this list (e.g. skipping
    /// rolled-back blocks) and take the first survivor.
    pub fn children_candidates(&self, target: &Digest) -> Vec<&TrustedHeader> {
        let mut candidates: Vec<&TrustedHeader> = self
            .children_of
            .get(target)
            .map(|ds| ds.iter().filter_map(|d| self.by_digest.get(d)).collect())
            .unwrap_or_default();
        candidates.sort_by_key(|t| (t.header.time, t.owner, t.block_id.seq));
        candidates
    }

    /// Logical storage footprint of `H_i` (header bits summed; Prop. 2).
    pub fn logical_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.by_digest
            .values()
            .map(|t| t.header.logical_bits(cfg))
            .sum()
    }

    /// Iterates over cached headers in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &TrustedHeader> {
        self.by_digest.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, DigestEntry};
    use tldag_crypto::schnorr::KeyPair;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::test_default()
    }

    fn make_block(
        cfg: &ProtocolConfig,
        owner: NodeId,
        seq: u32,
        time: u64,
        digests: Vec<DigestEntry>,
    ) -> DataBlock {
        let kp = KeyPair::from_seed(u64::from(owner.0));
        let body = BlockBody::new(vec![seq as u8; 16], cfg.body_bits);
        DataBlock::create(cfg, BlockId::new(owner, seq), time, digests, body, &kp)
    }

    #[test]
    fn append_and_lookup() {
        let cfg = cfg();
        let mut store = BlockStore::new();
        let b0 = make_block(&cfg, NodeId(0), 0, 0, vec![]);
        let d0 = b0.header_digest();
        store.append(b0).unwrap();
        let b1 = make_block(
            &cfg,
            NodeId(0),
            1,
            1,
            vec![DigestEntry {
                origin: NodeId(0),
                digest: d0,
            }],
        );
        store.append(b1).unwrap();

        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().id.seq, 1);
        assert!(store.by_header_digest(&d0).is_some());
        assert_eq!(store.oldest_child_of(&d0).unwrap().id.seq, 1);
        assert_eq!(store.durable_len(), 2);
        assert!(store.resident_bytes() > 0);
        store.sync().unwrap();
    }

    #[test]
    fn out_of_order_append_rejected() {
        let cfg = cfg();
        let mut store = BlockStore::new();
        let err = store
            .append(make_block(&cfg, NodeId(0), 5, 0, vec![]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::TldagError::OutOfOrderAppend {
                expected: 0,
                got: 5
            }
        );
        assert!(
            store.is_empty(),
            "rejected append must not mutate the chain"
        );
    }

    #[test]
    fn oldest_child_picks_minimum_seq() {
        let cfg = cfg();
        let mut store = BlockStore::new();
        let target = Digest::from_bytes([9; 32]);
        // Block 0 without the digest; blocks 1 and 2 both contain it.
        store
            .append(make_block(&cfg, NodeId(1), 0, 0, vec![]))
            .unwrap();
        for seq in 1..=2 {
            store
                .append(make_block(
                    &cfg,
                    NodeId(1),
                    seq,
                    u64::from(seq),
                    vec![DigestEntry {
                        origin: NodeId(7),
                        digest: target,
                    }],
                ))
                .unwrap();
        }
        assert_eq!(store.oldest_child_of(&target).unwrap().id.seq, 1);
        assert_eq!(store.children_of(&target).len(), 2);
        assert!(store.oldest_child_of(&Digest::ZERO).is_none());
    }

    #[test]
    fn storage_bits_sum_block_sizes() {
        let cfg = cfg();
        let mut store = BlockStore::new();
        store
            .append(make_block(&cfg, NodeId(0), 0, 0, vec![]))
            .unwrap();
        let expect = cfg.block_bits(0);
        assert_eq!(store.logical_bits(&cfg), expect);
    }

    #[test]
    fn memory_factory_reopens_empty() {
        let mut factory = MemoryBackendFactory;
        let mut backend = factory.create(NodeId(0));
        backend
            .append(make_block(&cfg(), NodeId(0), 0, 0, vec![]))
            .unwrap();
        assert_eq!(backend.len(), 1);
        // Volatile storage: a reopen after crash recovers nothing.
        let reopened = factory.reopen(NodeId(0)).unwrap();
        assert_eq!(reopened.len(), 0);
    }

    #[test]
    fn trust_cache_insert_and_child_lookup() {
        let cfg = cfg();
        let parent_digest = Digest::from_bytes([5; 32]);
        let block = make_block(
            &cfg,
            NodeId(2),
            0,
            3,
            vec![DigestEntry {
                origin: NodeId(1),
                digest: parent_digest,
            }],
        );
        let mut cache = TrustCache::new();
        cache.insert(TrustedHeader {
            owner: NodeId(2),
            block_id: block.id,
            header: block.header.clone(),
        });
        assert_eq!(cache.len(), 1);
        let hit = cache.child_of(&parent_digest).unwrap();
        assert_eq!(hit.owner, NodeId(2));
        assert!(cache.child_of(&Digest::ZERO).is_none());
    }

    #[test]
    fn trust_cache_dedups_and_prefers_oldest_child() {
        let cfg = cfg();
        let target = Digest::from_bytes([8; 32]);
        let early = make_block(
            &cfg,
            NodeId(3),
            0,
            1,
            vec![DigestEntry {
                origin: NodeId(9),
                digest: target,
            }],
        );
        let late = make_block(
            &cfg,
            NodeId(4),
            0,
            7,
            vec![DigestEntry {
                origin: NodeId(9),
                digest: target,
            }],
        );
        let mut cache = TrustCache::new();
        for b in [&late, &early, &late] {
            cache.insert(TrustedHeader {
                owner: b.id.owner,
                block_id: b.id,
                header: b.header.clone(),
            });
        }
        assert_eq!(cache.len(), 2, "duplicate insert ignored");
        assert_eq!(cache.child_of(&target).unwrap().owner, NodeId(3));
    }

    #[test]
    fn sync_policy_slot_cadence() {
        for slot in 0..8 {
            assert!(!SyncPolicy::PerAppend.syncs_at_slot_end(slot));
            assert!(SyncPolicy::PerSlot.syncs_at_slot_end(slot));
            assert!(SyncPolicy::Grouped(1).syncs_at_slot_end(slot));
            assert_eq!(
                SyncPolicy::Grouped(3).syncs_at_slot_end(slot),
                slot % 3 == 2
            );
        }
        assert!(SyncPolicy::PerAppend.syncs_per_append());
        assert!(!SyncPolicy::PerSlot.syncs_per_append());
        // Grouped(0) is clamped to Grouped(1) rather than dividing by zero.
        assert!(SyncPolicy::Grouped(0).syncs_at_slot_end(0));
    }

    #[test]
    fn sync_policy_parse_round_trip() {
        for policy in [
            SyncPolicy::PerAppend,
            SyncPolicy::PerSlot,
            SyncPolicy::Grouped(4),
        ] {
            let parsed: SyncPolicy = policy.to_string().parse().unwrap();
            assert_eq!(parsed, policy);
        }
        assert!("grouped:0".parse::<SyncPolicy>().is_err());
        assert!("grouped:x".parse::<SyncPolicy>().is_err());
        assert!("sometimes".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn trust_cache_bits_counts_headers_only() {
        let cfg = cfg();
        let block = make_block(&cfg, NodeId(0), 0, 0, vec![]);
        let mut cache = TrustCache::new();
        cache.insert(TrustedHeader {
            owner: NodeId(0),
            block_id: block.id,
            header: block.header.clone(),
        });
        assert_eq!(cache.logical_bits(&cfg), cfg.header_bits(0));
        assert!(cache.logical_bits(&cfg).bits() < cfg.block_bits(0).bits());
    }
}
