//! The logical DAG layer `Ḡ(B, L)` (Sec. III-C).
//!
//! No single node materialises this graph — that is the whole point of 2LDAG —
//! but analysis, tests, and the evaluation oracle need a global view: the set
//! `B` of all blocks and the edge set `L`, where `(b_x, b_y) ∈ L` iff the
//! header of `b_y` contains `H(b^h_x)`. [`LogicalDag`] assembles that view
//! from every node's store and answers reachability/acyclicity queries.

use crate::block::BlockId;
use crate::node::LedgerNode;
use std::collections::{HashMap, HashSet, VecDeque};
use tldag_crypto::Digest;
use tldag_sim::NodeId;

/// A node in the logical DAG (one data block).
#[derive(Clone, Debug)]
struct DagEntry {
    id: BlockId,
    time: u64,
    parents: Vec<Digest>,
}

/// A global, read-only view of the logical DAG.
#[derive(Clone, Debug, Default)]
pub struct LogicalDag {
    entries: HashMap<Digest, DagEntry>,
    /// parent digest → child digests.
    children: HashMap<Digest, Vec<Digest>>,
}

impl LogicalDag {
    /// Builds the DAG from every node's store.
    pub fn build(nodes: &[LedgerNode]) -> Self {
        let mut dag = LogicalDag::default();
        for node in nodes {
            for block in node.store().iter() {
                let digest = block.header_digest();
                let parents: Vec<Digest> = block.header.digests.iter().map(|e| e.digest).collect();
                for parent in &parents {
                    dag.children.entry(*parent).or_default().push(digest);
                }
                dag.entries.insert(
                    digest,
                    DagEntry {
                        id: block.id,
                        time: block.header.time,
                        parents,
                    },
                );
            }
        }
        dag
    }

    /// Number of blocks `|B|`.
    pub fn block_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of directed edges `|L|` whose endpoints both exist in `B`.
    pub fn edge_count(&self) -> usize {
        self.entries
            .values()
            .map(|e| {
                e.parents
                    .iter()
                    .filter(|p| self.entries.contains_key(*p))
                    .count()
            })
            .sum()
    }

    /// The block id stored under a header digest.
    pub fn block_id(&self, digest: &Digest) -> Option<BlockId> {
        self.entries.get(digest).map(|e| e.id)
    }

    /// Children of the block with header digest `d` (blocks that reference it).
    pub fn children_of(&self, d: &Digest) -> &[Digest] {
        self.children.get(d).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `descendant` is reachable from `ancestor` by following
    /// child edges — i.e. `descendant`'s node "points to" `ancestor`
    /// (Sec. III-C). A block is considered its own descendant.
    pub fn is_descendant(&self, ancestor: &Digest, descendant: &Digest) -> bool {
        if ancestor == descendant {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([*ancestor]);
        while let Some(d) = queue.pop_front() {
            for child in self.children_of(&d) {
                if child == descendant {
                    return true;
                }
                if seen.insert(*child) {
                    queue.push_back(*child);
                }
            }
        }
        false
    }

    /// All distinct owner nodes of blocks that are descendants of `d`
    /// (including `d`'s own owner). This is the consensus oracle: PoP can
    /// gather at most this set into `R_i`.
    pub fn pointing_nodes(&self, d: &Digest) -> HashSet<NodeId> {
        let mut owners = HashSet::new();
        if let Some(e) = self.entries.get(d) {
            owners.insert(e.id.owner);
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([*d]);
        while let Some(cur) = queue.pop_front() {
            for child in self.children_of(&cur) {
                if seen.insert(*child) {
                    if let Some(e) = self.entries.get(child) {
                        owners.insert(e.id.owner);
                    }
                    queue.push_back(*child);
                }
            }
        }
        owners
    }

    /// Checks acyclicity by Kahn's algorithm over the *internal* edges.
    /// 2LDAG guarantees acyclicity because a header can only reference
    /// digests of blocks generated earlier (hash references cannot form
    /// forward edges); this verifies the invariant on a simulated run.
    pub fn is_acyclic(&self) -> bool {
        let mut in_degree: HashMap<Digest, usize> = self
            .entries
            .keys()
            .map(|d| {
                let deg = self.entries[d]
                    .parents
                    .iter()
                    .filter(|p| self.entries.contains_key(*p))
                    .count();
                (*d, deg)
            })
            .collect();
        let mut queue: VecDeque<Digest> = in_degree
            .iter()
            .filter_map(|(d, &deg)| (deg == 0).then_some(*d))
            .collect();
        let mut visited = 0usize;
        while let Some(d) = queue.pop_front() {
            visited += 1;
            for child in self.children_of(&d) {
                if let Some(deg) = in_degree.get_mut(child) {
                    *deg -= 1;
                    if *deg == 0 {
                        queue.push_back(*child);
                    }
                }
            }
        }
        visited == self.entries.len()
    }

    /// Checks that every edge respects time: a child's generation slot is
    /// never earlier than its parent's.
    pub fn edges_respect_time(&self) -> bool {
        self.entries.values().all(|entry| {
            entry
                .parents
                .iter()
                .filter_map(|p| self.entries.get(p))
                .all(|parent| parent.time <= entry.time)
        })
    }

    /// Validates that `path` (header digests, verifier first) is a directed
    /// path in the DAG: each successive block's header references the
    /// previous digest. Used by property tests on PoP outcomes.
    pub fn is_valid_path(&self, path: &[Digest]) -> bool {
        path.windows(2)
            .all(|w| self.children_of(&w[0]).contains(&w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::node::LedgerNode;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::test_default()
    }

    /// Builds the Fig. 3 scenario: A-B, B-C, B-D, C-D; D generates first,
    /// then C, then A, then B.
    fn fig3_nodes() -> Vec<LedgerNode> {
        let cfg = cfg();
        let neighbor_sets: Vec<Vec<u32>> = vec![vec![1], vec![0, 2, 3], vec![1, 3], vec![1, 2]];
        let mut nodes: Vec<LedgerNode> = neighbor_sets
            .into_iter()
            .enumerate()
            .map(|(i, ns)| {
                LedgerNode::new(NodeId(i as u32), ns.into_iter().map(NodeId).collect(), &cfg)
            })
            .collect();

        // Slot 0: D (index 3) generates D1 and sends digest to B, C.
        let d1 = {
            let b = nodes[3].generate_block(&cfg, 0, vec![0xd1]).unwrap();
            b.header_digest()
        };
        nodes[1].receive_digest(NodeId(3), d1);
        nodes[2].receive_digest(NodeId(3), d1);

        // C generates C1 (contains H(D1)), sends digest to B, D.
        let c1 = {
            let b = nodes[2].generate_block(&cfg, 1, vec![0xc1]).unwrap();
            b.header_digest()
        };
        nodes[1].receive_digest(NodeId(2), c1);
        nodes[3].receive_digest(NodeId(2), c1);

        // A generates A1, digest to B.
        let a1 = {
            let b = nodes[0].generate_block(&cfg, 2, vec![0xa1]).unwrap();
            b.header_digest()
        };
        nodes[1].receive_digest(NodeId(0), a1);

        // B generates B1 containing H(A1), H(C1), H(D1).
        nodes[1].generate_block(&cfg, 3, vec![0xb1]).unwrap();
        nodes
    }

    #[test]
    fn fig3_dag_structure() {
        let nodes = fig3_nodes();
        let dag = LogicalDag::build(&nodes);
        assert_eq!(dag.block_count(), 4);

        let d1 = nodes[3].store().get(0).unwrap().header_digest();
        let c1 = nodes[2].store().get(0).unwrap().header_digest();
        let a1 = nodes[0].store().get(0).unwrap().header_digest();
        let b1 = nodes[1].store().get(0).unwrap().header_digest();

        // D1 → C1 (C included D's digest) and D1 → B1; A1 → B1; C1 → B1.
        assert!(dag.children_of(&d1).contains(&c1));
        assert!(dag.children_of(&d1).contains(&b1));
        assert!(dag.children_of(&a1).contains(&b1));
        assert!(dag.children_of(&c1).contains(&b1));
        assert!(dag.is_descendant(&d1, &b1));
        assert!(!dag.is_descendant(&b1, &d1));
    }

    #[test]
    fn fig3_pointing_nodes() {
        let nodes = fig3_nodes();
        let dag = LogicalDag::build(&nodes);
        let d1 = nodes[3].store().get(0).unwrap().header_digest();
        // D1 is pointed to by C (via C1), B (via B1), and D itself.
        let owners = dag.pointing_nodes(&d1);
        assert!(owners.contains(&NodeId(3)));
        assert!(owners.contains(&NodeId(2)));
        assert!(owners.contains(&NodeId(1)));
        assert!(!owners.contains(&NodeId(0)), "A1 does not reference D1");
    }

    #[test]
    fn dag_is_acyclic_and_time_consistent() {
        let nodes = fig3_nodes();
        let dag = LogicalDag::build(&nodes);
        assert!(dag.is_acyclic());
        assert!(dag.edges_respect_time());
    }

    #[test]
    fn valid_path_check() {
        let nodes = fig3_nodes();
        let dag = LogicalDag::build(&nodes);
        let d1 = nodes[3].store().get(0).unwrap().header_digest();
        let c1 = nodes[2].store().get(0).unwrap().header_digest();
        let b1 = nodes[1].store().get(0).unwrap().header_digest();
        assert!(dag.is_valid_path(&[d1, c1, b1]));
        assert!(dag.is_valid_path(&[d1, b1]));
        assert!(!dag.is_valid_path(&[b1, d1]));
        assert!(
            dag.is_valid_path(&[d1]),
            "singleton path is trivially valid"
        );
    }

    #[test]
    fn empty_dag() {
        let dag = LogicalDag::build(&[]);
        assert_eq!(dag.block_count(), 0);
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.is_acyclic());
    }

    #[test]
    fn edge_count_ignores_dangling_parents() {
        let nodes = fig3_nodes();
        let dag = LogicalDag::build(&nodes);
        // Every digest entry in this scenario refers to an existing block, and
        // B1's header holds 3 digests + C1 holds 1 = 4 internal edges.
        assert_eq!(dag.edge_count(), 4);
    }
}
