//! # tldag-core — the 2LDAG protocol and Proof-of-Path consensus
//!
//! Implementation of *"A Novel Two-Layer DAG-based Reactive Protocol for IoT
//! Data Reliability in Metaverse"* (ICDCS 2023). 2LDAG keeps blockchain's
//! immutability and traceability while shedding its storage and communication
//! cost: each IoT node stores **only its own data blocks** and exchanges
//! **only 256-bit digests** with physical neighbors. The digests embedded in
//! block headers link all blocks into a logical DAG; data is verified
//! *reactively* — only when someone asks — by the Proof-of-Path (PoP)
//! protocol, which walks the DAG until `γ + 1` distinct nodes vouch for the
//! target block.
//!
//! ## Layout
//!
//! * [`config`] — field sizes and protocol parameters (Fig. 2, Eq. 2–3).
//! * [`block`] — data blocks: header, body, Merkle root, puzzle, signature.
//! * [`node`] — per-node state `S_i`/`A_i`/`H_i` and block generation.
//! * [`store`] — the own-chain store and verified-header cache.
//! * [`dag`] — the global logical DAG view (analysis oracle).
//! * [`pop`] — Proof-of-Path: WPS, TPS, validator, responder plumbing.
//! * [`network`] — the slotted network simulation driving everything.
//! * [`attack`] / [`blacklist`] — adversary behaviours and the penalty list.
//! * [`analysis`] — Propositions 1–6 as checkable bounds.
//! * [`workload`] — sensor payloads and verification-target policies.
//!
//! ## Quickstart
//!
//! ```
//! use tldag_core::config::ProtocolConfig;
//! use tldag_core::network::TldagNetwork;
//! use tldag_sim::engine::GenerationSchedule;
//! use tldag_sim::topology::{Topology, TopologyConfig};
//! use tldag_sim::DetRng;
//!
//! // A 10-node IoT deployment, one block per node per slot.
//! let mut rng = DetRng::seed_from(7);
//! let topo = Topology::random_connected(&TopologyConfig::small(10), &mut rng);
//! let cfg = ProtocolConfig::test_default();
//! let schedule = GenerationSchedule::uniform(topo.len());
//! let mut network = TldagNetwork::new(cfg, topo, schedule, 7);
//!
//! network.run_slots(12);
//!
//! // Verify some node's genesis block via Proof-of-Path.
//! use tldag_sim::NodeId;
//! let target = network.node(NodeId(3)).store().get(0).unwrap().id;
//! let report = network.run_pop(NodeId(0), target, false);
//! assert!(report.is_success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attack;
pub mod blacklist;
pub mod block;
pub mod codec;
pub mod config;
pub mod dag;
pub mod error;
pub mod network;
pub mod node;
pub mod pop;
pub mod store;
pub mod workload;

pub use attack::Behavior;
pub use block::{BlockBody, BlockHeader, BlockId, DataBlock, DigestEntry};
pub use config::{PathSelection, ProtocolConfig};
pub use error::{PopError, TldagError, ValidationError};
pub use network::{SlotSummary, TldagNetwork};
pub use node::LedgerNode;
pub use pop::{PopMetrics, PopReport, Validator};
pub use store::{BackendFactory, BlockBackend, BlockStore, MemoryBackendFactory, TrustCache};
pub use workload::VerificationWorkload;
