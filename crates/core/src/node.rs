//! The 2LDAG ledger node: physical-layer state and block generation.
//!
//! Per Sec. III, node `i` maintains:
//!
//! * `S_i` — its own blocks ([`BlockStore`]); a node never stores another
//!   node's blocks.
//! * `A_i` — the latest digest heard from each neighbor.
//! * `H_i` — headers verified via PoP ([`TrustCache`]).
//! * a [`Blacklist`] of peers that failed to cooperate.
//!
//! Block generation (Sec. III-D): collect `Δ_i = A_i ∪ {H(b^h_{i,t-1})}`,
//! compute the Merkle root of the sampled data, mine the difficulty nonce,
//! sign, append to `S_i`, and hand the new digest to every neighbor.
//!
//! Concurrency: a `LedgerNode` is `Send + Sync` (its storage backend is
//! required to be). The sharded slot engine mutates a node only from the
//! worker thread that owns its shard; the read-only responder surface
//! ([`LedgerNode::serve_block`], [`LedgerNode::serve_child_request`],
//! [`LedgerNode::store`]) is safely shared across validator threads during
//! the PoP phase.

use crate::attack::Behavior;
use crate::blacklist::Blacklist;
use crate::block::{BlockBody, BlockHeader, BlockId, DataBlock, DigestEntry};
use crate::config::ProtocolConfig;
use crate::error::TldagError;
use crate::store::{BlockBackend, BlockStore, TrustCache};
use std::collections::BTreeMap;
use tldag_crypto::schnorr::{KeyPair, PublicKey};
use tldag_crypto::Digest;
use tldag_sim::engine::Slot;
use tldag_sim::{Bits, NodeId};

/// What a verifier says to a full-block fetch (Algorithm 3 line 2).
///
/// Distinguishing "compacted away under the storage budget" from plain
/// unavailability matters for both the blacklist (pruning is cooperative,
/// not an offense) and the Eq. 2 retention experiments, which count pruned
/// misses separately from failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockFetch {
    /// The block as stored (possibly tampered by a malicious behaviour).
    Served(DataBlock),
    /// The block existed but was compacted away under the retention budget;
    /// the verifier retains `retained_from` onward.
    Pruned {
        /// First sequence number still retained.
        retained_from: u32,
    },
    /// No response: the node is silent or never generated the block.
    Unavailable,
}

/// What a responder says to a `REQ_CHILD` (Algorithm 4), before transport
/// faults are applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildServe {
    /// The oldest own block whose Digests field contains the target.
    Found(BlockId, BlockHeader),
    /// No such block stored (and nothing has been pruned, so none ever
    /// existed in the retained history).
    NoChild,
    /// No such block retained **and** the chain prefix has been compacted
    /// away — a matching child may have existed below the pruned floor.
    Pruned,
}

/// A 2LDAG protocol participant.
#[derive(Debug)]
pub struct LedgerNode {
    id: NodeId,
    keypair: KeyPair,
    neighbors: Vec<NodeId>,
    /// `A_i`: latest digest per neighbor, ordered for determinism.
    latest_digests: BTreeMap<NodeId, Digest>,
    store: Box<dyn BlockBackend>,
    trust_cache: TrustCache,
    blacklist: Blacklist,
    behavior: Behavior,
    /// Digests received per slot per neighbor, for flood detection.
    digests_this_slot: BTreeMap<NodeId, u32>,
    flood_limit_per_slot: u32,
}

impl LedgerNode {
    /// Creates a node with the given neighbors (from `G(V,E)`) backed by the
    /// in-memory [`BlockStore`]; keys are derived from the node id, modelling
    /// registration-time provisioning.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>, cfg: &ProtocolConfig) -> Self {
        Self::with_backend(id, neighbors, cfg, Box::new(BlockStore::new()))
    }

    /// Creates a node whose chain `S_i` lives in the given storage backend.
    ///
    /// A reopened (recovered) backend is accepted mid-chain: generation
    /// resumes from `backend.len()`, so a restarted node continues its
    /// sequence numbers instead of forking its own chain.
    pub fn with_backend(
        id: NodeId,
        neighbors: Vec<NodeId>,
        cfg: &ProtocolConfig,
        backend: Box<dyn BlockBackend>,
    ) -> Self {
        LedgerNode {
            id,
            keypair: KeyPair::from_seed(u64::from(id.0)),
            neighbors,
            latest_digests: BTreeMap::new(),
            store: backend,
            trust_cache: TrustCache::new(),
            blacklist: Blacklist::new(cfg.blacklist),
            behavior: Behavior::Honest,
            digests_this_slot: BTreeMap::new(),
            flood_limit_per_slot: 2,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's public key (every node knows every key, Sec. IV-D).
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public()
    }

    /// The neighbor set `N(i)`.
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Registers a new physical neighbor (dynamic membership: a node joined
    /// within radio range).
    pub fn add_neighbor(&mut self, neighbor: NodeId) {
        if !self.neighbors.contains(&neighbor) {
            self.neighbors.push(neighbor);
        }
    }

    /// Forgets a neighbor (dynamic membership: a node left). Its last digest
    /// is dropped from `A_i`, so future blocks no longer reference it.
    pub fn remove_neighbor(&mut self, neighbor: NodeId) {
        self.neighbors.retain(|&n| n != neighbor);
        self.latest_digests.remove(&neighbor);
    }

    /// Current behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Sets the behaviour (used by attack scenarios).
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// Own block store `S_i`.
    pub fn store(&self) -> &dyn BlockBackend {
        self.store.as_ref()
    }

    /// Mutable access to `S_i` (sync points, compaction hooks).
    pub fn store_mut(&mut self) -> &mut dyn BlockBackend {
        self.store.as_mut()
    }

    /// Trusted-header cache `H_i`.
    pub fn trust_cache(&self) -> &TrustCache {
        &self.trust_cache
    }

    /// Mutable trust cache (the validator updates it during PoP).
    pub fn trust_cache_mut(&mut self) -> &mut TrustCache {
        &mut self.trust_cache
    }

    /// Takes the trust cache out of the node (restored after a PoP run to
    /// satisfy the borrow checker across node-array accesses).
    pub fn take_trust_cache(&mut self) -> TrustCache {
        std::mem::take(&mut self.trust_cache)
    }

    /// Puts a trust cache back (counterpart of [`Self::take_trust_cache`]).
    pub fn restore_trust_cache(&mut self, cache: TrustCache) {
        self.trust_cache = cache;
    }

    /// The blacklist.
    pub fn blacklist(&self) -> &Blacklist {
        &self.blacklist
    }

    /// Takes the blacklist out of the node (restored after a PoP run, like
    /// [`Self::take_trust_cache`]).
    pub fn take_blacklist(&mut self, cfg: &ProtocolConfig) -> Blacklist {
        std::mem::replace(&mut self.blacklist, Blacklist::new(cfg.blacklist))
    }

    /// Puts a blacklist back (counterpart of [`Self::take_blacklist`]).
    pub fn restore_blacklist(&mut self, blacklist: Blacklist) {
        self.blacklist = blacklist;
    }

    /// Mutable blacklist access.
    pub fn blacklist_mut(&mut self) -> &mut Blacklist {
        &mut self.blacklist
    }

    /// Latest digest heard from `neighbor` (`A_i` lookup).
    pub fn latest_digest_from(&self, neighbor: NodeId) -> Option<Digest> {
        self.latest_digests.get(&neighbor).copied()
    }

    /// Digest of the node's own latest block.
    pub fn own_latest_digest(&self) -> Option<Digest> {
        self.store.latest().map(|b| b.header_digest())
    }

    /// Number of blocks generated so far.
    pub fn chain_len(&self) -> usize {
        self.store.len()
    }

    /// Generates the next data block from `payload` at `slot` (Sec. III-D)
    /// and returns it. The caller (network layer) is responsible for
    /// broadcasting `H(b^h)` to the neighbors.
    ///
    /// The Digests field contains the latest digest from each neighbor heard
    /// so far, plus the previous own-block digest (absent for genesis).
    ///
    /// # Errors
    ///
    /// [`TldagError::Storage`] when the backend cannot persist the block.
    /// The sequence number is derived from the backend's length, so
    /// [`TldagError::OutOfOrderAppend`] cannot occur here.
    pub fn generate_block(
        &mut self,
        cfg: &ProtocolConfig,
        slot: Slot,
        payload: Vec<u8>,
    ) -> Result<DataBlock, TldagError> {
        let mut digests: Vec<DigestEntry> = self
            .latest_digests
            .iter()
            .map(|(&origin, &digest)| DigestEntry { origin, digest })
            .collect();
        if let Some(prev) = self.own_latest_digest() {
            digests.push(DigestEntry {
                origin: self.id,
                digest: prev,
            });
        }
        let id = BlockId::new(self.id, self.store.len() as u32);
        let body = BlockBody::new(payload, cfg.body_bits);
        let block = DataBlock::create(cfg, id, slot, digests, body, &self.keypair);
        self.store.append(block.clone())?;
        Ok(block)
    }

    /// Handles a digest received from `from`. Returns `false` when the digest
    /// is discarded (unknown peer, banned peer, or flood detected).
    ///
    /// Flood detection (Sec. IV-D.5): a peer delivering more digests per slot
    /// than the puzzle plausibly allows is banned.
    pub fn receive_digest(&mut self, from: NodeId, digest: Digest) -> bool {
        if !self.neighbors.contains(&from) {
            return false;
        }
        if self.blacklist.is_banned(from) {
            // Banned peers still earn parole credit by forwarding blocks.
            self.blacklist.record_service(from);
            return false;
        }
        let count = self.digests_this_slot.entry(from).or_insert(0);
        *count += 1;
        if *count > self.flood_limit_per_slot {
            self.blacklist.record_failure(from);
            return false;
        }
        self.latest_digests.insert(from, digest);
        self.blacklist.record_service(from);
        true
    }

    /// Resets per-slot rate counters; the network calls this at slot start.
    pub fn begin_slot(&mut self) {
        self.digests_this_slot.clear();
    }

    /// First sequence number of `S_i` still retained — the node's pruned
    /// floor (0 until a retention budget compacts the chain prefix).
    pub fn pruned_floor(&self) -> u32 {
        self.store.pruned_floor()
    }

    /// Serves a full-block fetch (the verifier role in Algorithm 3 line 2).
    /// Honest nodes return the block as stored; [`Behavior::CorruptStore`]
    /// returns a tampered body; silent behaviours are
    /// [`BlockFetch::Unavailable`]; a block below the pruned floor is a
    /// graceful [`BlockFetch::Pruned`] miss, never a panic.
    pub fn serve_block(&self, id: BlockId) -> BlockFetch {
        if self.behavior.is_silent() {
            return BlockFetch::Unavailable;
        }
        let Some(block) = self.store.get(id.seq) else {
            let floor = self.store.pruned_floor();
            if id.seq < floor {
                return BlockFetch::Pruned {
                    retained_from: floor,
                };
            }
            return BlockFetch::Unavailable;
        };
        match self.behavior {
            Behavior::CorruptStore => {
                let mut tampered = block;
                let mut bytes = tampered.body.payload.to_vec();
                if bytes.is_empty() {
                    bytes.push(0xff);
                } else {
                    bytes[0] ^= 0xff;
                }
                tampered.body = BlockBody::new(bytes, tampered.body.logical_bits);
                BlockFetch::Served(tampered)
            }
            _ => BlockFetch::Served(block),
        }
    }

    /// Serves a `REQ_CHILD` request (Algorithm 4): the oldest own block whose
    /// header contains `target`. Silent nodes return `None` (the requester
    /// times out); corrupt repliers flip the referenced digest; a miss on a
    /// compacted chain is reported as [`ChildServe::Pruned`] — the child may
    /// have lived below the pruned floor, which `REQ_CHILD` cannot
    /// distinguish from "never existed".
    pub fn serve_child_request(&self, target: &Digest) -> Option<ChildServe> {
        self.serve_child_request_within(target, u64::MAX)
    }

    /// [`Self::serve_child_request`] bounded to a generation horizon: only
    /// blocks generated at or before slot `horizon` are eligible children.
    /// Pipelined (epoch-windowed) responders answer `REQ_CHILD_AT` with
    /// this so blocks minted while running ahead of the requester's
    /// verification front never leak into a proof path.
    pub fn serve_child_request_within(&self, target: &Digest, horizon: u64) -> Option<ChildServe> {
        if self.behavior.is_silent() {
            return None;
        }
        let Some(block) = self.store.oldest_child_of_within(target, horizon) else {
            return Some(if self.store.pruned_floor() > 0 {
                ChildServe::Pruned
            } else {
                ChildServe::NoChild
            });
        };
        let mut header = block.header;
        if self.behavior == Behavior::CorruptReply {
            for entry in &mut header.digests {
                if entry.digest == *target {
                    entry.digest = entry.digest.corrupted();
                }
            }
        }
        Some(ChildServe::Found(block.id, header))
    }

    /// Total logical storage: `|S_i| + |H_i|` in bits (Prop. 3's quantity).
    pub fn storage_bits(&self, cfg: &ProtocolConfig) -> Bits {
        self.store.logical_bits(cfg) + self.trust_cache.logical_bits(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::test_default()
    }

    fn node_with_neighbors(id: u32, neighbors: &[u32]) -> LedgerNode {
        LedgerNode::new(
            NodeId(id),
            neighbors.iter().map(|&n| NodeId(n)).collect(),
            &cfg(),
        )
    }

    #[test]
    fn genesis_block_has_no_digests() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1, 2]);
        let block = node.generate_block(&cfg, 0, vec![1, 2, 3]).unwrap();
        assert_eq!(block.id, BlockId::genesis(NodeId(0)));
        assert!(block.header.digests.is_empty());
        assert_eq!(node.chain_len(), 1);
    }

    #[test]
    fn second_block_references_previous_and_neighbors() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        node.generate_block(&cfg, 0, vec![0]).unwrap();
        let own_digest = node.own_latest_digest().unwrap();
        let neighbor_digest = Digest::from_bytes([7; 32]);
        assert!(node.receive_digest(NodeId(1), neighbor_digest));

        let block = node.generate_block(&cfg, 1, vec![1]).unwrap();
        assert_eq!(block.header.digest_entries(), 2);
        assert_eq!(block.header.digest_of(NodeId(0)), Some(own_digest));
        assert_eq!(block.header.digest_of(NodeId(1)), Some(neighbor_digest));
    }

    #[test]
    fn digest_from_non_neighbor_rejected() {
        let mut node = node_with_neighbors(0, &[1]);
        assert!(!node.receive_digest(NodeId(9), Digest::ZERO));
        assert!(node.latest_digest_from(NodeId(9)).is_none());
    }

    #[test]
    fn newer_digest_replaces_older() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        let d1 = Digest::from_bytes([1; 32]);
        let d2 = Digest::from_bytes([2; 32]);
        node.receive_digest(NodeId(1), d1);
        node.receive_digest(NodeId(1), d2);
        assert_eq!(node.latest_digest_from(NodeId(1)), Some(d2));
        // Only the latest appears in a new block (A_i semantics).
        let block = node.generate_block(&cfg, 1, vec![]).unwrap();
        assert_eq!(block.header.digest_of(NodeId(1)), Some(d2));
    }

    #[test]
    fn flood_detection_bans_peer() {
        let mut node = node_with_neighbors(0, &[1]);
        node.begin_slot();
        assert!(node.receive_digest(NodeId(1), Digest::from_bytes([1; 32])));
        assert!(node.receive_digest(NodeId(1), Digest::from_bytes([2; 32])));
        // Third digest in the same slot exceeds the plausible puzzle rate.
        assert!(!node.receive_digest(NodeId(1), Digest::from_bytes([3; 32])));
        assert!(node.blacklist().is_banned(NodeId(1)));
    }

    #[test]
    fn slot_reset_clears_flood_counters() {
        let mut node = node_with_neighbors(0, &[1]);
        node.begin_slot();
        node.receive_digest(NodeId(1), Digest::from_bytes([1; 32]));
        node.receive_digest(NodeId(1), Digest::from_bytes([2; 32]));
        node.begin_slot();
        assert!(node.receive_digest(NodeId(1), Digest::from_bytes([3; 32])));
        assert!(!node.blacklist().is_banned(NodeId(1)));
    }

    #[test]
    fn serve_child_request_returns_oldest_match() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        let target = Digest::from_bytes([9; 32]);
        node.receive_digest(NodeId(1), target);
        node.generate_block(&cfg, 0, vec![0]).unwrap(); // seq 0 contains target
        node.generate_block(&cfg, 1, vec![1]).unwrap(); // seq 1 contains own prev (target replaced? no: A_i still has it)
        let Some(ChildServe::Found(id, header)) = node.serve_child_request(&target) else {
            panic!("expected a child");
        };
        assert_eq!(id.seq, 0);
        assert!(header.contains_digest(&target));
        // A miss on an unpruned chain is a definitive NoChild.
        assert_eq!(
            node.serve_child_request(&Digest::ZERO),
            Some(ChildServe::NoChild)
        );
    }

    #[test]
    fn corrupt_reply_breaks_digest_reference() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        let target = Digest::from_bytes([9; 32]);
        node.receive_digest(NodeId(1), target);
        node.generate_block(&cfg, 0, vec![0]).unwrap();
        node.set_behavior(Behavior::CorruptReply);
        let Some(ChildServe::Found(_, header)) = node.serve_child_request(&target) else {
            panic!("expected a child");
        };
        assert!(!header.contains_digest(&target));
    }

    #[test]
    fn unresponsive_serves_nothing() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        node.generate_block(&cfg, 0, vec![0]).unwrap();
        node.set_behavior(Behavior::Unresponsive);
        assert_eq!(
            node.serve_block(BlockId::genesis(NodeId(0))),
            BlockFetch::Unavailable
        );
        assert!(node.serve_child_request(&Digest::ZERO).is_none());
    }

    #[test]
    fn corrupt_store_serves_tampered_body() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[1]);
        node.generate_block(&cfg, 0, vec![1, 2, 3]).unwrap();
        node.set_behavior(Behavior::CorruptStore);
        let BlockFetch::Served(block) = node.serve_block(BlockId::genesis(NodeId(0))) else {
            panic!("corrupt store still serves");
        };
        // Tampered body no longer matches the signed Merkle root.
        assert_ne!(
            block.body.merkle_root(cfg.merkle_chunk_bytes),
            block.header.root
        );
    }

    #[test]
    fn storage_counts_chain_and_cache() {
        let cfg = cfg();
        let mut node = node_with_neighbors(0, &[]);
        assert_eq!(node.storage_bits(&cfg), Bits::ZERO);
        node.generate_block(&cfg, 0, vec![0]).unwrap();
        assert_eq!(node.storage_bits(&cfg), cfg.block_bits(0));
    }

    #[test]
    fn banned_peer_digest_counts_as_service() {
        let mut node = node_with_neighbors(0, &[1]);
        // Force a ban.
        node.blacklist_mut().record_failure(NodeId(1));
        assert!(node.blacklist().is_banned(NodeId(1)));
        // Deliver parole_after_services digests.
        for i in 0..16 {
            node.receive_digest(NodeId(1), Digest::from_bytes([i; 32]));
        }
        assert!(!node.blacklist().is_banned(NodeId(1)));
    }
}
