//! Workload synthesis: sensor payloads and verification-target policies.
//!
//! The paper's workload is IoT telemetry flowing toward digital twins: every
//! node samples its environment each slot, packages `C` bits into a block,
//! and — when generating — verifies one previously generated block via PoP
//! (Sec. VI). This module synthesises the payloads and encodes the paper's
//! two target-selection policies.

use tldag_sim::engine::Slot;
use tldag_sim::{DetRng, NodeId};

/// How PoP verification targets are chosen each slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerificationWorkload {
    /// Verify a uniformly random block at least `min_age_slots` old — the
    /// Figs. 7–8 workload ("PoP can only verify a block that is generated
    /// before |V| time slots").
    RandomPast {
        /// Minimum block age in slots (the paper uses `|V|`).
        min_age_slots: u64,
    },
    /// Verify a random block generated in the first `era_slots` slots — the
    /// Fig. 9 workload ("2LDAG verifies a block generated in the first γ
    /// time slots").
    FirstEra {
        /// Length of the target era in slots (the paper uses `γ`).
        era_slots: u64,
    },
    /// Generate blocks only; no PoP traffic (isolates Fig. 8(b)).
    Disabled,
}

impl VerificationWorkload {
    /// The paper's default for a network of `n` nodes.
    pub fn paper_default(n: usize) -> Self {
        VerificationWorkload::RandomPast {
            min_age_slots: n as u64,
        }
    }

    /// Whether a block generated at `block_slot` qualifies as a target when
    /// the current slot is `now`.
    pub fn qualifies(&self, block_slot: Slot, now: Slot) -> bool {
        match *self {
            VerificationWorkload::RandomPast { min_age_slots } => {
                now >= block_slot && now - block_slot >= min_age_slots
            }
            VerificationWorkload::FirstEra { era_slots } => block_slot < era_slots,
            VerificationWorkload::Disabled => false,
        }
    }
}

/// Synthesises one sensor reading: a small struct-of-fields payload
/// (node, slot, temperature, humidity, battery) with deterministic jitter.
/// The logical body size `C` is accounted separately; this payload is what
/// Merkle roots and tamper checks operate on.
pub fn sensor_payload(rng: &mut DetRng, node: NodeId, slot: Slot) -> Vec<u8> {
    let temperature_c = 18.0 + 10.0 * rng.unit_f64();
    let humidity_pct = 35.0 + 40.0 * rng.unit_f64();
    let battery_pct = 20.0 + 80.0 * rng.unit_f64();
    let mut out = Vec::with_capacity(36);
    out.extend_from_slice(&node.0.to_be_bytes());
    out.extend_from_slice(&slot.to_be_bytes());
    out.extend_from_slice(&temperature_c.to_be_bytes());
    out.extend_from_slice(&humidity_pct.to_be_bytes());
    out.extend_from_slice(&battery_pct.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_past_respects_min_age() {
        let w = VerificationWorkload::RandomPast { min_age_slots: 50 };
        assert!(w.qualifies(0, 50));
        assert!(w.qualifies(10, 100));
        assert!(!w.qualifies(60, 100));
        assert!(!w.qualifies(10, 30));
    }

    #[test]
    fn first_era_only_accepts_early_blocks() {
        let w = VerificationWorkload::FirstEra { era_slots: 10 };
        assert!(w.qualifies(0, 500));
        assert!(w.qualifies(9, 500));
        assert!(!w.qualifies(10, 500));
    }

    #[test]
    fn disabled_never_qualifies() {
        assert!(!VerificationWorkload::Disabled.qualifies(0, 1000));
    }

    #[test]
    fn paper_default_uses_network_size() {
        let w = VerificationWorkload::paper_default(50);
        assert_eq!(w, VerificationWorkload::RandomPast { min_age_slots: 50 });
    }

    #[test]
    fn payload_is_deterministic_per_stream() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(1);
        assert_eq!(
            sensor_payload(&mut a, NodeId(3), 7),
            sensor_payload(&mut b, NodeId(3), 7)
        );
        assert_eq!(sensor_payload(&mut a, NodeId(3), 7).len(), 36);
    }

    #[test]
    fn payload_embeds_identity() {
        let mut rng = DetRng::seed_from(2);
        let p = sensor_payload(&mut rng, NodeId(0x0102_0304), 0x0506_0708_090a_0b0c);
        assert_eq!(&p[0..4], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(&p[4..12], &[0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c]);
    }
}
