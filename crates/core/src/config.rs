//! Protocol configuration: field sizes, puzzle difficulty, consensus margin.
//!
//! All sizes follow Sec. VI of the paper: `f_H = f_s = 256` bits,
//! `f_v = f_t = f_n = 32` bits, and a body of `C` bits. Eq. (3) defines the
//! constant header cost `f_c = f_v + f_t + f_H + f_n + f_s`; Eq. (2) gives the
//! full block size `f_i = f_c + f_H (|Δ_i|) + C` where `|Δ_i|` is the number
//! of entries in the Digests field (up to `|N(i)| + 1`).

use tldag_sim::Bits;

/// How the validator picks the next responder (ablation knob; the paper's
/// protocol uses [`PathSelection::Weighted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PathSelection {
    /// Weighted Path Selection (Algorithm 1).
    #[default]
    Weighted,
    /// Uniformly random untried neighbor — the baseline WPS is compared
    /// against in the `ablation_wps` experiment.
    Random,
}

/// Configuration of the blacklist penalty mechanism (Sec. IV-D.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlacklistConfig {
    /// Consecutive failures (timeout or invalid reply) before a peer is banned.
    pub ban_after_failures: u32,
    /// Number of valid digests a banned peer must deliver ("help transmit a
    /// certain number of blocks") before it is paroled.
    pub parole_after_services: u32,
}

impl Default for BlacklistConfig {
    fn default() -> Self {
        BlacklistConfig {
            ban_after_failures: 1,
            parole_after_services: 16,
        }
    }
}

/// 2LDAG protocol parameters.
///
/// # Example
///
/// ```
/// use tldag_core::config::ProtocolConfig;
///
/// let cfg = ProtocolConfig::paper_default();
/// assert_eq!(cfg.const_header_bits(), 608); // f_v+f_t+f_H+f_n+f_s
/// // A node with 3 neighbors stores 4 digest entries (Fig. 2):
/// assert_eq!(cfg.header_bits(4).bits(), 608 + 4 * 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProtocolConfig {
    /// Protocol version recorded in every header.
    pub version: u32,
    /// Version field size in bits (`f_v`).
    pub f_v: u64,
    /// Time field size in bits (`f_t`).
    pub f_t: u64,
    /// Hash/digest size in bits (`f_H`).
    pub f_h: u64,
    /// Nonce field size in bits (`f_n`).
    pub f_n: u64,
    /// Signature field size in bits (`f_s`).
    pub f_s: u64,
    /// Block body size in bits (`C`).
    pub body_bits: u64,
    /// Difficulty of the generation puzzle in leading zero bits (Eq. 5). The
    /// paper tunes `ρ` so a block takes seconds; simulations use small values
    /// so the *mechanism* (rate limiting, DoS detection) is preserved while
    /// tests stay fast.
    pub difficulty_bits: u8,
    /// Tolerable number of malicious nodes `γ`; consensus needs `γ + 1`
    /// distinct nodes on the proof path.
    pub gamma: usize,
    /// Whether the validator verifies header signatures and puzzles on every
    /// retrieved header, in addition to the paper's digest-consistency check.
    pub verify_signatures: bool,
    /// Bytes per Merkle leaf when chunking a block body.
    pub merkle_chunk_bytes: usize,
    /// Framing overhead in bits added to every PoP message (type tag + ids).
    pub framing_bits: u64,
    /// Next-responder selection strategy (ablation knob).
    pub path_selection: PathSelection,
    /// When true, PoP traffic is accounted along shortest physical paths
    /// (every relay hop pays tx + rx) instead of endpoint-to-endpoint. This
    /// models the paper's Sec. VII observation that header transfers cross
    /// the physical network; comparing both modes quantifies what the
    /// proposed shortest-path routing would save.
    pub multihop_accounting: bool,
    /// Whether Trust Path Selection (Algorithm 2) uses the header cache.
    /// Disabling isolates TPS's contribution (ablation knob).
    pub enable_tps: bool,
    /// Hard budget of `REQ_CHILD` messages per PoP run. Algorithm 3 bounds
    /// its own message count on benign runs (Prop. 6), but a large adversary
    /// population can force long rollback cascades; real deployments stop
    /// paying after a deadline. Exceeding the budget aborts the run with
    /// `PathExhausted`.
    pub max_requests: u64,
    /// Blacklist penalty parameters.
    pub blacklist: BlacklistConfig,
}

impl ProtocolConfig {
    /// The paper's evaluation parameters with `C = 0.5` MB and `γ = 16`
    /// (one-third of 50 nodes, the PBFT-equivalent tolerance).
    pub fn paper_default() -> Self {
        ProtocolConfig {
            version: 1,
            f_v: 32,
            f_t: 32,
            f_h: 256,
            f_n: 32,
            f_s: 256,
            body_bits: Bits::from_megabytes_f(0.5).bits(),
            difficulty_bits: 8,
            gamma: 16,
            verify_signatures: true,
            merkle_chunk_bytes: 64,
            framing_bits: 64,
            path_selection: PathSelection::Weighted,
            multihop_accounting: false,
            enable_tps: true,
            max_requests: 5_000,
            blacklist: BlacklistConfig::default(),
        }
    }

    /// A configuration for fast unit tests: tiny body, no puzzle work.
    pub fn test_default() -> Self {
        ProtocolConfig {
            body_bits: Bits::from_bytes(256).bits(),
            difficulty_bits: 0,
            gamma: 2,
            ..Self::paper_default()
        }
    }

    /// Sets the body size `C`.
    #[must_use]
    pub fn with_body_bits(mut self, bits: u64) -> Self {
        self.body_bits = bits;
        self
    }

    /// Sets the consensus margin `γ`.
    #[must_use]
    pub fn with_gamma(mut self, gamma: usize) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the puzzle difficulty.
    #[must_use]
    pub fn with_difficulty(mut self, bits: u8) -> Self {
        self.difficulty_bits = bits;
        self
    }

    /// The constant header cost `f_c` of Eq. (3), in bits.
    pub fn const_header_bits(&self) -> u64 {
        self.f_v + self.f_t + self.f_h + self.f_n + self.f_s
    }

    /// Logical header size for a header carrying `digest_entries` digests
    /// (Eq. (2) without the body term).
    pub fn header_bits(&self, digest_entries: usize) -> Bits {
        Bits::from_bits(self.const_header_bits() + self.f_h * digest_entries as u64)
    }

    /// Logical size of a full data block (Eq. (2)).
    pub fn block_bits(&self, digest_entries: usize) -> Bits {
        self.header_bits(digest_entries) + Bits::from_bits(self.body_bits)
    }

    /// Size of a digest broadcast message (one hash on the wire).
    pub fn digest_message_bits(&self) -> Bits {
        Bits::from_bits(self.f_h + self.framing_bits)
    }

    /// Size of a `REQ_CHILD` message (carries `H(b^h_v)`).
    pub fn req_child_bits(&self) -> Bits {
        Bits::from_bits(self.f_h + self.framing_bits)
    }

    /// Size of a `RPY_CHILD` message carrying a header with
    /// `digest_entries` digests.
    pub fn rpy_child_bits(&self, digest_entries: usize) -> Bits {
        self.header_bits(digest_entries) + Bits::from_bits(self.framing_bits)
    }

    /// Size of a cooperative "no child stored" reply (a NACK).
    pub fn nack_bits(&self) -> Bits {
        Bits::from_bits(self.framing_bits)
    }

    /// Size of a block-fetch request.
    pub fn fetch_request_bits(&self) -> Bits {
        Bits::from_bits(self.f_h + self.framing_bits)
    }

    /// Size of a block-fetch response (full block).
    pub fn block_response_bits(&self, digest_entries: usize) -> Bits {
        self.block_bits(digest_entries) + Bits::from_bits(self.framing_bits)
    }

    /// Consensus threshold: number of distinct path nodes required,
    /// `γ + 1`.
    pub fn consensus_threshold(&self) -> usize {
        self.gamma + 1
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_fig2() {
        let cfg = ProtocolConfig::paper_default();
        // Fig. 2: Version/Time/Nonce 32 bits, Root/Signature 256 bits.
        assert_eq!(cfg.f_v, 32);
        assert_eq!(cfg.f_t, 32);
        assert_eq!(cfg.f_n, 32);
        assert_eq!(cfg.f_h, 256);
        assert_eq!(cfg.f_s, 256);
        assert_eq!(cfg.const_header_bits(), 608);
    }

    #[test]
    fn block_size_follows_eq2() {
        let cfg = ProtocolConfig::paper_default().with_body_bits(8_000_000);
        // n = 3 neighbors → n + 1 = 4 digest entries.
        let expect = 608 + 256 * 4 + 8_000_000;
        assert_eq!(cfg.block_bits(4).bits(), expect);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = ProtocolConfig::paper_default()
            .with_gamma(24)
            .with_difficulty(4)
            .with_body_bits(100);
        assert_eq!(cfg.gamma, 24);
        assert_eq!(cfg.consensus_threshold(), 25);
        assert_eq!(cfg.difficulty_bits, 4);
        assert_eq!(cfg.body_bits, 100);
    }

    #[test]
    fn message_sizes_scale_with_digest_entries() {
        let cfg = ProtocolConfig::paper_default();
        assert!(cfg.rpy_child_bits(5) > cfg.rpy_child_bits(2));
        assert_eq!(cfg.req_child_bits(), cfg.digest_message_bits());
        assert!(cfg.block_response_bits(2).bits() > cfg.body_bits);
    }
}
