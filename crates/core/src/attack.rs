//! Adversarial node behaviours (Sec. IV-D).
//!
//! The paper analyses 2LDAG against majority, Sybil, man-in-the-middle, DoS,
//! and selfish attacks. In the simulator an attack is a per-node [`Behavior`]
//! that perturbs the responder/generation code paths; the network layer
//! applies it when other nodes interact with the attacker.

use std::fmt;

/// How a node behaves when participating in the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Never answers `REQ_CHILD` or block fetches (models crashed, jammed,
    /// or packet-dropping nodes; the validator sees a timeout).
    Unresponsive,
    /// Answers with a header whose digest entry for the requested parent is
    /// corrupted, so the validator's `GetDigest` consistency check fails
    /// (Algorithm 3, line 21).
    CorruptReply,
    /// Tampers with its own stored block bodies after generation. Serving a
    /// tampered block fails the Merkle-root check; its headers remain
    /// internally consistent so only full-block fetches detect it.
    CorruptStore,
    /// Generates blocks normally but refuses to serve replies — the selfish
    /// node of Sec. IV-D.6 that the blacklist punishes.
    Selfish,
    /// Replies to `REQ_CHILD` claiming a forged identity (a Sybil persona).
    /// Validators detect it because the signature does not verify under the
    /// registered key of the claimed node id.
    SybilImpersonator {
        /// The honest node id the attacker claims to be.
        claimed: u32,
    },
    /// Attempts to flood neighbors with digests faster than the difficulty
    /// puzzle allows (`rate_multiplier` digests per slot). Receivers detect
    /// the implausible rate and ban the peer (Sec. IV-D.5).
    Flooder {
        /// Digest messages attempted per slot.
        rate_multiplier: u32,
    },
    /// Generates its canonical block but *additionally* mints a second,
    /// conflicting block for the same slot and gossips its digest — two
    /// distinct histories offered to different neighbors. Honest receivers
    /// detect the conflicting `SlotDigest` pair and discard both until a
    /// direct pull resolves the slot.
    Equivocate,
    /// Gossips corrupted `SlotDigest`s (valid-looking but wrong bytes) while
    /// keeping its local chain canonical, so forensics can name the liar by
    /// pulling the slot directly.
    DigestLie,
    /// Grows a parasite side-chain: alongside the canonical chain it keeps
    /// re-advertising conflicting digests for stale slots, trying to get
    /// honest nodes to reference abandoned parents (Cullen et al.,
    /// arXiv:1904.00996).
    Parasite,
    /// Flaps membership as an attack: goes silent until evicted, then spams
    /// `JoinAnnounce` rejoin attempts to churn the roster without ever
    /// contributing blocks.
    Flapper,
}

impl Behavior {
    /// Whether this behaviour answers protocol requests honestly. The gossip
    /// attackers (equivocator, digest-liar, parasite) serve pulls from their
    /// canonical chain — their lies live purely in the push path, which is
    /// what lets honest nodes converge by pulling the slot directly.
    pub fn responds_honestly(&self) -> bool {
        matches!(
            self,
            Behavior::Honest
                | Behavior::Flooder { .. }
                | Behavior::Equivocate
                | Behavior::DigestLie
                | Behavior::Parasite
        )
    }

    /// Whether the node refuses to respond at all.
    pub fn is_silent(&self) -> bool {
        matches!(
            self,
            Behavior::Unresponsive | Behavior::Selfish | Behavior::Flapper
        )
    }

    /// Whether the node is malicious in the paper's sense (counts toward the
    /// malicious-node budget `γ` in the experiments).
    pub fn is_malicious(&self) -> bool {
        !matches!(self, Behavior::Honest)
    }

    /// Parses a behaviour keyword as used by `tldag node --behavior` and the
    /// `tldag cluster --adversary` schedule. Parameterised variants take the
    /// parameter after the keyword: `sybil:N` / `flooder:N` are not accepted
    /// here because `:` separates kind from count in adversary schedules;
    /// they remain engine-only placements.
    pub fn parse_kind(kind: &str) -> Option<Behavior> {
        match kind {
            "honest" => Some(Behavior::Honest),
            "unresponsive" => Some(Behavior::Unresponsive),
            "corrupt-reply" => Some(Behavior::CorruptReply),
            "corrupt-store" => Some(Behavior::CorruptStore),
            "selfish" => Some(Behavior::Selfish),
            "equivocate" => Some(Behavior::Equivocate),
            "digest-lie" => Some(Behavior::DigestLie),
            "parasite" => Some(Behavior::Parasite),
            "flapper" => Some(Behavior::Flapper),
            _ => None,
        }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Honest => write!(f, "honest"),
            Behavior::Unresponsive => write!(f, "unresponsive"),
            Behavior::CorruptReply => write!(f, "corrupt-reply"),
            Behavior::CorruptStore => write!(f, "corrupt-store"),
            Behavior::Selfish => write!(f, "selfish"),
            Behavior::SybilImpersonator { claimed } => write!(f, "sybil(claims n{claimed})"),
            Behavior::Flooder { rate_multiplier } => write!(f, "flooder(x{rate_multiplier})"),
            Behavior::Equivocate => write!(f, "equivocate"),
            Behavior::DigestLie => write!(f, "digest-lie"),
            Behavior::Parasite => write!(f, "parasite"),
            Behavior::Flapper => write!(f, "flapper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(Behavior::default(), Behavior::Honest);
        assert!(!Behavior::Honest.is_malicious());
        assert!(Behavior::Honest.responds_honestly());
    }

    #[test]
    fn silence_classification() {
        assert!(Behavior::Unresponsive.is_silent());
        assert!(Behavior::Selfish.is_silent());
        assert!(Behavior::Flapper.is_silent());
        assert!(!Behavior::CorruptReply.is_silent());
        assert!(!Behavior::Equivocate.is_silent());
    }

    #[test]
    fn malicious_classification() {
        for b in [
            Behavior::Unresponsive,
            Behavior::CorruptReply,
            Behavior::CorruptStore,
            Behavior::Selfish,
            Behavior::SybilImpersonator { claimed: 0 },
            Behavior::Flooder { rate_multiplier: 8 },
            Behavior::Equivocate,
            Behavior::DigestLie,
            Behavior::Parasite,
            Behavior::Flapper,
        ] {
            assert!(b.is_malicious(), "{b}");
        }
    }

    #[test]
    fn gossip_attackers_serve_pulls_honestly() {
        for b in [
            Behavior::Equivocate,
            Behavior::DigestLie,
            Behavior::Parasite,
        ] {
            assert!(b.responds_honestly(), "{b}");
            assert!(!b.is_silent(), "{b}");
        }
        assert!(!Behavior::Flapper.responds_honestly());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Behavior::Honest.to_string(), "honest");
        assert_eq!(
            Behavior::SybilImpersonator { claimed: 3 }.to_string(),
            "sybil(claims n3)"
        );
        assert_eq!(Behavior::Equivocate.to_string(), "equivocate");
        assert_eq!(Behavior::Flapper.to_string(), "flapper");
    }

    #[test]
    fn parse_kind_round_trips_keyword_variants() {
        for kind in [
            "honest",
            "unresponsive",
            "corrupt-reply",
            "corrupt-store",
            "selfish",
            "equivocate",
            "digest-lie",
            "parasite",
            "flapper",
        ] {
            let parsed = Behavior::parse_kind(kind).expect(kind);
            assert_eq!(parsed.to_string(), kind);
        }
        assert_eq!(Behavior::parse_kind("sybil"), None);
        assert_eq!(Behavior::parse_kind(""), None);
    }
}
