//! Adversarial node behaviours (Sec. IV-D).
//!
//! The paper analyses 2LDAG against majority, Sybil, man-in-the-middle, DoS,
//! and selfish attacks. In the simulator an attack is a per-node [`Behavior`]
//! that perturbs the responder/generation code paths; the network layer
//! applies it when other nodes interact with the attacker.

use std::fmt;

/// How a node behaves when participating in the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Never answers `REQ_CHILD` or block fetches (models crashed, jammed,
    /// or packet-dropping nodes; the validator sees a timeout).
    Unresponsive,
    /// Answers with a header whose digest entry for the requested parent is
    /// corrupted, so the validator's `GetDigest` consistency check fails
    /// (Algorithm 3, line 21).
    CorruptReply,
    /// Tampers with its own stored block bodies after generation. Serving a
    /// tampered block fails the Merkle-root check; its headers remain
    /// internally consistent so only full-block fetches detect it.
    CorruptStore,
    /// Generates blocks normally but refuses to serve replies — the selfish
    /// node of Sec. IV-D.6 that the blacklist punishes.
    Selfish,
    /// Replies to `REQ_CHILD` claiming a forged identity (a Sybil persona).
    /// Validators detect it because the signature does not verify under the
    /// registered key of the claimed node id.
    SybilImpersonator {
        /// The honest node id the attacker claims to be.
        claimed: u32,
    },
    /// Attempts to flood neighbors with digests faster than the difficulty
    /// puzzle allows (`rate_multiplier` digests per slot). Receivers detect
    /// the implausible rate and ban the peer (Sec. IV-D.5).
    Flooder {
        /// Digest messages attempted per slot.
        rate_multiplier: u32,
    },
}

impl Behavior {
    /// Whether this behaviour answers protocol requests honestly.
    pub fn responds_honestly(&self) -> bool {
        matches!(self, Behavior::Honest | Behavior::Flooder { .. })
    }

    /// Whether the node refuses to respond at all.
    pub fn is_silent(&self) -> bool {
        matches!(self, Behavior::Unresponsive | Behavior::Selfish)
    }

    /// Whether the node is malicious in the paper's sense (counts toward the
    /// malicious-node budget `γ` in the experiments).
    pub fn is_malicious(&self) -> bool {
        !matches!(self, Behavior::Honest)
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Honest => write!(f, "honest"),
            Behavior::Unresponsive => write!(f, "unresponsive"),
            Behavior::CorruptReply => write!(f, "corrupt-reply"),
            Behavior::CorruptStore => write!(f, "corrupt-store"),
            Behavior::Selfish => write!(f, "selfish"),
            Behavior::SybilImpersonator { claimed } => write!(f, "sybil(claims n{claimed})"),
            Behavior::Flooder { rate_multiplier } => write!(f, "flooder(x{rate_multiplier})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(Behavior::default(), Behavior::Honest);
        assert!(!Behavior::Honest.is_malicious());
        assert!(Behavior::Honest.responds_honestly());
    }

    #[test]
    fn silence_classification() {
        assert!(Behavior::Unresponsive.is_silent());
        assert!(Behavior::Selfish.is_silent());
        assert!(!Behavior::CorruptReply.is_silent());
    }

    #[test]
    fn malicious_classification() {
        for b in [
            Behavior::Unresponsive,
            Behavior::CorruptReply,
            Behavior::CorruptStore,
            Behavior::Selfish,
            Behavior::SybilImpersonator { claimed: 0 },
            Behavior::Flooder { rate_multiplier: 8 },
        ] {
            assert!(b.is_malicious(), "{b}");
        }
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Behavior::Honest.to_string(), "honest");
        assert_eq!(
            Behavior::SybilImpersonator { claimed: 3 }.to_string(),
            "sybil(claims n3)"
        );
    }
}
