//! Blacklist penalty mechanism for selfish/unresponsive peers (Sec. IV-D.6).
//!
//! *"Each node maintains a blacklist consisting of nodes that do not reply to
//! a REQ_CHILD message, either due to selfish behavior, disconnection or
//! malicious intent. [...] The nodes in the blacklist will be removed after
//! it helps transmit a certain number of blocks."*
//!
//! A peer is banned after `ban_after_failures` consecutive failures and
//! paroled after delivering `parole_after_services` valid digests (its way of
//! "helping transmit blocks" again).

use crate::config::BlacklistConfig;
use std::collections::HashMap;
use tldag_sim::NodeId;

#[derive(Clone, Copy, Debug, Default)]
struct PeerRecord {
    consecutive_failures: u32,
    services_while_banned: u32,
    banned: bool,
}

/// Per-node blacklist state.
#[derive(Clone, Debug)]
pub struct Blacklist {
    config: BlacklistConfig,
    peers: HashMap<NodeId, PeerRecord>,
}

impl Blacklist {
    /// Creates an empty blacklist with the given policy.
    pub fn new(config: BlacklistConfig) -> Self {
        Blacklist {
            config,
            peers: HashMap::new(),
        }
    }

    /// Whether `peer` is currently banned.
    pub fn is_banned(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|r| r.banned)
    }

    /// Records a failed interaction (timeout or invalid `RPY_CHILD`).
    pub fn record_failure(&mut self, peer: NodeId) {
        let record = self.peers.entry(peer).or_default();
        record.consecutive_failures += 1;
        if record.consecutive_failures >= self.config.ban_after_failures {
            if !record.banned {
                record.services_while_banned = 0;
            }
            record.banned = true;
        }
    }

    /// Records a successful protocol interaction (valid reply), clearing the
    /// failure streak.
    pub fn record_success(&mut self, peer: NodeId) {
        if let Some(record) = self.peers.get_mut(&peer) {
            record.consecutive_failures = 0;
        }
    }

    /// Records that `peer` helped transmit a block (delivered a valid
    /// digest). Banned peers accumulate parole credit and are released once
    /// they reach the configured service count.
    pub fn record_service(&mut self, peer: NodeId) {
        if let Some(record) = self.peers.get_mut(&peer) {
            if record.banned {
                record.services_while_banned += 1;
                if record.services_while_banned >= self.config.parole_after_services {
                    record.banned = false;
                    record.consecutive_failures = 0;
                    record.services_while_banned = 0;
                }
            }
        }
    }

    /// Ids of all currently banned peers.
    pub fn banned_peers(&self) -> Vec<NodeId> {
        let mut banned: Vec<NodeId> = self
            .peers
            .iter()
            .filter_map(|(&id, r)| r.banned.then_some(id))
            .collect();
        banned.sort_unstable();
        banned
    }

    /// Number of currently banned peers.
    pub fn banned_count(&self) -> usize {
        self.peers.values().filter(|r| r.banned).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(ban_after: u32, parole_after: u32) -> BlacklistConfig {
        BlacklistConfig {
            ban_after_failures: ban_after,
            parole_after_services: parole_after,
        }
    }

    #[test]
    fn bans_after_threshold() {
        let mut bl = Blacklist::new(policy(2, 4));
        let peer = NodeId(1);
        bl.record_failure(peer);
        assert!(!bl.is_banned(peer));
        bl.record_failure(peer);
        assert!(bl.is_banned(peer));
        assert_eq!(bl.banned_peers(), vec![peer]);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut bl = Blacklist::new(policy(2, 4));
        let peer = NodeId(2);
        bl.record_failure(peer);
        bl.record_success(peer);
        bl.record_failure(peer);
        assert!(!bl.is_banned(peer), "streak was broken");
    }

    #[test]
    fn parole_after_services() {
        let mut bl = Blacklist::new(policy(1, 3));
        let peer = NodeId(3);
        bl.record_failure(peer);
        assert!(bl.is_banned(peer));
        bl.record_service(peer);
        bl.record_service(peer);
        assert!(bl.is_banned(peer), "needs 3 services");
        bl.record_service(peer);
        assert!(!bl.is_banned(peer), "paroled");
        assert_eq!(bl.banned_count(), 0);
    }

    #[test]
    fn services_only_count_while_banned() {
        let mut bl = Blacklist::new(policy(1, 2));
        let peer = NodeId(4);
        bl.record_service(peer); // not tracked yet, no-op
        bl.record_failure(peer);
        assert!(bl.is_banned(peer));
        bl.record_service(peer);
        bl.record_service(peer);
        assert!(!bl.is_banned(peer));
    }

    #[test]
    fn reban_after_parole_requires_fresh_services() {
        let mut bl = Blacklist::new(policy(1, 1));
        let peer = NodeId(5);
        bl.record_failure(peer);
        bl.record_service(peer);
        assert!(!bl.is_banned(peer));
        bl.record_failure(peer);
        assert!(bl.is_banned(peer));
        bl.record_service(peer);
        assert!(!bl.is_banned(peer));
    }

    #[test]
    fn independent_peers() {
        let mut bl = Blacklist::new(policy(1, 1));
        bl.record_failure(NodeId(1));
        assert!(bl.is_banned(NodeId(1)));
        assert!(!bl.is_banned(NodeId(2)));
        assert_eq!(bl.banned_count(), 1);
    }
}
