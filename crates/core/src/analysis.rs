//! Analytic bounds from Sec. V (Propositions 1–6), as checkable functions.
//!
//! The experiments assert simulated runs against these bounds; the bench
//! harness (`ablation_bounds`) sweeps parameters and reports measured vs
//! analytic values side by side.

use crate::config::ProtocolConfig;
use tldag_sim::engine::{GenerationSchedule, Slot};
use tldag_sim::{Bits, NodeId};

/// Proposition 1: total number of data blocks at time `t` is
/// `Σ_j ⌊t·r_j / C⌋`. With slotted generation this is the sum of per-node
/// generation-slot counts in `0..=t`.
pub fn prop1_total_blocks(schedule: &GenerationSchedule, t: Slot) -> u64 {
    (0..schedule.len() as u32)
        .map(|i| schedule.blocks_by(NodeId(i), t))
        .sum()
}

/// Proposition 2: upper bound on the trust cache size `|H_i|` at time `t`:
/// `t (f_c + f_H |V|) / C · Σ_{j≠i} r_j` bits — every header of every other
/// node, each counted at the maximal header size `f_c + f_H |V|`.
pub fn prop2_trust_cache_bound(
    cfg: &ProtocolConfig,
    schedule: &GenerationSchedule,
    node: NodeId,
    t: Slot,
    network_size: usize,
) -> Bits {
    let max_header = cfg.const_header_bits() + cfg.f_h * network_size as u64;
    let other_blocks: u64 = (0..schedule.len() as u32)
        .filter(|&j| NodeId(j) != node)
        .map(|j| schedule.blocks_by(NodeId(j), t))
        .sum();
    Bits::from_bits(max_header * other_blocks)
}

/// Proposition 3: upper bound on total node storage (`S_i + H_i`) at time
/// `t`: `t·r_i + t (f_c + f_H |V|)/C · Σ_j r_j` bits. Expressed in slotted
/// form: own bodies plus a maximal header for **every** block in the network.
pub fn prop3_storage_bound(
    cfg: &ProtocolConfig,
    schedule: &GenerationSchedule,
    node: NodeId,
    t: Slot,
    network_size: usize,
) -> Bits {
    let own_blocks = schedule.blocks_by(node, t);
    let own_bodies = cfg.body_bits * own_blocks;
    let max_header = cfg.const_header_bits() + cfg.f_h * network_size as u64;
    let all_blocks = prop1_total_blocks(schedule, t);
    Bits::from_bits(own_bodies + max_header * all_blocks)
}

/// Proposition 4: a validator with an empty trust cache exchanges at least
/// `2(γ + 1)` messages to reach consensus.
pub fn prop4_message_lower_bound(gamma: usize) -> u64 {
    2 * (gamma as u64 + 1)
}

/// Proposition 5: the number of blocks inside a micro-loop traversing the
/// node set `M` is at most `Σ_{i∈M} ⌊r_i / min_{j∉M} r_j⌋`. With slotted
/// rates `r = 1/period`, the ratio `r_i / r_min` equals
/// `max_period_outside / period_i`.
pub fn prop5_microloop_bound(
    schedule: &GenerationSchedule,
    loop_nodes: &[NodeId],
    network_size: usize,
) -> u64 {
    let outside_max_period = (0..network_size as u32)
        .map(NodeId)
        .filter(|id| !loop_nodes.contains(id))
        .map(|id| schedule.period(id))
        .max()
        .unwrap_or(1);
    loop_nodes
        .iter()
        .map(|&id| outside_max_period / schedule.period(id))
        .sum()
}

/// Proposition 6: upper bound on the total messages a validator exchanges,
/// `(|V| + γ)(Σ_{j=1}^{γ} r_j / r_|V| + γ + 1)`, with rates sorted in
/// descending order.
pub fn prop6_message_upper_bound(
    schedule: &GenerationSchedule,
    gamma: usize,
    network_size: usize,
) -> u64 {
    let mut rates: Vec<f64> = (0..network_size as u32)
        .map(|i| schedule.rate(NodeId(i)))
        .collect();
    rates.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
    let r_min = *rates.last().expect("non-empty network");
    let ratio_sum: f64 = rates.iter().take(gamma).map(|r| r / r_min).sum();
    let path_bound = ratio_sum + gamma as f64 + 1.0;
    ((network_size as f64 + gamma as f64) * path_bound).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop1_counts_uniform_generation() {
        let sched = GenerationSchedule::uniform(10);
        // Slots 0..=4 → 5 blocks per node.
        assert_eq!(prop1_total_blocks(&sched, 4), 50);
    }

    #[test]
    fn prop1_counts_mixed_periods() {
        let sched = GenerationSchedule::from_periods(vec![1, 2]);
        // Node 0: slots 0..=5 → 6 blocks; node 1 (period 2): slots 0,2,4 → 3.
        assert_eq!(prop1_total_blocks(&sched, 5), 9);
    }

    #[test]
    fn prop2_bound_scales_with_network_size() {
        let cfg = ProtocolConfig::paper_default();
        let sched = GenerationSchedule::uniform(10);
        let small = prop2_trust_cache_bound(&cfg, &sched, NodeId(0), 10, 10);
        let large = prop2_trust_cache_bound(&cfg, &sched, NodeId(0), 10, 50);
        assert!(large > small);
    }

    #[test]
    fn prop3_dominates_own_chain() {
        let cfg = ProtocolConfig::paper_default();
        let sched = GenerationSchedule::uniform(5);
        let bound = prop3_storage_bound(&cfg, &sched, NodeId(0), 9, 5);
        // 10 own blocks of C bits each is a strict lower bound.
        assert!(bound.bits() > cfg.body_bits * 10);
    }

    #[test]
    fn prop4_matches_paper_expression() {
        assert_eq!(prop4_message_lower_bound(16), 34);
        assert_eq!(prop4_message_lower_bound(24), 50);
    }

    #[test]
    fn prop5_fig6_example() {
        // Fig. 6: B (and A) generate every slot, C every ~5 slots. The
        // micro-loop set M = {A, B}; slowest outside rate = C's.
        let sched = GenerationSchedule::from_periods(vec![1, 1, 5]);
        let bound = prop5_microloop_bound(&sched, &[NodeId(0), NodeId(1)], 3);
        // Each of A, B may contribute ⌊5/1⌋ = 5 blocks.
        assert_eq!(bound, 10);
    }

    #[test]
    fn prop6_grows_with_gamma() {
        let sched = GenerationSchedule::uniform(50);
        let small = prop6_message_upper_bound(&sched, 10, 50);
        let large = prop6_message_upper_bound(&sched, 24, 50);
        assert!(large > small);
        // Uniform rates: ratio sum = γ, so bound = (|V|+γ)(2γ+1).
        assert_eq!(small, (50 + 10) * (2 * 10 + 1));
    }
}
