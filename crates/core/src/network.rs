//! The slotted 2LDAG network simulation: nodes + topology + accounting.
//!
//! [`TldagNetwork`] orchestrates the paper's evaluation loop (Sec. VI):
//! per slot, every scheduled node generates a block and broadcasts its digest
//! to its neighbors (DAG construction), then acts as a validator and verifies
//! one previously generated block via PoP (consensus). Storage and
//! communication are metered with the paper's logical sizes.
//!
//! ## The sharded slot engine
//!
//! DAG ledgers admit leaderless, parallel progress, and the slot loop
//! exploits exactly that: nodes are partitioned into contiguous shards
//! ([`Sharding`]) and each slot runs as a sequence of shard-parallel phases
//! with deterministic cross-shard exchanges at the phase boundaries:
//!
//! 1. **Generate** — every scheduled node mines, signs, and appends its
//!    block (each worker owns a disjoint `&mut` slice of the node array).
//! 2. **Exchange** — new digests are routed into per-receiver inboxes in
//!    sender-id order, and DAG-construction traffic is accounted.
//! 3. **Gossip** — each shard drains its nodes' inboxes (`A_i` updates,
//!    flood detection).
//! 4. **Verify** — generating honest nodes run PoP shard-parallel: peer
//!    chains are read through shared references, each validator mutates
//!    only its own trust cache/blacklist (taken out of the array for the
//!    phase), and traffic lands in per-shard accounting deltas merged in
//!    shard order.
//! 5. **Commit** — backends sync per [`SyncPolicy`]; with the group-commit
//!    shard log in `tldag-storage` this is one fsync per shard per slot.
//!
//! Results are **byte-identical for every thread count** under a fixed
//! seed: all per-node randomness (payloads, target choice, PoP tie-breaks,
//! link faults) is derived from `(seed, slot, node)` instead of a shared
//! sequential stream, and every merge happens in node-id order while the
//! remaining cross-shard sums (accounting) are commutative.

use crate::attack::Behavior;
use crate::blacklist::Blacklist;
use crate::block::BlockId;
use crate::config::ProtocolConfig;
use crate::error::TldagError;
use crate::node::{BlockFetch, ChildServe, LedgerNode};
use crate::pop::messages::{ChildReply, ChildResponse, FetchResponse, PopTransport};
use crate::pop::validator::{PopReport, Validator};
use crate::store::{BackendFactory, MemoryBackendFactory, SyncPolicy, TrustCache};
use crate::workload::{sensor_payload, VerificationWorkload};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;
use tldag_crypto::sha256::sha256;
use tldag_crypto::Digest;
use tldag_obs::{Phase, PhaseTimings};
use tldag_sim::bus::{Accounting, TrafficClass};
use tldag_sim::engine::{GenerationSchedule, Sharding, Slot};
use tldag_sim::fault::{FaultPlan, LinkFaults};
use tldag_sim::trace::{Trace, TraceKind};
use tldag_sim::{Bits, DetRng, NodeId, Topology};

/// Purpose labels for the per-(seed, slot, node) derived RNG streams. Keeping
/// the purposes distinct means adding draws to one phase never perturbs
/// another — the same property [`DetRng::fork`] gives subsystems.
///
/// Public because a *deployed* node (`tldag-net`) must reproduce the exact
/// draws of the in-memory engine to reach digest parity with it on a shared
/// seed.
pub mod stream {
    /// Sensor payload + flooder digests during generation.
    pub const GENERATE: u64 = 1;
    /// Verification-target choice.
    pub const TARGET: u64 = 2;
    /// PoP next-hop tie-breaks.
    pub const POP: u64 = 3;
    /// Link-fault decisions during one validator's PoP exchanges.
    pub const LINKS: u64 = 4;
    /// Join-site placement for dynamic membership: where a node joining at
    /// a given slot appears in the deployment area. Drawn from the joiner's
    /// derived stream so a wire deployment and the in-memory engine agree
    /// on the new node's radio links without exchanging coordinates.
    pub const MEMBERSHIP: u64 = 5;
}

/// The RNG for `purpose` at `(seed, slot, node)` — the derivation that makes
/// the slot loop independent of execution order, and therefore of the thread
/// count (and of whether the node runs in the simulator or over a socket).
pub fn derived_rng(seed: u64, purpose: u64, slot: Slot, node: NodeId) -> DetRng {
    DetRng::seed_from(seed)
        .fork(slot)
        .fork((u64::from(node.0) << 3) | purpose)
}

/// Runs `worker` over the chunks of `items` described by `ranges`: inline
/// when there is at most one chunk, on scoped worker threads otherwise.
/// Results are returned in range order, so merges stay deterministic.
fn run_sharded<I, T, F>(items: &mut [I], ranges: &[Range<usize>], worker: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(Range<usize>, &mut [I]) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .map(|r| worker(r.clone(), &mut items[r.clone()]))
            .collect();
    }
    let mut chunks: Vec<(Range<usize>, &mut [I])> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    let mut consumed = 0;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.end - consumed);
        chunks.push((r.clone(), head));
        rest = tail;
        consumed = r.end;
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(r, chunk)| scope.spawn(move || worker(r, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Transport over the simulated network: synchronous request/response with
/// behaviour-driven faults and byte accounting at both endpoints.
struct SimTransport<'a> {
    cfg: &'a ProtocolConfig,
    nodes: &'a [LedgerNode],
    accounting: &'a mut Accounting,
    /// Per-source BFS parents for multi-hop attribution (present only when
    /// `cfg.multihop_accounting`).
    routes: Option<&'a [Vec<Option<NodeId>>]>,
    /// Lossy-link model: drops requests/replies independently.
    links: &'a mut LinkFaults,
    /// Probes (measurement-only PoPs) leave the accounting untouched.
    meter: bool,
}

impl SimTransport<'_> {
    fn record(&mut self, from: NodeId, to: NodeId, size: Bits) {
        if !self.meter {
            return;
        }
        match self.routes {
            None => self
                .accounting
                .record(from, to, TrafficClass::Consensus, size),
            Some(routes) => {
                // Walk the shortest physical path from `to` back to `from`;
                // every hop costs the sender tx and the receiver rx.
                let parents = &routes[from.index()];
                let mut at = to;
                let mut guard = 0usize;
                while let Some(prev) = parents[at.index()] {
                    self.accounting
                        .record(prev, at, TrafficClass::Consensus, size);
                    at = prev;
                    guard += 1;
                    if guard > parents.len() {
                        break; // defensive: corrupt parent array
                    }
                }
                if at != from {
                    // Unreachable over the physical graph (e.g. the peer
                    // left): account the attempt at the sender only.
                    self.accounting
                        .record_tx_only(from, TrafficClass::Consensus, size);
                }
            }
        }
    }
}

impl PopTransport for SimTransport<'_> {
    fn fetch_block(
        &mut self,
        validator: NodeId,
        owner: NodeId,
        id: BlockId,
    ) -> Option<FetchResponse> {
        // The target block retrieval is application data traffic: the
        // validator would fetch the sensed data regardless of PoP. It is
        // accounted under `Other` so the "consensus" panels of Fig. 8 match
        // the paper's protocol-overhead definition (headers and digests
        // only); see DESIGN.md.
        if self.meter {
            self.accounting.record(
                validator,
                owner,
                TrafficClass::Other,
                self.cfg.fetch_request_bits(),
            );
        }
        if self.links.drops() {
            return None; // request lost in the air
        }
        let served = match self.nodes[owner.index()].serve_block(id) {
            BlockFetch::Unavailable => return None, // silent / never generated
            served => served,
        };
        if self.links.drops() {
            return None; // response lost
        }
        match served {
            BlockFetch::Served(block) => {
                if self.meter {
                    self.accounting.record(
                        owner,
                        validator,
                        TrafficClass::Other,
                        self.cfg.block_response_bits(block.header.digest_entries()),
                    );
                }
                Some(FetchResponse::Block(Box::new(block)))
            }
            BlockFetch::Pruned { retained_from } => {
                // Graceful miss: the owner compacted the block away. The
                // reply is nack-sized application traffic.
                if self.meter {
                    self.accounting.record(
                        owner,
                        validator,
                        TrafficClass::Other,
                        self.cfg.nack_bits(),
                    );
                }
                Some(FetchResponse::Pruned { retained_from })
            }
            BlockFetch::Unavailable => unreachable!("handled before the reply-loss check"),
        }
    }

    fn request_child(
        &mut self,
        validator: NodeId,
        responder: NodeId,
        target: Digest,
    ) -> Option<ChildResponse> {
        self.record(validator, responder, self.cfg.req_child_bits());
        if self.links.drops() {
            return None; // REQ_CHILD lost; validator times out after τ
        }
        let node = &self.nodes[responder.index()];
        if node.behavior().is_silent() {
            return None; // timeout after τ
        }
        if self.links.drops() {
            return None; // RPY_CHILD lost
        }
        match node.serve_child_request(&target) {
            None => None, // silent (already screened above; defensive)
            Some(ChildServe::NoChild) => {
                self.record(responder, validator, self.cfg.nack_bits());
                Some(ChildResponse::NoChild)
            }
            Some(ChildServe::Pruned) => {
                self.record(responder, validator, self.cfg.nack_bits());
                Some(ChildResponse::Pruned)
            }
            Some(ChildServe::Found(block_id, header)) => {
                let claimed_owner = match node.behavior() {
                    Behavior::SybilImpersonator { claimed } => NodeId(claimed),
                    _ => responder,
                };
                self.record(
                    responder,
                    validator,
                    self.cfg.rpy_child_bits(header.digest_entries()),
                );
                Some(ChildResponse::Found(ChildReply {
                    claimed_owner,
                    block_id,
                    header,
                }))
            }
        }
    }
}

/// Summary of one simulated slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotSummary {
    /// The slot that was executed.
    pub slot: Slot,
    /// Blocks generated in this slot.
    pub blocks_generated: usize,
    /// PoP runs attempted by generating nodes.
    pub pop_attempts: usize,
    /// PoP runs that reached consensus.
    pub pop_successes: usize,
}

/// The full 2LDAG network simulation.
///
/// # Example
///
/// ```
/// use tldag_core::network::TldagNetwork;
/// use tldag_core::config::ProtocolConfig;
/// use tldag_sim::topology::{Topology, TopologyConfig};
/// use tldag_sim::engine::GenerationSchedule;
/// use tldag_sim::DetRng;
///
/// let mut rng = DetRng::seed_from(1);
/// let topo = Topology::random_connected(&TopologyConfig::small(8), &mut rng);
/// let cfg = ProtocolConfig::test_default();
/// let schedule = GenerationSchedule::uniform(topo.len());
/// let mut net = TldagNetwork::new(cfg, topo, schedule, 1);
/// for _ in 0..3 {
///     net.step();
/// }
/// assert_eq!(net.slot(), 3);
/// assert!(net.total_blocks() >= 24);
/// ```
#[derive(Debug)]
pub struct TldagNetwork {
    cfg: ProtocolConfig,
    topology: Topology,
    nodes: Vec<LedgerNode>,
    schedule: GenerationSchedule,
    accounting: Accounting,
    /// The experiment seed; every per-(slot, node) stream derives from it.
    seed: u64,
    /// Sequential stream for out-of-loop draws (ad-hoc [`Self::run_pop`] /
    /// [`Self::choose_target`] calls from experiments).
    rng: DetRng,
    slot: Slot,
    /// Shard-parallel execution policy for the slot loop.
    sharding: Sharding,
    /// When appended blocks are forced onto stable storage.
    sync_policy: SyncPolicy,
    verification: VerificationWorkload,
    pop_attempts: u64,
    pop_successes: u64,
    /// Per-source shortest-path parents, rebuilt lazily when the topology
    /// changes; only populated under `cfg.multihop_accounting`.
    routes: Option<Vec<Vec<Option<NodeId>>>>,
    /// Nodes that left the network (they stop generating and serving).
    departed: Vec<bool>,
    /// Optional event trace (disabled by default).
    trace: Trace,
    /// Lossy-link model applied to PoP exchanges (perfect by default).
    links: LinkFaults,
    /// Provisions block backends for joining and restarting nodes.
    factory: Box<dyn BackendFactory>,
    /// Chain length each crashed node had when it died (guards restarts
    /// against forking a chain whose sequence numbers are already
    /// referenced network-wide).
    crashed_chain_len: Vec<Option<usize>>,
    /// Whether `H_i` is persisted through the factory at commit points and
    /// restored on `restart_node` (TPS resumes warm after a crash).
    persist_trust_cache: bool,
    /// Cache size at the last save, per node — skips no-op writes
    /// (`TrustCache` is insert-only, so a changed size ⇔ new entries).
    trust_saved_len: Vec<usize>,
    /// Wall-clock latency of each slot-loop phase (always on: recording is
    /// a handful of relaxed atomics per slot, and the timings never touch
    /// protocol randomness — digests are identical with or without a
    /// consumer). Behind an `Arc` so a metrics listener can snapshot it
    /// while the loop runs.
    phase_timings: Arc<PhaseTimings>,
}

impl TldagNetwork {
    /// Builds a network over `topology` with per-node state initialised and
    /// the paper's verification workload (`min_age = |V|`). Chains live in
    /// memory (the seed behaviour); use [`TldagNetwork::with_factory`] for a
    /// durable engine.
    pub fn new(
        cfg: ProtocolConfig,
        topology: Topology,
        schedule: GenerationSchedule,
        seed: u64,
    ) -> Self {
        Self::with_factory(
            cfg,
            topology,
            schedule,
            seed,
            Box::new(MemoryBackendFactory),
        )
    }

    /// Builds a network whose nodes store their chains in backends provided
    /// by `factory` (one backend per node, also used for joins and restarts).
    pub fn with_factory(
        cfg: ProtocolConfig,
        topology: Topology,
        schedule: GenerationSchedule,
        seed: u64,
        mut factory: Box<dyn BackendFactory>,
    ) -> Self {
        assert_eq!(
            schedule.len(),
            topology.len(),
            "schedule must cover every node"
        );
        let nodes: Vec<LedgerNode> = topology
            .node_ids()
            .map(|id| {
                LedgerNode::with_backend(
                    id,
                    topology.neighbors(id).to_vec(),
                    &cfg,
                    factory.create(id),
                )
            })
            .collect();
        let n = topology.len();
        let mut network = TldagNetwork {
            cfg,
            accounting: Accounting::new(n),
            seed,
            rng: DetRng::seed_from(seed),
            slot: 0,
            sharding: Sharding::single(),
            sync_policy: SyncPolicy::default(),
            verification: VerificationWorkload::paper_default(n),
            nodes,
            topology,
            schedule,
            pop_attempts: 0,
            pop_successes: 0,
            routes: None,
            departed: vec![false; n],
            trace: Trace::disabled(),
            links: LinkFaults::perfect(),
            factory,
            crashed_chain_len: vec![None; n],
            persist_trust_cache: false,
            trust_saved_len: vec![0; n],
            phase_timings: Arc::new(PhaseTimings::new()),
        };
        network.rebuild_routes();
        network
    }

    fn rebuild_routes(&mut self) {
        self.routes = self.cfg.multihop_accounting.then(|| {
            self.topology
                .node_ids()
                .map(|id| self.topology.shortest_path_parents(id))
                .collect()
        });
    }

    /// Replaces the verification workload policy.
    pub fn set_verification_workload(&mut self, workload: VerificationWorkload) {
        self.verification = workload;
    }

    /// Sets the shard-parallel execution policy. A fixed seed produces
    /// byte-identical chains, accounting, and PoP counters for **every**
    /// thread count — sharding changes wall-clock time, never results.
    pub fn set_sharding(&mut self, sharding: Sharding) {
        self.sharding = sharding;
    }

    /// The current sharding policy.
    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// Sets when appended blocks are forced onto stable storage (a no-op
    /// for volatile backends). Default: [`SyncPolicy::PerSlot`], the seed's
    /// slot-boundary commit point.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.sync_policy = policy;
    }

    /// The current sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Enables (or disables) trusted-header cache persistence: at every
    /// storage commit point each node's `H_i` is saved through the backend
    /// factory (codec-encoded, atomically replaced), and
    /// [`Self::restart_node`] restores it so TPS resumes warm instead of
    /// re-verifying paths from scratch. A no-op with volatile factories.
    pub fn set_persist_trust_cache(&mut self, on: bool) {
        self.persist_trust_cache = on;
    }

    /// Whether trust-cache persistence is enabled.
    pub fn persists_trust_cache(&self) -> bool {
        self.persist_trust_cache
    }

    /// Saves every live node's `H_i` that changed since its last save.
    /// Serial on purpose: the factory is a single object, and the writes are
    /// small (headers only).
    fn save_trust_caches(&mut self) -> Result<(), TldagError> {
        for node in &self.nodes {
            let idx = node.id().index();
            if self.departed[idx] {
                continue;
            }
            let len = node.trust_cache().len();
            if len == self.trust_saved_len[idx] {
                continue;
            }
            self.factory
                .save_trust_cache(node.id(), node.trust_cache())?;
            self.trust_saved_len[idx] = len;
        }
        Ok(())
    }

    /// Installs an event trace (use [`Trace::bounded`] to cap memory).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Installs a lossy-link model for PoP exchanges. Lost messages surface
    /// as timeouts; the protocol retries other responders, so moderate loss
    /// degrades cost, not integrity.
    pub fn set_link_faults(&mut self, links: LinkFaults) {
        self.links = links;
    }

    /// The event trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Per-phase wall-clock latency histograms of the slot loop
    /// (generate/exchange/gossip/verify/commit), cumulative over the run.
    /// Clone the `Arc` to watch them from another thread.
    pub fn phase_timings(&self) -> &Arc<PhaseTimings> {
        &self.phase_timings
    }

    /// Marks every node in `plan` as malicious with `behavior`.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan, behavior: Behavior) {
        for id in plan.malicious_ids() {
            self.nodes[id.index()].set_behavior(behavior);
        }
    }

    /// Sets one node's behaviour.
    pub fn set_behavior(&mut self, node: NodeId, behavior: Behavior) {
        self.nodes[node.index()].set_behavior(behavior);
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &LedgerNode {
        &self.nodes[id.index()]
    }

    /// All nodes (read-only), for analysis and the logical-DAG oracle.
    pub fn nodes(&self) -> &[LedgerNode] {
        &self.nodes
    }

    /// Communication accounting so far.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Next slot to execute.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Lifetime PoP attempt/success counters.
    pub fn pop_counters(&self) -> (u64, u64) {
        (self.pop_attempts, self.pop_successes)
    }

    /// Total blocks across all nodes.
    pub fn total_blocks(&self) -> usize {
        self.nodes.iter().map(|n| n.chain_len()).sum()
    }

    /// Per-node logical storage (`S_i + H_i`), the Fig. 7 quantity.
    pub fn storage_bits_per_node(&self) -> Vec<Bits> {
        self.nodes
            .iter()
            .map(|n| n.storage_bits(&self.cfg))
            .collect()
    }

    /// Mean per-node storage in megabytes.
    pub fn mean_storage_mb(&self) -> f64 {
        let per_node = self.storage_bits_per_node();
        if per_node.is_empty() {
            return 0.0;
        }
        per_node.iter().map(|b| b.as_megabytes()).sum::<f64>() / per_node.len() as f64
    }

    /// Executes one slot as a synchronous round, matching the paper's slotted
    /// model: every scheduled node generates its block **from the digests it
    /// held at slot start**, then all new digests are delivered, then the
    /// verification workload runs. Delivering after generation means every
    /// digest a node emits is seen — and referenced — by all its neighbors'
    /// next blocks, which is what links the whole DAG together.
    ///
    /// The slot runs shard-parallel under the configured [`Sharding`]; see
    /// the module docs for the phase structure and the determinism argument.
    pub fn step(&mut self) -> SlotSummary {
        self.try_step()
            .expect("storage backend failed during a slot")
    }

    /// Fallible form of [`Self::step`]: storage failures (disk full, I/O
    /// errors) surface as [`TldagError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// The first storage error raised while generating or syncing, reported
    /// in shard order. The slot is left partially applied: blocks appended
    /// before the error surfaced stay appended, and with `threads > 1` the
    /// *other* shards complete their phase before the error is returned — so
    /// the post-error chain state (unlike every successful run) depends on
    /// the thread count. Callers that need reproducible error states should
    /// run single-threaded; successful slots are byte-identical either way.
    pub fn try_step(&mut self) -> Result<SlotSummary, TldagError> {
        let slot = self.slot;
        let n = self.nodes.len();
        let ranges = self.sharding.chunk_ranges(n);
        let seed = self.seed;

        // --- Phase 1: block generation from slot-start state (Sec. III-D).
        // Each worker owns a disjoint slice of the node array; payloads and
        // flooder digests come from the node's derived stream.
        let phase_started = Instant::now();
        struct ShardGen {
            generated: Vec<NodeId>,
            outgoing: Vec<(NodeId, Digest)>,
        }
        let gen_results: Vec<Result<ShardGen, TldagError>> = {
            let cfg = &self.cfg;
            let schedule = &self.schedule;
            let departed = &self.departed;
            let per_append_sync = self.sync_policy.syncs_per_append();
            run_sharded(&mut self.nodes, &ranges, move |range, chunk| {
                let mut out = ShardGen {
                    generated: Vec::new(),
                    outgoing: Vec::new(),
                };
                for (offset, node) in chunk.iter_mut().enumerate() {
                    let id = NodeId((range.start + offset) as u32);
                    node.begin_slot();
                    if departed[id.index()] || !schedule.generates(id, slot) {
                        continue;
                    }
                    let mut rng = derived_rng(seed, stream::GENERATE, slot, id);
                    let payload = sensor_payload(&mut rng, id, slot);
                    let digest = node.generate_block(cfg, slot, payload)?.header_digest();
                    if per_append_sync {
                        node.store_mut().sync()?;
                    }
                    out.generated.push(id);
                    out.outgoing.push((id, digest));

                    // Flooders push extra (bogus) digests, which neighbors
                    // detect.
                    if let Behavior::Flooder { rate_multiplier } = node.behavior() {
                        for _ in 1..rate_multiplier {
                            let mut bytes = [0u8; 32];
                            for word in bytes.chunks_mut(8) {
                                word.copy_from_slice(&rng.next_u64().to_be_bytes());
                            }
                            out.outgoing.push((id, Digest::from_bytes(bytes)));
                        }
                    }
                }
                Ok(out)
            })
        };
        // Merging in shard order = node-id order (chunks are contiguous).
        let mut generated: Vec<NodeId> = Vec::new();
        let mut outgoing: Vec<(NodeId, Digest)> = Vec::new();
        for result in gen_results {
            let shard = result?;
            generated.extend(shard.generated);
            outgoing.extend(shard.outgoing);
        }
        if self.trace.is_enabled() {
            for &id in &generated {
                self.trace.record(
                    slot,
                    TraceKind::Generate,
                    format!(
                        "{id} generated block #{}",
                        self.nodes[id.index()].chain_len() - 1
                    ),
                );
            }
        }

        self.phase_timings
            .record(Phase::Generate, phase_started.elapsed());

        // --- Phase 2: deterministic cross-shard exchange. Digests are routed
        // into per-receiver inboxes in sender-id order and the DAG
        // construction traffic is accounted (cheap, serial).
        let phase_started = Instant::now();
        let mut inboxes: Vec<Vec<(NodeId, Digest)>> = vec![Vec::new(); n];
        for &(from, digest) in &outgoing {
            for &nb in self.topology.neighbors(from) {
                self.accounting.record(
                    from,
                    nb,
                    TrafficClass::DagConstruction,
                    self.cfg.digest_message_bits(),
                );
                inboxes[nb.index()].push((from, digest));
            }
        }

        self.phase_timings
            .record(Phase::Exchange, phase_started.elapsed());

        // --- Phase 3: gossip — each shard drains its nodes' inboxes.
        let phase_started = Instant::now();
        {
            let inboxes = &inboxes;
            run_sharded(&mut self.nodes, &ranges, |range, chunk| {
                for (offset, node) in chunk.iter_mut().enumerate() {
                    for &(from, digest) in &inboxes[range.start + offset] {
                        node.receive_digest(from, digest);
                    }
                }
            });
        }

        self.phase_timings
            .record(Phase::Gossip, phase_started.elapsed());

        // --- Phase 4: verification workload — each honest generator runs one
        // PoP. Validators read peer chains through shared references and
        // mutate only their own trust cache/blacklist (taken out of the node
        // array for the phase); traffic lands in per-shard accounting deltas.
        let phase_started = Instant::now();
        let validators: Vec<NodeId> = generated
            .iter()
            .copied()
            .filter(|v| !self.nodes[v.index()].behavior().is_malicious())
            .collect();
        let mut pop_attempts = 0usize;
        let mut pop_successes = 0usize;
        if !validators.is_empty() {
            let mut states: Vec<(TrustCache, Blacklist)> = validators
                .iter()
                .map(|v| {
                    let node = &mut self.nodes[v.index()];
                    (node.take_trust_cache(), node.take_blacklist(&self.cfg))
                })
                .collect();

            struct ShardPop {
                attempts: usize,
                successes: usize,
                accounting: Accounting,
                traced: Vec<(NodeId, BlockId, PopReport)>,
            }
            let v_ranges = self.sharding.chunk_ranges(validators.len());
            let pop_results: Vec<ShardPop> = {
                let cfg = &self.cfg;
                let topology = &self.topology;
                let nodes = &self.nodes;
                let departed = &self.departed;
                let routes = self.routes.as_deref();
                let links = &self.links;
                let verification = self.verification;
                let validators = &validators;
                let trace_enabled = self.trace.is_enabled();
                run_sharded(&mut states, &v_ranges, move |range, chunk| {
                    let mut out = ShardPop {
                        attempts: 0,
                        successes: 0,
                        accounting: Accounting::new(n),
                        traced: Vec::new(),
                    };
                    for (offset, (trust_cache, blacklist)) in chunk.iter_mut().enumerate() {
                        let validator = validators[range.start + offset];
                        let mut target_rng = derived_rng(seed, stream::TARGET, slot, validator);
                        let Some(target) = choose_target_from(
                            nodes,
                            departed,
                            verification,
                            slot,
                            validator,
                            &mut target_rng,
                        ) else {
                            continue;
                        };
                        out.attempts += 1;
                        let mut pop_rng = derived_rng(seed, stream::POP, slot, validator);
                        let mut links = links
                            .fork(slot.wrapping_mul(stream::LINKS << 32) ^ u64::from(validator.0));
                        let report = execute_pop(
                            cfg,
                            topology,
                            nodes,
                            routes,
                            &mut out.accounting,
                            &mut links,
                            validator,
                            target,
                            true,
                            trust_cache,
                            blacklist,
                            &mut pop_rng,
                        );
                        if report.is_success() {
                            out.successes += 1;
                        }
                        if trace_enabled {
                            out.traced.push((validator, target, report));
                        }
                    }
                    out
                })
            };

            for (&validator, (trust_cache, blacklist)) in validators.iter().zip(states) {
                let node = &mut self.nodes[validator.index()];
                node.restore_trust_cache(trust_cache);
                node.restore_blacklist(blacklist);
            }
            // Shard deltas merge in shard order; the counters are sums, so
            // the totals are order-independent anyway.
            for shard in pop_results {
                pop_attempts += shard.attempts;
                pop_successes += shard.successes;
                self.accounting.merge(&shard.accounting);
                for (validator, target, report) in shard.traced {
                    self.trace.record(
                        slot,
                        TraceKind::Pop,
                        format!(
                            "{validator} verified {target}: {:?} ({} distinct, {} msgs)",
                            report.outcome.as_ref().map(|_| "ok"),
                            report.distinct_nodes,
                            report.metrics.total_messages()
                        ),
                    );
                }
            }
        }
        self.pop_attempts += pop_attempts as u64;
        self.pop_successes += pop_successes as u64;
        self.phase_timings
            .record(Phase::Verify, phase_started.elapsed());

        // --- Phase 5: commit point. Under `PerSlot`/`Grouped(n)` durable
        // backends flush their tail so a crash loses at most the uncommitted
        // slots; group-commit backends collapse a whole shard into one fsync.
        // A no-op for the in-memory store.
        let phase_started = Instant::now();
        if self.sync_policy.syncs_at_slot_end(slot) {
            let sync_results: Vec<Result<(), TldagError>> =
                run_sharded(&mut self.nodes, &ranges, |_, chunk| {
                    for node in chunk.iter_mut() {
                        node.store_mut().sync()?;
                    }
                    Ok(())
                });
            for result in sync_results {
                result?;
            }
            if self.persist_trust_cache {
                self.save_trust_caches()?;
            }
        }

        self.phase_timings
            .record(Phase::Commit, phase_started.elapsed());

        self.slot += 1;
        Ok(SlotSummary {
            slot,
            blocks_generated: generated.len(),
            pop_attempts,
            pop_successes,
        })
    }

    /// Flushes every node's backend to stable storage, regardless of the
    /// sync policy. The clean-shutdown counterpart of a database `close()`:
    /// under [`SyncPolicy::Grouped`] the slots since the last group boundary
    /// are only staged in memory, and dropping the network would lose them
    /// — call this when a run ends and its chains must survive. A no-op
    /// per shard when nothing is staged (and always for volatile backends).
    ///
    /// # Errors
    ///
    /// The first storage error, in node order.
    pub fn sync_storage(&mut self) -> Result<(), TldagError> {
        for node in &mut self.nodes {
            node.store_mut().sync()?;
        }
        if self.persist_trust_cache {
            self.save_trust_caches()?;
        }
        Ok(())
    }

    /// Runs `n` slots, returning the last summary.
    pub fn run_slots(&mut self, n: u64) -> SlotSummary {
        self.try_run_slots(n)
            .expect("storage backend failed during a slot")
    }

    /// Fallible form of [`Self::run_slots`].
    ///
    /// # Errors
    ///
    /// Stops at the first storage error; completed slots remain applied.
    pub fn try_run_slots(&mut self, n: u64) -> Result<SlotSummary, TldagError> {
        let mut last = SlotSummary::default();
        for _ in 0..n {
            last = self.try_step()?;
        }
        Ok(last)
    }

    /// Chooses a verification target for `validator` under the current
    /// workload policy: a uniformly random qualifying block owned by another
    /// node. Draws from the network's sequential stream; the slot loop uses
    /// per-validator derived streams instead.
    pub fn choose_target(&mut self, validator: NodeId) -> Option<BlockId> {
        choose_target_from(
            &self.nodes,
            &self.departed,
            self.verification,
            self.slot,
            validator,
            &mut self.rng,
        )
    }

    /// A node joins the network at `position` with radio range `range_m`
    /// and the given generation `period` (dynamic membership, Sec. VII
    /// future work). Existing nodes in range learn the newcomer; it starts
    /// with an empty chain and generates from the next slot.
    pub fn node_joins(
        &mut self,
        position: tldag_sim::geometry::Point,
        range_m: f64,
        period: u64,
    ) -> NodeId {
        let id = self.topology.add_node(position, range_m);
        let neighbors = self.topology.neighbors(id).to_vec();
        for &nb in &neighbors {
            self.nodes[nb.index()].add_neighbor(id);
        }
        let backend = self.factory.create(id);
        self.nodes
            .push(LedgerNode::with_backend(id, neighbors, &self.cfg, backend));
        self.schedule.push(period, self.slot % period);
        self.accounting.grow();
        self.departed.push(false);
        self.crashed_chain_len.push(None);
        self.trust_saved_len.push(0);
        self.rebuild_routes();
        self.trace
            .record(self.slot, TraceKind::Membership, format!("{id} joined"));
        id
    }

    /// A node leaves the network: it stops generating and serving, and its
    /// radio links disappear. Its historical blocks stay referenced in the
    /// DAG (children at former neighbors), but the blocks themselves become
    /// unavailable — exactly what PoP's `BlockUnavailable` reports.
    pub fn node_leaves(&mut self, id: NodeId) {
        let former: Vec<NodeId> = self.topology.neighbors(id).to_vec();
        self.topology.isolate_node(id);
        for nb in former {
            self.nodes[nb.index()].remove_neighbor(id);
        }
        self.nodes[id.index()].remove_neighbor(id);
        for nb in self.nodes[id.index()].neighbors().to_vec() {
            self.nodes[id.index()].remove_neighbor(nb);
        }
        self.nodes[id.index()].set_behavior(Behavior::Unresponsive);
        self.departed[id.index()] = true;
        self.rebuild_routes();
        self.trace
            .record(self.slot, TraceKind::Membership, format!("{id} left"));
    }

    /// Whether `id` has left the network.
    pub fn has_departed(&self, id: NodeId) -> bool {
        self.departed[id.index()]
    }

    /// Kills a node's process **without warning**: all volatile state
    /// (`A_i`, `H_i`, blacklist, and any unsynced storage tail) is lost and
    /// the node stops generating and serving. Unlike [`Self::node_leaves`],
    /// the radio links stay up — the node is expected back.
    ///
    /// The dropped backend releases its file handles, so a durable factory
    /// can later [`Self::restart_node`] from the same directory.
    pub fn crash_node(&mut self, id: NodeId) {
        let idx = id.index();
        // Idempotent: a second crash while already down must not overwrite
        // the pre-crash chain length with the dead placeholder's (0).
        if self.crashed_chain_len[idx].is_none() {
            self.crashed_chain_len[idx] = Some(self.nodes[idx].store().len());
        }
        let neighbors = self.nodes[idx].neighbors().to_vec();
        // Replace the whole node: a crash erases every bit of volatile state.
        let mut dead = LedgerNode::new(id, neighbors, &self.cfg);
        dead.set_behavior(Behavior::Unresponsive);
        self.nodes[idx] = dead;
        self.departed[idx] = true;
        self.trace
            .record(self.slot, TraceKind::Membership, format!("{id} crashed"));
    }

    /// Restarts a crashed node from its durable storage: the factory reopens
    /// the node's backend (recovering the synced chain prefix), and the node
    /// resumes generating from the recovered sequence number. Volatile state
    /// starts empty, exactly as a real process restart would.
    ///
    /// # Errors
    ///
    /// Propagates the factory's [`TldagError`] when recovery fails, and
    /// refuses to restart a node that was not taken down by
    /// [`Self::crash_node`] or whose backend recovered fewer blocks than the
    /// chain had at crash time; the node stays down in all error cases.
    pub fn restart_node(&mut self, id: NodeId) -> Result<usize, TldagError> {
        let idx = id.index();
        let Some(expected) = self.crashed_chain_len[idx] else {
            return Err(TldagError::Storage(format!(
                "{id} was not crashed via crash_node; nothing to restart"
            )));
        };
        let backend = self.factory.reopen(id)?;
        let recovered = backend.len();
        if recovered < expected {
            // Re-generating already-broadcast sequence numbers would put
            // two distinct blocks behind one BlockId; refuse instead of
            // silently forking (volatile backends always land here).
            return Err(TldagError::Storage(format!(
                "{id} recovered {recovered} of {expected} blocks; \
restarting would fork its chain"
            )));
        }
        self.crashed_chain_len[idx] = None;
        let neighbors = self.topology.neighbors(id).to_vec();
        let mut node = LedgerNode::with_backend(id, neighbors, &self.cfg, backend);
        // Warm restart: restore the persisted `H_i` so TPS resumes from the
        // pre-crash trust state instead of re-verifying paths from scratch.
        let mut warm_headers = 0usize;
        if self.persist_trust_cache {
            if let Some(cache) = self.factory.load_trust_cache(id)? {
                warm_headers = cache.len();
                self.trust_saved_len[idx] = warm_headers;
                node.restore_trust_cache(cache);
            } else {
                self.trust_saved_len[idx] = 0;
            }
        }
        self.nodes[idx] = node;
        self.departed[idx] = false;
        self.trace.record(
            self.slot,
            TraceKind::Membership,
            format!(
                "{id} restarted with {recovered} recovered blocks, \
{warm_headers} trusted headers"
            ),
        );
        Ok(recovered)
    }

    /// Runs one PoP verification from `validator` on `target`.
    ///
    /// With `commit = true` (the normal protocol), the validator's trust
    /// cache and blacklist are updated and traffic is accounted. With
    /// `commit = false` the run is a measurement probe: state and accounting
    /// are untouched (used by the Fig. 9 failure-probability sweeps).
    pub fn run_pop(&mut self, validator: NodeId, target: BlockId, commit: bool) -> PopReport {
        let vid = validator.index();
        let mut trust_cache = if commit {
            self.nodes[vid].take_trust_cache()
        } else {
            self.nodes[vid].trust_cache().clone()
        };
        let mut blacklist = if commit {
            self.nodes[vid].take_blacklist(&self.cfg)
        } else {
            self.nodes[vid].blacklist().clone()
        };
        let mut pop_rng = DetRng::seed_from(self.rng.next_u64());

        let report = execute_pop(
            &self.cfg,
            &self.topology,
            &self.nodes,
            self.routes.as_deref(),
            &mut self.accounting,
            &mut self.links,
            validator,
            target,
            commit,
            &mut trust_cache,
            &mut blacklist,
            &mut pop_rng,
        );

        if commit {
            self.nodes[vid].restore_trust_cache(trust_cache);
            self.nodes[vid].restore_blacklist(blacklist);
        }
        report
    }

    /// A digest committing to node `id`'s whole chain: the hash of all
    /// header digests in sequence order. Two runs that produce the same
    /// chain digest for every node produced byte-identical chains — the
    /// check behind the thread-count determinism guarantee.
    pub fn chain_digest(&self, id: NodeId) -> Digest {
        let mut bytes = Vec::new();
        for block in self.nodes[id.index()].store().iter() {
            bytes.extend_from_slice(block.header_digest().as_bytes());
        }
        sha256(&bytes)
    }

    /// A digest committing to every node's chain (in node order).
    pub fn network_digest(&self) -> Digest {
        let mut bytes = Vec::with_capacity(self.nodes.len() * 32);
        for id in self.topology.node_ids() {
            bytes.extend_from_slice(self.chain_digest(id).as_bytes());
        }
        sha256(&bytes)
    }
}

/// Chooses a verification target for `validator`: a uniformly random
/// qualifying block owned by another live node. Free-standing so the
/// shard-parallel verify phase can run it with per-validator streams while
/// the public [`TldagNetwork::choose_target`] keeps its sequential contract.
fn choose_target_from(
    nodes: &[LedgerNode],
    departed: &[bool],
    verification: VerificationWorkload,
    now: Slot,
    validator: NodeId,
    rng: &mut DetRng,
) -> Option<BlockId> {
    if matches!(verification, VerificationWorkload::Disabled) {
        // Skip the candidate scan entirely — with a disk backend it would
        // decode every record of every chain just to discard it.
        return None;
    }
    let mut candidates: Vec<BlockId> = Vec::new();
    for node in nodes {
        if node.id() == validator || departed[node.id().index()] {
            continue;
        }
        // Metadata-only scan: never decodes bodies, so disk-backed stores
        // answer from their index.
        for (id, time) in node.store().iter_meta() {
            if verification.qualifies(time, now) {
                candidates.push(id);
            }
        }
    }
    rng.choose(&candidates).copied()
}

/// Runs one PoP verification with every dependency passed explicitly, so
/// both the sequential API and the shard-parallel verify phase share one
/// implementation. The validator's own state arrives via `trust_cache` /
/// `blacklist`; `nodes` is only ever read.
#[allow(clippy::too_many_arguments)]
fn execute_pop(
    cfg: &ProtocolConfig,
    topology: &Topology,
    nodes: &[LedgerNode],
    routes: Option<&[Vec<Option<NodeId>>]>,
    accounting: &mut Accounting,
    links: &mut LinkFaults,
    validator: NodeId,
    target: BlockId,
    meter: bool,
    trust_cache: &mut TrustCache,
    blacklist: &mut Blacklist,
    pop_rng: &mut DetRng,
) -> PopReport {
    let mut transport = SimTransport {
        cfg,
        nodes,
        accounting,
        routes,
        links,
        meter,
    };
    let mut v = Validator::new(
        cfg,
        topology,
        validator,
        nodes[validator.index()].store(),
        trust_cache,
        blacklist,
        pop_rng,
    );
    v.run(target, &mut transport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::LogicalDag;
    use tldag_sim::topology::TopologyConfig;

    fn small_net(seed: u64, nodes: usize, gamma: usize) -> TldagNetwork {
        let mut rng = DetRng::seed_from(seed);
        let topo = Topology::random_connected(&TopologyConfig::small(nodes), &mut rng);
        let cfg = ProtocolConfig::test_default().with_gamma(gamma);
        let schedule = GenerationSchedule::uniform(topo.len());
        TldagNetwork::new(cfg, topo, schedule, seed)
    }

    #[test]
    fn every_node_generates_each_slot() {
        let mut net = small_net(1, 10, 2);
        let summary = net.step();
        assert_eq!(summary.blocks_generated, 10);
        assert_eq!(net.total_blocks(), 10);
        for id in net.topology().node_ids() {
            assert_eq!(net.node(id).chain_len(), 1);
        }
    }

    #[test]
    fn digests_flow_to_neighbors() {
        let mut net = small_net(2, 10, 2);
        net.step();
        net.step();
        // After two slots, every node's latest block should reference at
        // least one neighbor digest (plus its own previous block).
        for id in net.topology().node_ids() {
            let latest = net.node(id).store().latest().unwrap();
            assert!(
                latest.header.digest_entries() >= 2,
                "node {id} entries = {}",
                latest.header.digest_entries()
            );
        }
    }

    #[test]
    fn dag_construction_traffic_accounted() {
        let mut net = small_net(3, 10, 2);
        net.step();
        let total = net
            .accounting()
            .network_total(TrafficClass::DagConstruction);
        // Every edge carries one digest each way per slot (all generate).
        let edges = net.topology().edge_count() as u64;
        let per_msg = net.config().digest_message_bits().bits();
        assert_eq!(total.bits(), edges * 2 * per_msg * 2);
        // (×2 endpoints ×2 directions: tx+rx counted per node.)
    }

    #[test]
    fn pop_succeeds_on_old_blocks_in_honest_network() {
        let mut net = small_net(4, 8, 2);
        net.set_verification_workload(VerificationWorkload::RandomPast { min_age_slots: 4 });
        for _ in 0..10 {
            net.step();
        }
        let (attempts, successes) = net.pop_counters();
        assert!(attempts > 0, "verification workload must trigger");
        assert_eq!(attempts, successes, "honest network never fails PoP");
        // Consensus traffic exists once PoPs start.
        assert!(
            net.accounting()
                .network_total(TrafficClass::Consensus)
                .bits()
                > 0
        );
    }

    #[test]
    fn logical_dag_stays_acyclic_through_simulation() {
        let mut net = small_net(5, 8, 2);
        net.run_slots(6);
        let dag = LogicalDag::build(net.nodes());
        assert!(dag.is_acyclic());
        assert!(dag.edges_respect_time());
        assert_eq!(dag.block_count(), net.total_blocks());
    }

    #[test]
    fn probe_does_not_change_state_or_accounting() {
        let mut net = small_net(6, 8, 2);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(6);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        let before_bits = net
            .accounting()
            .network_total(TrafficClass::Consensus)
            .bits();
        let before_cache = net.node(NodeId(0)).trust_cache().len();

        let report = net.run_pop(NodeId(0), target, false);
        assert!(report.is_success());

        assert_eq!(
            net.accounting()
                .network_total(TrafficClass::Consensus)
                .bits(),
            before_bits,
            "probe must not meter traffic"
        );
        assert_eq!(net.node(NodeId(0)).trust_cache().len(), before_cache);
    }

    #[test]
    fn committed_pop_populates_trust_cache() {
        let mut net = small_net(7, 8, 2);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(6);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, true);
        assert!(report.is_success());
        assert!(
            net.node(NodeId(0)).trust_cache().len() >= report.path.len(),
            "all path headers cached"
        );
    }

    #[test]
    fn pop_path_is_valid_dag_path() {
        let mut net = small_net(8, 8, 3);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(8);
        let target = net.node(NodeId(2)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(report.is_success());
        assert!(report.distinct_nodes >= net.config().consensus_threshold());

        let dag = LogicalDag::build(net.nodes());
        let digests: Vec<_> = report.path.iter().map(|s| s.digest).collect();
        assert!(dag.is_valid_path(&digests), "PoP path must be a DAG path");
        // First step is the target block.
        assert_eq!(report.path[0].block_id, target);
    }

    #[test]
    fn unresponsive_verifier_fails_with_block_unavailable() {
        let mut net = small_net(9, 8, 2);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(4);
        net.set_behavior(NodeId(1), Behavior::Unresponsive);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(!report.is_success());
        assert!(matches!(
            report.outcome,
            Err(crate::error::PopError::BlockUnavailable { .. })
        ));
    }

    #[test]
    fn corrupt_store_detected_at_fetch() {
        let mut net = small_net(10, 8, 2);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(4);
        net.set_behavior(NodeId(1), Behavior::CorruptStore);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(matches!(
            report.outcome,
            Err(crate::error::PopError::InvalidBlock { .. })
        ));
    }

    #[test]
    fn pop_routes_around_malicious_responders() {
        // Enough honest nodes remain for γ+1 = 3 distinct path nodes even
        // with some unresponsive nodes in the mix.
        let mut net = small_net(11, 12, 2);
        net.set_verification_workload(VerificationWorkload::Disabled);
        net.run_slots(8);
        // Mark two nodes malicious (not the verifier n1).
        net.set_behavior(NodeId(3), Behavior::Unresponsive);
        net.set_behavior(NodeId(4), Behavior::CorruptReply);
        let target = net.node(NodeId(1)).store().get(0).unwrap().id;
        let report = net.run_pop(NodeId(0), target, false);
        assert!(
            report.is_success(),
            "PoP should route around malicious nodes: {:?}",
            report.outcome
        );
        for step in &report.path {
            assert_ne!(step.owner, NodeId(3), "unresponsive node cannot vouch");
        }
    }

    #[test]
    fn memory_backed_restart_refuses_to_fork_chain() {
        let mut net = small_net(12, 8, 2);
        net.run_slots(3);
        net.crash_node(NodeId(2));
        assert!(net.has_departed(NodeId(2)));
        // The memory factory recovers nothing; restarting would regenerate
        // sequence numbers already referenced by neighbors.
        let err = net.restart_node(NodeId(2)).unwrap_err();
        assert!(
            err.to_string().contains("fork"),
            "refusal must explain itself: {err}"
        );
        assert!(net.has_departed(NodeId(2)), "node stays down after refusal");
    }

    #[test]
    fn crash_before_generation_restarts_cleanly() {
        let mut net = small_net(13, 8, 2);
        // No slots run: nothing generated, nothing to lose.
        net.crash_node(NodeId(1));
        let recovered = net.restart_node(NodeId(1)).unwrap();
        assert_eq!(recovered, 0);
        assert!(!net.has_departed(NodeId(1)));
        net.run_slots(2);
        assert_eq!(net.node(NodeId(1)).chain_len(), 2);
    }

    #[test]
    fn double_crash_keeps_fork_guard_armed() {
        let mut net = small_net(14, 8, 2);
        net.run_slots(3);
        net.crash_node(NodeId(2));
        net.crash_node(NodeId(2)); // placeholder store has len 0 — must not re-arm at 0
        let err = net.restart_node(NodeId(2)).unwrap_err();
        assert!(err.to_string().contains("fork"), "guard bypassed: {err}");
    }

    #[test]
    fn restart_without_crash_is_refused() {
        let mut net = small_net(15, 8, 2);
        net.run_slots(2);
        // Never crashed — restarting would regenerate live sequence numbers.
        let err = net.restart_node(NodeId(1)).unwrap_err();
        assert!(err.to_string().contains("not crashed"), "{err}");
        // A node that *left* is not a crash either.
        net.node_leaves(NodeId(3));
        let err = net.restart_node(NodeId(3)).unwrap_err();
        assert!(err.to_string().contains("not crashed"), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut net = small_net(seed, 8, 2);
            net.run_slots(8);
            (
                net.total_blocks(),
                net.accounting()
                    .network_total(TrafficClass::Consensus)
                    .bits(),
                net.pop_counters(),
            )
        };
        assert_eq!(run(42), run(42));
    }
}
