//! PoP wire messages and the transport abstraction.
//!
//! The protocol uses three exchanges (Sec. IV-C):
//!
//! 1. Block retrieval — the validator fetches the full target block from the
//!    verifier (header + body).
//! 2. `REQ_CHILD` — the validator sends `H(b^h_v)` to a prospective
//!    responder.
//! 3. `RPY_CHILD` — the responder returns the header of its oldest block
//!    containing that digest.
//!
//! [`PopTransport`] abstracts the exchanges so the validator algorithm can be
//! unit-tested against scripted mocks and driven by the full network
//! simulator alike. A `None` return models the paper's timeout `τ`.

use crate::block::{BlockHeader, BlockId, DataBlock};
use tldag_crypto::Digest;
use tldag_sim::NodeId;

/// A `RPY_CHILD` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildReply {
    /// The node id the responder claims to be (Sybil attackers lie here).
    pub claimed_owner: NodeId,
    /// Identity of the child block within the responder's chain.
    pub block_id: BlockId,
    /// The child block's header.
    pub header: BlockHeader,
}

/// What a responder says to a `REQ_CHILD`.
///
/// Distinguishing a cooperative "I have no child of that block" from silence
/// matters for the blacklist: only silence and invalid replies are offenses.
/// A [`ChildResponse::Pruned`] miss is equally cooperative — the responder
/// compacted its chain prefix under a storage budget (Eq. 2), so a matching
/// child may once have existed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildResponse {
    /// The responder has a child block and returns its header.
    Found(ChildReply),
    /// The responder cooperated but stores no child of the target.
    NoChild,
    /// The responder cooperated but has pruned its chain prefix; any child
    /// of the target may have been compacted away.
    Pruned,
}

/// What a verifier says to a full-block fetch.
///
/// Returned inside an `Option` by [`PopTransport::fetch_block`]: `None`
/// still models the timeout `τ`, while [`FetchResponse::Pruned`] is a
/// cooperative answer — the owner is alive but compacted the block away
/// under its retention budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FetchResponse {
    /// The requested block, as served by its owner.
    Block(Box<DataBlock>),
    /// The owner pruned the block; it retains `retained_from` onward.
    Pruned {
        /// First sequence number the owner still retains.
        retained_from: u32,
    },
}

/// Transport used by the validator to reach other nodes.
///
/// Implementations account message sizes; returning `None` models a timeout
/// after `τ` (unresponsive, selfish, or partitioned peers).
pub trait PopTransport {
    /// Retrieves the full block `id` from `owner` (validator → verifier).
    fn fetch_block(
        &mut self,
        validator: NodeId,
        owner: NodeId,
        id: BlockId,
    ) -> Option<FetchResponse>;

    /// Sends `REQ_CHILD(target)` to `responder` and waits for `RPY_CHILD`.
    fn request_child(
        &mut self,
        validator: NodeId,
        responder: NodeId,
        target: Digest,
    ) -> Option<ChildResponse>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, DataBlock};
    use crate::config::ProtocolConfig;
    use tldag_crypto::schnorr::KeyPair;

    /// A transport that always times out; sanity-checks object safety.
    struct DeadTransport;

    impl PopTransport for DeadTransport {
        fn fetch_block(&mut self, _: NodeId, _: NodeId, _: BlockId) -> Option<FetchResponse> {
            None
        }
        fn request_child(&mut self, _: NodeId, _: NodeId, _: Digest) -> Option<ChildResponse> {
            None
        }
    }

    #[test]
    fn transport_is_object_safe() {
        let mut t: Box<dyn PopTransport> = Box::new(DeadTransport);
        assert!(t
            .fetch_block(NodeId(0), NodeId(1), BlockId::genesis(NodeId(1)))
            .is_none());
        assert!(t
            .request_child(NodeId(0), NodeId(1), Digest::ZERO)
            .is_none());
    }

    #[test]
    fn child_reply_round_trip() {
        let cfg = ProtocolConfig::test_default();
        let kp = KeyPair::from_seed(1);
        let body = BlockBody::new(vec![1u8], cfg.body_bits);
        let block = DataBlock::create(&cfg, BlockId::genesis(NodeId(1)), 0, vec![], body, &kp);
        let reply = ChildReply {
            claimed_owner: NodeId(1),
            block_id: block.id,
            header: block.header.clone(),
        };
        assert_eq!(reply.claimed_owner, NodeId(1));
        assert_eq!(reply.header.digest(), block.header_digest());
    }
}
