//! Trust Path Selection (Algorithm 2, Sec. IV-B).
//!
//! After a successful PoP run the validator caches every header on the proof
//! path in `H_i`. Later verifications re-use those headers: as long as some
//! cached header is a child of the current verifying block, the path extends
//! *for free* — no `REQ_CHILD`/`RPY_CHILD` exchange, no bytes on the air.
//! This is what makes repeated audits of the same region of the DAG cheap
//! (the `{C1, D1, E2}` example of Sec. IV-B).

use crate::store::{TrustCache, TrustedHeader};
use std::collections::HashSet;
use tldag_crypto::Digest;

/// One cache-driven path extension.
#[derive(Clone, Debug)]
pub struct TpsStep {
    /// The trusted header that extends the path.
    pub trusted: TrustedHeader,
    /// Its header digest (the new verifying-block digest).
    pub digest: Digest,
}

/// Extends the path from `current` using cached headers until the cache runs
/// dry or `max_steps` extensions were taken (Algorithm 2's loop).
///
/// `skip` contains header digests that must not be used (blocks rolled back
/// earlier in this PoP run). Acyclicity of the logical DAG guarantees
/// termination; `max_steps` is a defensive bound.
pub fn extend(
    cache: &TrustCache,
    current: &Digest,
    skip: &HashSet<Digest>,
    max_steps: usize,
) -> Vec<TpsStep> {
    let mut steps = Vec::new();
    let mut tip = *current;
    while steps.len() < max_steps {
        let Some(next) = cache
            .children_candidates(&tip)
            .into_iter()
            .find(|t| !skip.contains(&t.header.digest()))
        else {
            break;
        };
        let digest = next.header.digest();
        steps.push(TpsStep {
            trusted: next.clone(),
            digest,
        });
        tip = digest;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockBody, BlockId, DataBlock, DigestEntry};
    use crate::config::ProtocolConfig;
    use tldag_crypto::schnorr::KeyPair;
    use tldag_sim::NodeId;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::test_default()
    }

    fn block_with_parent(
        cfg: &ProtocolConfig,
        owner: u32,
        seq: u32,
        time: u64,
        parent: Digest,
    ) -> DataBlock {
        let kp = KeyPair::from_seed(u64::from(owner));
        DataBlock::create(
            cfg,
            BlockId::new(NodeId(owner), seq),
            time,
            vec![DigestEntry {
                origin: NodeId(owner.wrapping_sub(1)),
                digest: parent,
            }],
            BlockBody::new(vec![owner as u8], cfg.body_bits),
            &kp,
        )
    }

    fn trusted(block: &DataBlock) -> TrustedHeader {
        TrustedHeader {
            owner: block.id.owner,
            block_id: block.id,
            header: block.header.clone(),
        }
    }

    #[test]
    fn follows_chain_of_cached_headers() {
        let cfg = cfg();
        let root = Digest::from_bytes([1; 32]);
        let b1 = block_with_parent(&cfg, 1, 0, 1, root);
        let b2 = block_with_parent(&cfg, 2, 0, 2, b1.header_digest());
        let b3 = block_with_parent(&cfg, 3, 0, 3, b2.header_digest());

        let mut cache = TrustCache::new();
        for b in [&b1, &b2, &b3] {
            cache.insert(trusted(b));
        }
        let steps = extend(&cache, &root, &HashSet::new(), 100);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].trusted.owner, NodeId(1));
        assert_eq!(steps[2].trusted.owner, NodeId(3));
        // Each step's header contains the previous digest.
        assert!(steps[0].trusted.header.contains_digest(&root));
        assert!(steps[1].trusted.header.contains_digest(&steps[0].digest));
    }

    #[test]
    fn stops_when_cache_runs_dry() {
        let cfg = cfg();
        let root = Digest::from_bytes([2; 32]);
        let b1 = block_with_parent(&cfg, 1, 0, 1, root);
        let mut cache = TrustCache::new();
        cache.insert(trusted(&b1));
        let steps = extend(&cache, &root, &HashSet::new(), 100);
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn empty_cache_extends_nothing() {
        let cache = TrustCache::new();
        let steps = extend(&cache, &Digest::ZERO, &HashSet::new(), 100);
        assert!(steps.is_empty());
    }

    #[test]
    fn skip_set_excludes_rolled_back_blocks() {
        let cfg = cfg();
        let root = Digest::from_bytes([3; 32]);
        let early = block_with_parent(&cfg, 1, 0, 1, root);
        let late = block_with_parent(&cfg, 2, 0, 5, root);
        let mut cache = TrustCache::new();
        cache.insert(trusted(&early));
        cache.insert(trusted(&late));

        // Without a skip set, TPS picks the earliest child.
        let steps = extend(&cache, &root, &HashSet::new(), 100);
        assert_eq!(steps[0].trusted.owner, NodeId(1));

        // Skipping the early block falls back to the alternative child.
        let skip: HashSet<Digest> = [early.header_digest()].into();
        let steps = extend(&cache, &root, &skip, 100);
        assert_eq!(steps[0].trusted.owner, NodeId(2));
    }

    #[test]
    fn max_steps_bounds_extension() {
        let cfg = cfg();
        let root = Digest::from_bytes([4; 32]);
        let mut cache = TrustCache::new();
        let mut parent = root;
        for i in 0..10 {
            let b = block_with_parent(&cfg, i + 1, 0, u64::from(i + 1), parent);
            parent = b.header_digest();
            cache.insert(trusted(&b));
        }
        let steps = extend(&cache, &root, &HashSet::new(), 4);
        assert_eq!(steps.len(), 4);
    }
}
