//! Proof-of-Path (PoP): the reactive consensus protocol of Sec. IV.
//!
//! A **validator** verifies a block `b_{j,t}` stored at a **verifier** node
//! `j` by constructing a path of child blocks through the logical DAG until
//! the path visits `γ + 1` distinct nodes, each of which vouches for the
//! block by having embedded its digest (directly or transitively). Path
//! construction uses:
//!
//! * [`wps`] — Weighted Path Selection (Algorithm 1): which neighbor to ask
//!   for the next child block.
//! * [`tps`] — Trust Path Selection (Algorithm 2): extending the path for
//!   free from the validator's verified-header cache `H_i`.
//! * [`validator`] — the full validator procedure (Algorithm 3) with
//!   timeout handling and rollback.
//!
//! The **responder** procedure (Algorithm 4) is
//! [`crate::node::LedgerNode::serve_child_request`]; transports wire it to
//! validators.

pub mod messages;
pub mod tps;
pub mod validator;
pub mod wps;

pub use messages::{ChildReply, ChildResponse, FetchResponse, PopTransport};
pub use validator::{PathStep, PopMetrics, PopReport, Validator};
