//! The PoP validator (Algorithm 3, Sec. IV-C).
//!
//! Verifying block `b_{j,t}` proceeds as:
//!
//! 1. Retrieve the full block from the verifier `j`; check its Merkle root
//!    (and, as hardening, its signature and puzzle).
//! 2. Initialise the proof path `P_i = [b_{j,t}]` and node set `R_i = {j}`.
//! 3. Loop until `|R_i| ≥ γ + 1`:
//!    * **TPS** — extend the path for free from the verified-header cache.
//!    * **WPS** — pick the most promising untried neighbor of the current
//!      verifying block's owner and send it `REQ_CHILD`.
//!    * A valid `RPY_CHILD` (its Digests entry for the owner matches the
//!      verifying digest, and the header signature/puzzle verify) extends the
//!      path; timeouts and invalid replies mark the responder tried and feed
//!      the blacklist.
//!    * When every neighbor is exhausted, **roll back** one block (lines
//!      26–31): the popped owner leaves `R_i` and is excluded (`V'`), and the
//!      search resumes one block earlier.
//! 4. On success, every header on the path enters the trust cache `H_i`
//!    (line 39).
//!
//! Micro-loops (Fig. 6) arise naturally: when a fast node's blocks alternate
//! with a slow neighbor's, the path may revisit owners without growing
//! `|R_i|`; `R_i` is maintained as a multiset so rollbacks through such loops
//! stay consistent.

use crate::blacklist::Blacklist;
use crate::block::{BlockHeader, BlockId};
use crate::config::ProtocolConfig;
use crate::error::PopError;
use crate::pop::messages::{ChildReply, ChildResponse, FetchResponse, PopTransport};
use crate::pop::{tps, wps};
use crate::store::{BlockBackend, TrustCache, TrustedHeader};
use std::collections::{HashMap, HashSet};
use tldag_crypto::schnorr::{KeyPair, PublicKey};
use tldag_crypto::Digest;
use tldag_sim::{Bits, DetRng, NodeId, Topology};

/// Defensive cap on validator loop iterations (the protocol itself
/// terminates because the logical DAG is finite and acyclic).
const MAX_ITERATIONS: usize = 1_000_000;

/// One block on the proof path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Node whose block this is.
    pub owner: NodeId,
    /// The block's identity.
    pub block_id: BlockId,
    /// The block's header digest.
    pub digest: Digest,
}

/// Counters describing one PoP run; the raw material for Fig. 8 and the
/// Proposition 4/6 checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PopMetrics {
    /// Messages emitted by the validator (block fetch + `REQ_CHILD`s).
    pub messages_sent: u64,
    /// Messages received (block + `RPY_CHILD`s).
    pub messages_received: u64,
    /// Bits transmitted.
    pub bits_sent: Bits,
    /// Bits received.
    pub bits_received: Bits,
    /// `REQ_CHILD` messages sent.
    pub req_child_sent: u64,
    /// `RPY_CHILD` messages received.
    pub replies_received: u64,
    /// Replies rejected by the consistency/signature checks.
    pub invalid_replies: u64,
    /// Cooperative "no child stored" replies.
    pub no_child_replies: u64,
    /// Graceful pruned misses: the target block was compacted away at the
    /// verifier, or a responder's pruned chain could not rule out a child
    /// (Eq. 2 retention budgets in action — cooperative, never an offense).
    pub pruned_misses: u64,
    /// Requests that timed out.
    pub timeouts: u64,
    /// Offenses recorded against responders (Sec. IV-D.6): every timeout or
    /// invalid reply that fed the blacklist. `offenses =` blacklist
    /// `record_failure` calls, so it is the counter the wire runtime exports
    /// as `tldag_pop_offenses_total`.
    pub offenses: u64,
    /// Path extensions served from the trust cache (TPS).
    pub tps_extensions: u64,
    /// Path extensions served from the validator's own store.
    pub own_store_hits: u64,
    /// Rollbacks performed (Algorithm 3, lines 26–31).
    pub rollbacks: u64,
}

impl PopMetrics {
    /// Total messages exchanged (Prop. 4's quantity).
    pub fn total_messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Total traffic in bits.
    pub fn total_bits(&self) -> Bits {
        self.bits_sent + self.bits_received
    }

    /// Folds another run's counters into this one (accumulating across a
    /// node's lifetime for telemetry).
    pub fn merge(&mut self, other: &PopMetrics) {
        let PopMetrics {
            messages_sent,
            messages_received,
            bits_sent,
            bits_received,
            req_child_sent,
            replies_received,
            invalid_replies,
            no_child_replies,
            pruned_misses,
            timeouts,
            offenses,
            tps_extensions,
            own_store_hits,
            rollbacks,
        } = *other;
        self.messages_sent += messages_sent;
        self.messages_received += messages_received;
        self.bits_sent += bits_sent;
        self.bits_received += bits_received;
        self.req_child_sent += req_child_sent;
        self.replies_received += replies_received;
        self.invalid_replies += invalid_replies;
        self.no_child_replies += no_child_replies;
        self.pruned_misses += pruned_misses;
        self.timeouts += timeouts;
        self.offenses += offenses;
        self.tps_extensions += tps_extensions;
        self.own_store_hits += own_store_hits;
        self.rollbacks += rollbacks;
    }

    /// Every counter as `(name, value)` pairs, for metric exposition
    /// (bit counters are reported in bits).
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("messages_sent", self.messages_sent),
            ("messages_received", self.messages_received),
            ("bits_sent", self.bits_sent.bits()),
            ("bits_received", self.bits_received.bits()),
            ("req_child_sent", self.req_child_sent),
            ("replies_received", self.replies_received),
            ("invalid_replies", self.invalid_replies),
            ("no_child_replies", self.no_child_replies),
            ("pruned_misses", self.pruned_misses),
            ("timeouts", self.timeouts),
            ("offenses", self.offenses),
            ("tps_extensions", self.tps_extensions),
            ("own_store_hits", self.own_store_hits),
            ("rollbacks", self.rollbacks),
        ]
    }
}

/// The result of one PoP run.
#[derive(Clone, Debug)]
pub struct PopReport {
    /// `Ok(())` when consensus was reached, otherwise the failure reason.
    pub outcome: Result<(), PopError>,
    /// The proof path (verifier first). On failure, the path at the moment
    /// the run aborted.
    pub path: Vec<PathStep>,
    /// Number of distinct nodes on the path when the run ended.
    pub distinct_nodes: usize,
    /// Message/byte counters.
    pub metrics: PopMetrics,
}

impl PopReport {
    /// Whether consensus was reached.
    pub fn is_success(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Multiset of path owners; `R_i` is its distinct-element view.
#[derive(Default)]
struct OwnerMultiset {
    counts: HashMap<NodeId, u32>,
    distinct: HashSet<NodeId>,
}

impl OwnerMultiset {
    fn add(&mut self, owner: NodeId) {
        *self.counts.entry(owner).or_insert(0) += 1;
        self.distinct.insert(owner);
    }

    fn remove(&mut self, owner: NodeId) {
        if let Some(count) = self.counts.get_mut(&owner) {
            *count -= 1;
            if *count == 0 {
                self.counts.remove(&owner);
                self.distinct.remove(&owner);
            }
        }
    }

    fn len_distinct(&self) -> usize {
        self.distinct.len()
    }

    fn set(&self) -> &HashSet<NodeId> {
        &self.distinct
    }
}

/// Internal path entry: a [`PathStep`] plus search bookkeeping.
struct Entry {
    owner: NodeId,
    block_id: BlockId,
    digest: Digest,
    header: BlockHeader,
    tried: HashSet<NodeId>,
}

impl Entry {
    fn step(&self) -> PathStep {
        PathStep {
            owner: self.owner,
            block_id: self.block_id,
            digest: self.digest,
        }
    }
}

/// Looks up the registered public key of a node. Keys are provisioned from
/// node ids at registration (Sec. IV-D assumes every node knows every public
/// key), so the directory is computable.
pub fn registered_key(node: NodeId) -> PublicKey {
    KeyPair::from_seed(u64::from(node.0)).public()
}

/// The PoP validator role for one node.
///
/// Borrows the validator node's mutable state (`H_i`, blacklist) and
/// read-only views of the topology and its own store; all remote interaction
/// goes through the [`PopTransport`].
pub struct Validator<'a> {
    cfg: &'a ProtocolConfig,
    topology: &'a Topology,
    id: NodeId,
    own_store: &'a dyn BlockBackend,
    trust_cache: &'a mut TrustCache,
    blacklist: &'a mut Blacklist,
    rng: &'a mut DetRng,
    /// When set, the validator's own-store responses are capped to blocks
    /// generated at or before this slot — the pipelined (epoch-windowed)
    /// rule that keeps a run-ahead validator from citing its own future
    /// blocks while verifying an older slot.
    horizon: Option<u64>,
}

impl<'a> Validator<'a> {
    /// Creates a validator for node `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: &'a ProtocolConfig,
        topology: &'a Topology,
        id: NodeId,
        own_store: &'a dyn BlockBackend,
        trust_cache: &'a mut TrustCache,
        blacklist: &'a mut Blacklist,
        rng: &'a mut DetRng,
    ) -> Self {
        Validator {
            cfg,
            topology,
            id,
            own_store,
            trust_cache,
            blacklist,
            rng,
            horizon: None,
        }
    }

    /// Caps this validator's own-store responses to blocks generated at or
    /// before slot `horizon` (see the `horizon` field). Remote responders
    /// are capped separately by the transport (`REQ_CHILD_AT`).
    #[must_use]
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Runs Algorithm 3 to verify block `target`.
    pub fn run(&mut self, target: BlockId, transport: &mut dyn PopTransport) -> PopReport {
        let mut metrics = PopMetrics::default();
        let threshold = self.cfg.consensus_threshold();

        // --- Initialization: retrieve and validate the target block. ---
        metrics.messages_sent += 1;
        metrics.bits_sent += self.cfg.fetch_request_bits();
        let block = match transport.fetch_block(self.id, target.owner, target) {
            None => {
                return PopReport {
                    outcome: Err(PopError::BlockUnavailable {
                        owner: target.owner,
                    }),
                    path: Vec::new(),
                    distinct_nodes: 0,
                    metrics,
                };
            }
            Some(FetchResponse::Pruned { retained_from }) => {
                // Graceful miss: the owner compacted the block away under
                // its storage budget. Cooperative — no offense, no retry.
                metrics.messages_received += 1;
                metrics.bits_received += self.cfg.nack_bits();
                metrics.pruned_misses += 1;
                return PopReport {
                    outcome: Err(PopError::TargetPruned {
                        owner: target.owner,
                        retained_from,
                    }),
                    path: Vec::new(),
                    distinct_nodes: 0,
                    metrics,
                };
            }
            Some(FetchResponse::Block(block)) => *block,
        };
        metrics.messages_received += 1;
        metrics.bits_received += self.cfg.block_response_bits(block.header.digest_entries());
        if let Err(reason) = block.validate(self.cfg, &registered_key(target.owner)) {
            return PopReport {
                outcome: Err(PopError::InvalidBlock {
                    owner: target.owner,
                    reason,
                }),
                path: Vec::new(),
                distinct_nodes: 0,
                metrics,
            };
        }

        let mut path: Vec<Entry> = vec![Entry {
            owner: target.owner,
            block_id: target,
            digest: block.header_digest(),
            header: block.header.clone(),
            tried: HashSet::new(),
        }];
        let mut owners = OwnerMultiset::default();
        owners.add(target.owner);
        // `V \ V'`: nodes excluded by the current rollback cascade
        // (Algorithm 3, line 27). Cleared whenever the path extends, because
        // line 14 re-initialises V' = V on every outer iteration.
        let mut excluded: HashSet<NodeId> = HashSet::new();
        // Header digests of rolled-back blocks; TPS must not resurrect them.
        let mut popped: HashSet<Digest> = HashSet::new();

        // --- Construct the path. ---
        for _ in 0..MAX_ITERATIONS {
            if metrics.req_child_sent >= self.cfg.max_requests {
                break;
            }
            // TPS fast-forward (Algorithm 3, line 9).
            if self.cfg.enable_tps && owners.len_distinct() < threshold {
                let tip_digest = path.last().expect("path never empty here").digest;
                let budget = threshold * 4 + 16;
                for step in tps::extend(self.trust_cache, &tip_digest, &popped, budget) {
                    metrics.tps_extensions += 1;
                    owners.add(step.trusted.owner);
                    path.push(Entry {
                        owner: step.trusted.owner,
                        block_id: step.trusted.block_id,
                        digest: step.digest,
                        header: step.trusted.header.clone(),
                        tried: HashSet::new(),
                    });
                    excluded.clear();
                    if owners.len_distinct() >= threshold {
                        break;
                    }
                }
            }
            if owners.len_distinct() >= threshold {
                return self.finish_success(path, owners.len_distinct(), metrics);
            }

            // WPS candidate selection at the current tip.
            let tip = path.last().expect("path never empty here");
            let tip_owner = tip.owner;
            let tip_digest = tip.digest;
            let candidates: Vec<NodeId> = self
                .topology
                .neighbors(tip_owner)
                .iter()
                .copied()
                .filter(|n| !tip.tried.contains(n))
                .filter(|n| !excluded.contains(n))
                .filter(|n| *n == self.id || !self.blacklist.is_banned(*n))
                .collect();

            let selected = match self.cfg.path_selection {
                crate::config::PathSelection::Weighted => {
                    wps::select_next(self.topology, &candidates, owners.set(), self.rng)
                }
                crate::config::PathSelection::Random => self.rng.choose(&candidates).copied(),
            };
            let Some(responder) = selected else {
                // Rollback (Algorithm 3, lines 26–34).
                let entry = path.pop().expect("path never empty here");
                metrics.rollbacks += 1;
                owners.remove(entry.owner);
                excluded.insert(entry.owner);
                popped.insert(entry.digest);
                match path.last_mut() {
                    Some(new_tip) => {
                        // Re-asking the same responder would deterministically
                        // reproduce the popped subtree.
                        new_tip.tried.insert(entry.owner);
                        continue;
                    }
                    None => {
                        return PopReport {
                            outcome: Err(PopError::PathExhausted {
                                distinct_nodes: 0,
                                required: threshold,
                            }),
                            path: Vec::new(),
                            distinct_nodes: 0,
                            metrics,
                        };
                    }
                }
            };

            // Obtain the reply: from our own store for free, otherwise over
            // the air (lines 17–24).
            let response: Option<ChildResponse> = if responder == self.id {
                metrics.own_store_hits += 1;
                let child = match self.horizon {
                    Some(h) => self.own_store.oldest_child_of_within(&tip_digest, h),
                    None => self.own_store.oldest_child_of(&tip_digest),
                };
                Some(match child {
                    Some(b) => ChildResponse::Found(ChildReply {
                        claimed_owner: self.id,
                        block_id: b.id,
                        header: b.header,
                    }),
                    None if self.own_store.pruned_floor() > 0 => ChildResponse::Pruned,
                    None => ChildResponse::NoChild,
                })
            } else {
                metrics.req_child_sent += 1;
                metrics.messages_sent += 1;
                metrics.bits_sent += self.cfg.req_child_bits();
                let response = transport.request_child(self.id, responder, tip_digest);
                if let Some(r) = &response {
                    metrics.replies_received += 1;
                    metrics.messages_received += 1;
                    metrics.bits_received += match r {
                        ChildResponse::Found(reply) => {
                            self.cfg.rpy_child_bits(reply.header.digest_entries())
                        }
                        ChildResponse::NoChild | ChildResponse::Pruned => self.cfg.nack_bits(),
                    };
                }
                response
            };

            match response {
                None => {
                    // Timeout after τ: an offense (Sec. IV-D.6).
                    metrics.timeouts += 1;
                    if responder != self.id {
                        metrics.offenses += 1;
                        self.blacklist.record_failure(responder);
                    }
                    path.last_mut()
                        .expect("path never empty here")
                        .tried
                        .insert(responder);
                }
                Some(ChildResponse::NoChild) => {
                    // Cooperative miss: not an offense, just try elsewhere.
                    metrics.no_child_replies += 1;
                    if responder != self.id {
                        self.blacklist.record_success(responder);
                    }
                    path.last_mut()
                        .expect("path never empty here")
                        .tried
                        .insert(responder);
                }
                Some(ChildResponse::Pruned) => {
                    // Equally cooperative: the responder compacted its chain
                    // prefix, so a child may be gone. Counted separately —
                    // this is the Eq. 2 budget showing up in the protocol.
                    metrics.pruned_misses += 1;
                    if responder != self.id {
                        self.blacklist.record_success(responder);
                    }
                    path.last_mut()
                        .expect("path never empty here")
                        .tried
                        .insert(responder);
                }
                Some(ChildResponse::Found(reply)) => {
                    if self.check_reply(responder, tip_owner, &tip_digest, &reply) {
                        if responder != self.id {
                            self.blacklist.record_success(responder);
                        }
                        let digest = reply.header.digest();
                        owners.add(responder);
                        path.push(Entry {
                            owner: responder,
                            block_id: reply.block_id,
                            digest,
                            header: reply.header,
                            tried: HashSet::new(),
                        });
                        // Successful extension: Algorithm 3 re-initialises
                        // V' = V (line 14), ending the rollback cascade.
                        excluded.clear();
                    } else {
                        metrics.invalid_replies += 1;
                        if responder != self.id {
                            metrics.offenses += 1;
                            self.blacklist.record_failure(responder);
                        }
                        path.last_mut()
                            .expect("path never empty here")
                            .tried
                            .insert(responder);
                    }
                }
            }
        }

        // Defensive: the iteration cap was hit (cannot happen on a finite DAG).
        PopReport {
            outcome: Err(PopError::PathExhausted {
                distinct_nodes: owners.len_distinct(),
                required: threshold,
            }),
            path: path.iter().map(Entry::step).collect(),
            distinct_nodes: owners.len_distinct(),
            metrics,
        }
    }

    /// Validates a `RPY_CHILD` header (Algorithm 3, line 21, plus hardening).
    fn check_reply(
        &self,
        responder: NodeId,
        verifying_owner: NodeId,
        verifying_digest: &Digest,
        reply: &ChildReply,
    ) -> bool {
        // Sybil defence: the reply must come from the identity we addressed,
        // and its block must belong to that identity.
        if reply.claimed_owner != responder || reply.block_id.owner != responder {
            return false;
        }
        // The paper's consistency check (line 21):
        // H(b^h_v) == GetDigest(b^h_{j'}, v).
        if reply.header.digest_of(verifying_owner) != Some(*verifying_digest) {
            return false;
        }
        // Hardening: the header must be signed by the registered key of the
        // responder and satisfy the generation puzzle.
        if self.cfg.verify_signatures {
            if !reply.header.verify_signature(&registered_key(responder)) {
                return false;
            }
            if !reply.header.verify_puzzle(self.cfg.difficulty_bits) {
                return false;
            }
        }
        true
    }

    /// Success epilogue: cache every header on the path (line 39).
    fn finish_success(
        &mut self,
        path: Vec<Entry>,
        distinct_nodes: usize,
        metrics: PopMetrics,
    ) -> PopReport {
        let steps: Vec<PathStep> = path.iter().map(Entry::step).collect();
        for entry in path {
            self.trust_cache.insert(TrustedHeader {
                owner: entry.owner,
                block_id: entry.block_id,
                header: entry.header,
            });
        }
        PopReport {
            outcome: Ok(()),
            path: steps,
            distinct_nodes,
            metrics,
        }
    }
}

/// Convenience check mirroring the digest-consistency rule: true when `reply`'s
/// header embeds `digest` for `owner`. Exposed for tests and tooling.
pub fn reply_vouches_for(reply: &ChildReply, owner: NodeId, digest: &Digest) -> bool {
    reply.header.digest_of(owner) == Some(*digest)
}
