//! Weighted Path Selection (Algorithm 1, Sec. IV-A).
//!
//! When the validator needs the next child of verifying block `b_v`, it picks
//! a neighbor of `v` whose *closed neighborhood* overlaps least with the set
//! `R_i` of nodes already on the proof path:
//!
//! ```text
//! w_v̂ = |R_i ∩ (N(v̂) ∪ {v̂})| / (|N(v̂)| + 1)          (Eq. 7)
//! ```
//!
//! The minimum-weight candidate is chosen (Eq. 8); ties are broken in favour
//! of candidates not already in `R_i`, then uniformly at random.

use std::collections::HashSet;
use tldag_sim::{DetRng, NodeId, Topology};

/// The WPS weight of `candidate` given the current path set `ri` (Eq. 7),
/// returned as the exact rational `(numerator, denominator)` to avoid
/// floating-point ties.
pub fn weight(topology: &Topology, candidate: NodeId, ri: &HashSet<NodeId>) -> (usize, usize) {
    let neighbors = topology.neighbors(candidate);
    let mut overlap = neighbors.iter().filter(|n| ri.contains(n)).count();
    if ri.contains(&candidate) {
        overlap += 1;
    }
    (overlap, neighbors.len() + 1)
}

/// The WPS weight as an `f64`, for reporting.
pub fn weight_f64(topology: &Topology, candidate: NodeId, ri: &HashSet<NodeId>) -> f64 {
    let (num, den) = weight(topology, candidate, ri);
    num as f64 / den as f64
}

/// Compares two rational weights `a = an/ad`, `b = bn/bd` exactly.
fn less(a: (usize, usize), b: (usize, usize)) -> bool {
    (a.0 * b.1) < (b.0 * a.1)
}

fn equal(a: (usize, usize), b: (usize, usize)) -> bool {
    (a.0 * b.1) == (b.0 * a.1)
}

/// Selects the next responder among `candidates` (Algorithm 1).
///
/// Sec. IV-A's case analysis: a candidate already in `R_i` "does not
/// contribute to the consensus", so **case 1** restricts the choice to
/// candidates outside `R_i`; only when every neighbor is already in `R_i`
/// (**case 2**, the micro-loop situation of Fig. 6) does the path revisit a
/// node. The minimum-weight candidate of the admissible pool wins (Eq. 8);
/// remaining ties break uniformly at random.
///
/// `candidates` should be the neighbors of the current verifying node that
/// have not been tried and are not excluded; the caller filters. Returns
/// `None` when no candidate remains.
///
/// # Example
///
/// ```
/// use std::collections::HashSet;
/// use tldag_core::pop::wps;
/// use tldag_sim::{DetRng, NodeId, Topology};
///
/// // Fig. 4: B-C, B-D, C-D, A-B, D-E (A=0, B=1, C=2, D=3, E=4).
/// let topo = Topology::from_edges(5, &[(1, 2), (1, 3), (2, 3), (0, 1), (3, 4)]);
/// let ri: HashSet<NodeId> = [NodeId(1)].into();
/// let mut rng = DetRng::seed_from(1);
/// // Verifying B1: the candidate with minimum weight is D.
/// let next = wps::select_next(&topo, &[NodeId(0), NodeId(2), NodeId(3)], &ri, &mut rng);
/// assert_eq!(next, Some(NodeId(3)));
/// ```
pub fn select_next(
    topology: &Topology,
    candidates: &[NodeId],
    ri: &HashSet<NodeId>,
    rng: &mut DetRng,
) -> Option<NodeId> {
    if candidates.is_empty() {
        return None;
    }
    // Case 1: restrict to candidates that can still grow R_i.
    let fresh: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|c| !ri.contains(c))
        .collect();
    // Case 2: all neighbors already in R_i — any choice has the same effect.
    let pool: &[NodeId] = if fresh.is_empty() { candidates } else { &fresh };

    // Z = argmin over the admissible pool (lines 1-4).
    let mut best = weight(topology, pool[0], ri);
    for &c in &pool[1..] {
        let w = weight(topology, c, ri);
        if less(w, best) {
            best = w;
        }
    }
    let z: Vec<NodeId> = pool
        .iter()
        .copied()
        .filter(|&c| equal(weight(topology, c, ri), best))
        .collect();
    if z.len() == 1 {
        return Some(z[0]); // lines 5-7
    }
    rng.choose(&z).copied() // lines 8-13
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 topology: A=0, B=1, C=2, D=3, E=4.
    fn fig4() -> Topology {
        Topology::from_edges(5, &[(1, 2), (1, 3), (2, 3), (0, 1), (3, 4)])
    }

    #[test]
    fn fig4_weights_match_paper_step1() {
        // Verifying B1 with R_i = {B}: w_A = 1/2, w_C = 1/3, w_D = 1/4.
        let topo = fig4();
        let ri: HashSet<NodeId> = [NodeId(1)].into();
        assert_eq!(weight(&topo, NodeId(0), &ri), (1, 2));
        assert_eq!(weight(&topo, NodeId(2), &ri), (1, 3));
        assert_eq!(weight(&topo, NodeId(3), &ri), (1, 4));
        assert!((weight_f64(&topo, NodeId(3), &ri) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fig4_selects_d_then_e() {
        let topo = fig4();
        let mut rng = DetRng::seed_from(7);

        // Step 1: verifying B1, R_i = {B}; candidates N(B) = {A, C, D} → D.
        let ri: HashSet<NodeId> = [NodeId(1)].into();
        let step1 = select_next(&topo, &[NodeId(0), NodeId(2), NodeId(3)], &ri, &mut rng);
        assert_eq!(step1, Some(NodeId(3)), "paper: choose D1");

        // Step 2: verifying D1, R_i = {B, D}; candidates N(D) = {B, C, E}.
        // Paper: w_B = 1/2, w_C = 2/3, w_E = 1/2; tie {B, E}, B ∈ R_i → E.
        let ri: HashSet<NodeId> = [NodeId(1), NodeId(3)].into();
        assert_eq!(weight(&topo, NodeId(1), &ri), (2, 4));
        assert_eq!(weight(&topo, NodeId(2), &ri), (2, 3));
        assert_eq!(weight(&topo, NodeId(4), &ri), (1, 2));
        let step2 = select_next(&topo, &[NodeId(1), NodeId(2), NodeId(4)], &ri, &mut rng);
        assert_eq!(step2, Some(NodeId(4)), "paper: choose E2 because B ∈ R_i");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let topo = fig4();
        let ri = HashSet::new();
        assert_eq!(
            select_next(&topo, &[], &ri, &mut DetRng::seed_from(0)),
            None
        );
    }

    #[test]
    fn all_tied_all_in_ri_selects_any() {
        // Case 2 of Algorithm 1: every candidate in R_i — still returns one.
        let topo = Topology::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let ri: HashSet<NodeId> = [NodeId(0), NodeId(1), NodeId(2)].into();
        let got = select_next(
            &topo,
            &[NodeId(1), NodeId(2)],
            &ri,
            &mut DetRng::seed_from(3),
        );
        assert!(matches!(got, Some(NodeId(1)) | Some(NodeId(2))));
    }

    #[test]
    fn single_candidate_returned_directly() {
        let topo = fig4();
        let ri = HashSet::new();
        assert_eq!(
            select_next(&topo, &[NodeId(2)], &ri, &mut DetRng::seed_from(4)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn tie_break_prefers_fresh_nodes() {
        // Star topology: center 0, leaves 1..=3 all weight-tied.
        let topo = Topology::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let ri: HashSet<NodeId> = [NodeId(0), NodeId(1)].into();
        // leaves 1, 2, 3 have closed neighborhoods {1,0},{2,0},{3,0}:
        // w_1 = 2/2 = 1, w_2 = w_3 = 1/2 → Z = {2, 3}, both outside R_i.
        for seed in 0..10 {
            let got = select_next(
                &topo,
                &[NodeId(1), NodeId(2), NodeId(3)],
                &ri,
                &mut DetRng::seed_from(seed),
            );
            assert!(
                matches!(got, Some(NodeId(2)) | Some(NodeId(3))),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn weight_counts_candidate_itself() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let ri: HashSet<NodeId> = [NodeId(1)].into();
        // Candidate 1: closed neighborhood {1, 0}; R_i ∩ = {1} → 1/2.
        assert_eq!(weight(&topo, NodeId(1), &ri), (1, 2));
        // Candidate 0: closed neighborhood {0, 1}; R_i ∩ = {1} → 1/2.
        assert_eq!(weight(&topo, NodeId(0), &ri), (1, 2));
    }
}
