//! Tokenless IOTA baseline (Sec. VI comparator).
//!
//! Per slot, every IoT node issues one transaction approving two tips of its
//! (full) tangle copy. The transaction floods the physical network so every
//! node can maintain the complete tangle — which is exactly why IOTA's
//! storage grows with the whole network's data rate while 2LDAG's grows only
//! with a node's own.
//!
//! Flooding model: a node forwards a new transaction to every neighbor except
//! the one it first received it from. Over the BFS tree rooted at the issuer
//! this makes tree edges carry one copy and every non-tree edge two, i.e.
//! `2|E| − (|V| − 1)` transmissions per transaction. Per-node totals are
//! derived from the BFS trees, which are precomputed once per topology.

pub mod tangle;
pub mod tips;

pub use tangle::{Tangle, Transaction, TxId};
pub use tips::{select_tips, TipSelection};

use crate::config::BaselineConfig;
use tldag_sim::bus::{Accounting, TrafficClass};
use tldag_sim::engine::Slot;
use tldag_sim::{Bits, DetRng, NodeId, Topology};

/// Precomputed flooding profile for one issuer: per-node send/receive counts
/// for a single transaction.
#[derive(Clone, Debug)]
struct FloodProfile {
    /// Copies node v transmits when flooding from this source.
    sends: Vec<u64>,
    /// Copies node v receives.
    receives: Vec<u64>,
}

impl FloodProfile {
    /// Builds the profile for `source` by BFS over `topology`.
    fn build(topology: &Topology, source: NodeId) -> Self {
        let n = topology.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut order = std::collections::VecDeque::from([source]);
        visited[source.index()] = true;
        while let Some(u) = order.pop_front() {
            for &v in topology.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    parent[v.index()] = Some(u);
                    order.push_back(v);
                }
            }
        }
        // v sends to all neighbors except its parent (the source to all).
        let sends: Vec<u64> = (0..n as u32)
            .map(|i| {
                let id = NodeId(i);
                if !visited[id.index()] {
                    return 0;
                }
                let deg = topology.degree(id) as u64;
                if id == source {
                    deg
                } else {
                    deg - 1
                }
            })
            .collect();
        // v receives a copy from every neighbor u that forwards to it, i.e.
        // every u whose own first-contact (BFS parent) is not v. The source
        // has no parent and therefore sends to all its neighbors.
        let receives: Vec<u64> = (0..n as u32)
            .map(|i| {
                let id = NodeId(i);
                if !visited[id.index()] {
                    return 0;
                }
                topology
                    .neighbors(id)
                    .iter()
                    .filter(|&&u| visited[u.index()] && parent[u.index()] != Some(id))
                    .count() as u64
            })
            .collect();
        FloodProfile { sends, receives }
    }
}

/// The IOTA network simulation.
#[derive(Clone, Debug)]
pub struct IotaNetwork {
    cfg: BaselineConfig,
    topology: Topology,
    tangle: Tangle,
    strategy: TipSelection,
    accounting: Accounting,
    rng: DetRng,
    slot: Slot,
    flood: Vec<FloodProfile>,
}

impl IotaNetwork {
    /// Creates the network with uniform-random tip selection (the storage
    /// and traffic profile does not depend on the strategy).
    pub fn new(cfg: BaselineConfig, topology: Topology, seed: u64) -> Self {
        let flood = topology
            .node_ids()
            .map(|id| FloodProfile::build(&topology, id))
            .collect();
        IotaNetwork {
            cfg,
            tangle: Tangle::new(cfg.iota_tx_bits()),
            strategy: TipSelection::UniformRandom,
            accounting: Accounting::new(topology.len()),
            rng: DetRng::seed_from(seed),
            slot: 0,
            topology,
            flood,
        }
    }

    /// Switches the tip-selection strategy.
    pub fn set_tip_selection(&mut self, strategy: TipSelection) {
        self.strategy = strategy;
    }

    /// The shared tangle (every node stores a copy).
    pub fn tangle(&self) -> &Tangle {
        &self.tangle
    }

    /// The physical topology used for gossip.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Executes one slot: every node issues one transaction and floods it.
    pub fn step(&mut self) {
        let slot = self.slot;
        for i in 0..self.topology.len() as u32 {
            let issuer = NodeId(i);
            let parents = select_tips(
                &self.tangle,
                self.strategy,
                self.cfg.iota_parents,
                &mut self.rng,
            );
            self.tangle
                .attach(issuer, slot, parents, self.cfg.iota_tx_bits());
            self.flood_tx(issuer);
        }
        self.slot += 1;
    }

    /// Runs `k` slots.
    pub fn run_slots(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    fn flood_tx(&mut self, issuer: NodeId) {
        let profile = &self.flood[issuer.index()];
        let tx_bits = self.cfg.iota_tx_bits();
        for i in 0..self.topology.len() as u32 {
            let id = NodeId(i);
            let sends = profile.sends[id.index()];
            let receives = profile.receives[id.index()];
            if sends > 0 {
                self.accounting
                    .record_tx_only(id, TrafficClass::IotaGossip, tx_bits * sends);
            }
            if receives > 0 {
                self.accounting
                    .record_rx_only(id, TrafficClass::IotaGossip, tx_bits * receives);
            }
        }
    }

    /// Current slot.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Per-node storage: the full tangle at every node.
    pub fn storage_bits_per_node(&self) -> Vec<Bits> {
        vec![self.tangle.total_bits(); self.topology.len()]
    }

    /// The accounting ledger.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_sim::topology::TopologyConfig;

    fn net(n: usize, seed: u64) -> IotaNetwork {
        let topo =
            Topology::random_connected(&TopologyConfig::small(n), &mut DetRng::seed_from(seed));
        IotaNetwork::new(BaselineConfig::test_default(), topo, seed)
    }

    #[test]
    fn every_slot_adds_one_tx_per_node() {
        let mut net = net(6, 1);
        net.run_slots(3);
        // Genesis + 6 × 3.
        assert_eq!(net.tangle().len(), 19);
    }

    #[test]
    fn tangle_stays_consistent() {
        let mut net = net(6, 2);
        net.run_slots(5);
        assert!(net.tangle().all_reach_genesis());
    }

    #[test]
    fn storage_is_identical_at_every_node_and_grows() {
        let mut net = net(5, 3);
        net.step();
        let s1 = net.storage_bits_per_node();
        net.step();
        let s2 = net.storage_bits_per_node();
        assert!(s1.iter().all(|&b| b == s1[0]));
        assert!(s2[0] > s1[0]);
        // Whole-tangle storage: genesis + n·slots transactions.
        let expect = net.cfg.iota_tx_bits() * (1 + 5 * 2);
        assert_eq!(s2[0], expect);
    }

    #[test]
    fn flood_transmission_totals_match_closed_form() {
        let mut net = net(7, 4);
        let e = net.topology().edge_count() as u64;
        let n = net.topology().len() as u64;
        net.step();
        // Per tx: 2|E| − (n−1) transmissions; per slot: n txs. The accounting
        // counts each transmission at both endpoints (tx + rx)... rx side may
        // differ: every transmission is received by exactly one node.
        let sends_per_tx = 2 * e - (n - 1);
        let total = net.accounting().network_total(TrafficClass::IotaGossip);
        let expect = net.cfg.iota_tx_bits().bits() * sends_per_tx * 2 * n;
        assert_eq!(total.bits(), expect);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = net(6, 9);
        let mut b = net(6, 9);
        a.run_slots(4);
        b.run_slots(4);
        assert_eq!(a.tangle().len(), b.tangle().len());
        assert_eq!(
            a.accounting().network_total(TrafficClass::IotaGossip),
            b.accounting().network_total(TrafficClass::IotaGossip)
        );
    }
}
