//! Tip selection strategies.
//!
//! IOTA's whitepaper describes uniform-random tip selection and the
//! weighted random walk (MCMC) biased by cumulative weight with parameter
//! `α`. The storage/communication profile measured in Figs. 7–8 is
//! independent of the strategy, but the walk is implemented (and tested)
//! because it is the part of IOTA that gives the tangle its convergence
//! properties.

use crate::iota::tangle::{Tangle, TxId};
use tldag_sim::DetRng;

/// How an issuer picks the transactions to approve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TipSelection {
    /// Uniform over the current tip set.
    UniformRandom,
    /// Weighted random walk from genesis: step to child `c` with probability
    /// ∝ `exp(α · w_c)` where `w` is the (approximate) cumulative weight.
    WeightedWalk {
        /// Bias strength; `0.0` degenerates to an unweighted walk.
        alpha: f64,
    },
}

/// Selects `k` parents (with replacement collapsed, so between 1 and `k`
/// distinct ids, as in IOTA where both walks may end at the same tip).
pub fn select_tips(
    tangle: &Tangle,
    strategy: TipSelection,
    k: usize,
    rng: &mut DetRng,
) -> Vec<TxId> {
    let mut parents = Vec::with_capacity(k);
    let weights = match strategy {
        TipSelection::WeightedWalk { .. } => Some(tangle.cumulative_weights_approx()),
        TipSelection::UniformRandom => None,
    };
    for _ in 0..k {
        let tip = match strategy {
            TipSelection::UniformRandom => {
                let tips = tangle.tips();
                *rng.choose(&tips).expect("tangle always has a tip")
            }
            TipSelection::WeightedWalk { alpha } => walk(
                tangle,
                weights.as_deref().expect("weights computed"),
                alpha,
                rng,
            ),
        };
        if !parents.contains(&tip) {
            parents.push(tip);
        }
    }
    parents
}

/// One biased random walk from genesis to a tip.
fn walk(tangle: &Tangle, weights: &[u64], alpha: f64, rng: &mut DetRng) -> TxId {
    let mut at = TxId::GENESIS;
    loop {
        let children = tangle.children(at);
        if children.is_empty() {
            return at;
        }
        if children.len() == 1 {
            at = children[0];
            continue;
        }
        // Subtract the max weight before exponentiating for stability.
        let max_w = children
            .iter()
            .map(|c| weights[c.index()])
            .max()
            .expect("non-empty children");
        let scores: Vec<f64> = children
            .iter()
            .map(|c| (alpha * (weights[c.index()] as f64 - max_w as f64)).exp())
            .collect();
        let total: f64 = scores.iter().sum();
        let mut pick = rng.unit_f64() * total;
        let mut chosen = children[children.len() - 1];
        for (child, score) in children.iter().zip(&scores) {
            if pick < *score {
                chosen = *child;
                break;
            }
            pick -= score;
        }
        at = chosen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_sim::{Bits, NodeId};

    fn tangle_with_chain_and_orphan() -> (Tangle, TxId, TxId) {
        // Genesis ← heavy chain of 10 txs; plus one orphan branch of 1 tx.
        let bits = Bits::from_bytes(10);
        let mut tangle = Tangle::new(bits);
        let mut prev = TxId::GENESIS;
        for i in 0..10u32 {
            prev = tangle.attach(NodeId(1), u64::from(i), vec![prev], bits);
        }
        let orphan = tangle.attach(NodeId(2), 1, vec![TxId::GENESIS], bits);
        (tangle, prev, orphan)
    }

    #[test]
    fn uniform_returns_current_tips() {
        let (tangle, heavy_tip, orphan) = tangle_with_chain_and_orphan();
        let mut rng = DetRng::seed_from(1);
        for _ in 0..20 {
            let tips = select_tips(&tangle, TipSelection::UniformRandom, 2, &mut rng);
            assert!(!tips.is_empty() && tips.len() <= 2);
            for t in &tips {
                assert!(*t == heavy_tip || *t == orphan);
            }
        }
    }

    #[test]
    fn strong_bias_prefers_heavy_branch() {
        let (tangle, heavy_tip, _) = tangle_with_chain_and_orphan();
        let mut rng = DetRng::seed_from(2);
        let mut heavy_hits = 0;
        for _ in 0..100 {
            let tips = select_tips(
                &tangle,
                TipSelection::WeightedWalk { alpha: 5.0 },
                1,
                &mut rng,
            );
            if tips[0] == heavy_tip {
                heavy_hits += 1;
            }
        }
        assert!(
            heavy_hits > 95,
            "alpha=5 should almost always pick the heavy chain, got {heavy_hits}"
        );
    }

    #[test]
    fn zero_alpha_visits_both_branches() {
        let (tangle, heavy_tip, orphan) = tangle_with_chain_and_orphan();
        let mut rng = DetRng::seed_from(3);
        let mut seen_heavy = false;
        let mut seen_orphan = false;
        for _ in 0..200 {
            let tips = select_tips(
                &tangle,
                TipSelection::WeightedWalk { alpha: 0.0 },
                1,
                &mut rng,
            );
            seen_heavy |= tips[0] == heavy_tip;
            seen_orphan |= tips[0] == orphan;
        }
        assert!(seen_heavy && seen_orphan);
    }

    #[test]
    fn walks_end_at_tips() {
        let (tangle, _, _) = tangle_with_chain_and_orphan();
        let mut rng = DetRng::seed_from(4);
        for _ in 0..50 {
            let tips = select_tips(
                &tangle,
                TipSelection::WeightedWalk { alpha: 0.5 },
                2,
                &mut rng,
            );
            for t in tips {
                assert!(tangle.children(t).is_empty(), "{t:?} is not a tip");
            }
        }
    }

    #[test]
    fn duplicate_tips_collapse() {
        // Single-tip tangle: both walks end at the same place → one parent.
        let bits = Bits::from_bytes(10);
        let mut tangle = Tangle::new(bits);
        let only = tangle.attach(NodeId(1), 1, vec![TxId::GENESIS], bits);
        let mut rng = DetRng::seed_from(5);
        let tips = select_tips(&tangle, TipSelection::UniformRandom, 2, &mut rng);
        assert_eq!(tips, vec![only]);
    }
}
