//! The Tangle: IOTA's transaction DAG.
//!
//! Every transaction approves `k` (normally two) previous transactions; a
//! **tip** is a transaction with no approvers yet. Every node stores the
//! entire tangle — the very property whose cost Fig. 7 measures.

use std::collections::HashSet;
use tldag_sim::engine::Slot;
use tldag_sim::{Bits, NodeId};

/// Index of a transaction within the tangle (0 = genesis).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxId(pub u32);

impl TxId {
    /// The genesis transaction id.
    pub const GENESIS: TxId = TxId(0);

    /// Index into the tangle's transaction list.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// This transaction's id.
    pub id: TxId,
    /// Node that issued it.
    pub issuer: NodeId,
    /// Slot in which it was issued.
    pub slot: Slot,
    /// Approved transactions (empty only for genesis).
    pub parents: Vec<TxId>,
    /// Wire/storage size.
    pub bits: Bits,
}

/// The append-only tangle.
#[derive(Clone, Debug)]
pub struct Tangle {
    txs: Vec<Transaction>,
    /// children[i] = approvers of transaction i.
    children: Vec<Vec<TxId>>,
    tips: HashSet<TxId>,
}

impl Tangle {
    /// Creates a tangle containing only the genesis transaction.
    pub fn new(genesis_bits: Bits) -> Self {
        let genesis = Transaction {
            id: TxId::GENESIS,
            issuer: NodeId(0),
            slot: 0,
            parents: Vec::new(),
            bits: genesis_bits,
        };
        Tangle {
            txs: vec![genesis],
            children: vec![Vec::new()],
            tips: [TxId::GENESIS].into(),
        }
    }

    /// Number of transactions including genesis.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True only before genesis exists (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// A transaction by id.
    pub fn get(&self, id: TxId) -> Option<&Transaction> {
        self.txs.get(id.index())
    }

    /// Current tips (no approvers), in ascending id order.
    pub fn tips(&self) -> Vec<TxId> {
        let mut tips: Vec<TxId> = self.tips.iter().copied().collect();
        tips.sort_unstable();
        tips
    }

    /// Direct approvers of `id`.
    pub fn children(&self, id: TxId) -> &[TxId] {
        &self.children[id.index()]
    }

    /// Appends a transaction approving `parents`.
    ///
    /// # Panics
    ///
    /// Panics if `parents` is empty or references an unknown transaction —
    /// issuers select tips from their (full) local tangle copy, so a
    /// dangling approval is a programming error in the simulation.
    pub fn attach(&mut self, issuer: NodeId, slot: Slot, parents: Vec<TxId>, bits: Bits) -> TxId {
        assert!(!parents.is_empty(), "a transaction must approve parents");
        for p in &parents {
            assert!(p.index() < self.txs.len(), "unknown parent {p:?}");
        }
        let id = TxId(self.txs.len() as u32);
        for p in &parents {
            self.children[p.index()].push(id);
            self.tips.remove(p);
        }
        self.tips.insert(id);
        self.children.push(Vec::new());
        self.txs.push(Transaction {
            id,
            issuer,
            slot,
            parents,
            bits,
        });
        id
    }

    /// Total storage of the full tangle (what **every** IOTA node keeps).
    pub fn total_bits(&self) -> Bits {
        self.txs.iter().map(|t| t.bits).sum()
    }

    /// Exact number of transactions that directly or transitively approve
    /// `id` (its descendant count), via BFS.
    pub fn descendant_count(&self, id: TxId) -> usize {
        let mut seen = HashSet::new();
        let mut queue = vec![id];
        while let Some(cur) = queue.pop() {
            for &child in self.children(cur) {
                if seen.insert(child) {
                    queue.push(child);
                }
            }
        }
        seen.len()
    }

    /// Cumulative weights (1 + descendant count) for every transaction,
    /// computed by the standard DP approximation over the reverse topological
    /// order (append order is topological). Diamond shapes are over-counted,
    /// as in common IOTA implementations; the exact value is available via
    /// [`Self::descendant_count`].
    pub fn cumulative_weights_approx(&self) -> Vec<u64> {
        let mut w = vec![1u64; self.txs.len()];
        for i in (0..self.txs.len()).rev() {
            for child in &self.children[i] {
                w[i] = w[i].saturating_add(w[child.index()]);
            }
        }
        w
    }

    /// Whether every non-genesis transaction transitively approves genesis
    /// (tangle consistency invariant).
    pub fn all_reach_genesis(&self) -> bool {
        self.txs.iter().skip(1).all(|tx| {
            let mut stack = tx.parents.clone();
            let mut seen = HashSet::new();
            while let Some(p) = stack.pop() {
                if p == TxId::GENESIS {
                    return true;
                }
                if seen.insert(p) {
                    stack.extend(self.txs[p.index()].parents.iter().copied());
                }
            }
            false
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits() -> Bits {
        Bits::from_bytes(100)
    }

    #[test]
    fn genesis_is_initial_tip() {
        let tangle = Tangle::new(bits());
        assert_eq!(tangle.len(), 1);
        assert_eq!(tangle.tips(), vec![TxId::GENESIS]);
    }

    #[test]
    fn attach_replaces_tips() {
        let mut tangle = Tangle::new(bits());
        let a = tangle.attach(NodeId(1), 1, vec![TxId::GENESIS], bits());
        assert_eq!(tangle.tips(), vec![a]);
        let b = tangle.attach(NodeId(2), 1, vec![TxId::GENESIS], bits());
        // Genesis already had an approver; b approves it again.
        let mut tips = tangle.tips();
        tips.sort_unstable();
        assert_eq!(tips, vec![a, b]);
    }

    #[test]
    fn attach_two_parents_clears_both() {
        let mut tangle = Tangle::new(bits());
        let a = tangle.attach(NodeId(1), 1, vec![TxId::GENESIS], bits());
        let b = tangle.attach(NodeId(2), 1, vec![TxId::GENESIS], bits());
        let c = tangle.attach(NodeId(3), 2, vec![a, b], bits());
        assert_eq!(tangle.tips(), vec![c]);
        assert_eq!(tangle.children(a), &[c]);
        assert_eq!(tangle.children(b), &[c]);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn dangling_parent_rejected() {
        let mut tangle = Tangle::new(bits());
        tangle.attach(NodeId(1), 1, vec![TxId(99)], bits());
    }

    #[test]
    #[should_panic(expected = "must approve parents")]
    fn empty_parents_rejected() {
        let mut tangle = Tangle::new(bits());
        tangle.attach(NodeId(1), 1, vec![], bits());
    }

    #[test]
    fn total_bits_accumulates() {
        let mut tangle = Tangle::new(bits());
        tangle.attach(NodeId(1), 1, vec![TxId::GENESIS], bits());
        assert_eq!(tangle.total_bits(), bits() * 2);
    }

    #[test]
    fn descendant_count_is_exact_on_diamond() {
        let mut tangle = Tangle::new(bits());
        let a = tangle.attach(NodeId(1), 1, vec![TxId::GENESIS], bits());
        let b = tangle.attach(NodeId(2), 1, vec![TxId::GENESIS], bits());
        let c = tangle.attach(NodeId(3), 2, vec![a, b], bits());
        // Genesis is approved by a, b, c — exactly 3 descendants.
        assert_eq!(tangle.descendant_count(TxId::GENESIS), 3);
        assert_eq!(tangle.descendant_count(c), 0);
        // The DP approximation double-counts c through the diamond.
        let w = tangle.cumulative_weights_approx();
        assert_eq!(w[TxId::GENESIS.index()], 5); // 1 + (1+1) + (1+1)
    }

    #[test]
    fn all_reach_genesis_invariant() {
        let mut tangle = Tangle::new(bits());
        let mut prev = TxId::GENESIS;
        for i in 0..10 {
            prev = tangle.attach(NodeId(i % 3), u64::from(i), vec![prev], bits());
        }
        assert!(tangle.all_reach_genesis());
    }
}
