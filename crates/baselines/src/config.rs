//! Shared configuration for the baseline ledgers.
//!
//! Block sizes reuse the paper's field model (`f_H = f_s = 256`,
//! `f_v = f_t = f_n = 32`, body `C`) so storage/communication numbers are
//! directly comparable with 2LDAG's.

use tldag_sim::Bits;

/// Configuration shared by the PBFT and IOTA baselines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineConfig {
    /// Block/transaction body size `C` in bits.
    pub body_bits: u64,
    /// Hash size in bits (`f_H`).
    pub f_h: u64,
    /// Signature size in bits (`f_s`).
    pub f_s: u64,
    /// Constant header overhead in bits (version + time + nonce, etc.).
    pub header_const_bits: u64,
    /// Framing overhead per message in bits.
    pub framing_bits: u64,
    /// Number of parents an IOTA transaction approves.
    pub iota_parents: usize,
}

impl BaselineConfig {
    /// The paper's evaluation parameters with `C = 0.5` MB.
    pub fn paper_default() -> Self {
        BaselineConfig {
            body_bits: Bits::from_megabytes_f(0.5).bits(),
            f_h: 256,
            f_s: 256,
            header_const_bits: 96, // version + time + nonce, as in Fig. 2
            framing_bits: 64,
            iota_parents: 2,
        }
    }

    /// Tiny bodies for fast unit tests.
    pub fn test_default() -> Self {
        BaselineConfig {
            body_bits: Bits::from_bytes(256).bits(),
            ..Self::paper_default()
        }
    }

    /// Sets the body size `C`.
    #[must_use]
    pub fn with_body_bits(mut self, bits: u64) -> Self {
        self.body_bits = bits;
        self
    }

    /// Size of a full block/transaction on the wire or on disk:
    /// constant header + root hash + signature + body.
    pub fn block_bits(&self) -> Bits {
        Bits::from_bits(self.header_const_bits + self.f_h + self.f_s + self.body_bits)
    }

    /// Size of a PBFT `PRE-PREPARE` (carries the full block).
    pub fn pre_prepare_bits(&self) -> Bits {
        self.block_bits() + Bits::from_bits(self.framing_bits)
    }

    /// Size of a PBFT `PREPARE`/`COMMIT` vote (digest + signature).
    pub fn vote_bits(&self) -> Bits {
        Bits::from_bits(self.f_h + self.f_s + self.framing_bits)
    }

    /// Size of a PBFT `VIEW-CHANGE` message (simplified: digest + signature).
    pub fn view_change_bits(&self) -> Bits {
        Bits::from_bits(self.f_h + self.f_s + self.framing_bits)
    }

    /// Size of an IOTA transaction on the wire: block + two parent hashes.
    pub fn iota_tx_bits(&self) -> Bits {
        self.block_bits() + Bits::from_bits(self.f_h * self.iota_parents as u64 + self.framing_bits)
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_scales_with_body() {
        let small = BaselineConfig::paper_default().with_body_bits(1_000);
        let large = BaselineConfig::paper_default().with_body_bits(8_000_000);
        assert!(large.block_bits() > small.block_bits());
        assert_eq!(
            large.block_bits().bits() - small.block_bits().bits(),
            8_000_000 - 1_000
        );
    }

    #[test]
    fn votes_are_much_smaller_than_blocks() {
        let cfg = BaselineConfig::paper_default();
        assert!(cfg.vote_bits().bits() * 100 < cfg.pre_prepare_bits().bits());
    }

    #[test]
    fn iota_tx_adds_parent_references() {
        let cfg = BaselineConfig::paper_default();
        assert_eq!(
            cfg.iota_tx_bits().bits(),
            cfg.block_bits().bits() + 2 * 256 + 64
        );
    }
}
