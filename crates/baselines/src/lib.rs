//! # tldag-baselines — PBFT and IOTA comparators for the 2LDAG evaluation
//!
//! The paper (Sec. VI) compares 2LDAG's storage and communication overhead
//! against two proactive-consensus ledgers:
//!
//! * **PBFT blockchain** ([`pbft`]) — Castro–Liskov three-phase replication.
//!   Every IoT node is a replica; every generated data block runs through
//!   pre-prepare → prepare → commit and is appended to a chain replicated at
//!   *every* node. Storage grows with the whole network's data; communication
//!   is `O(n²)` small messages plus an `O(n)` block broadcast per block.
//! * **Tokenless IOTA / Tangle** ([`iota`]) — each transaction approves two
//!   tips; every node stores the entire tangle, and every transaction floods
//!   the physical network.
//!
//! Both implement the [`LedgerSim`] trait so the bench harness can sweep all
//! three systems (including [`tldag_core::network::TldagNetwork`]) uniformly.
//!
//! # Example
//!
//! ```
//! use tldag_baselines::ledger::LedgerSim;
//! use tldag_baselines::pbft::PbftNetwork;
//! use tldag_baselines::BaselineConfig;
//! use tldag_sim::topology::{Topology, TopologyConfig};
//! use tldag_sim::DetRng;
//!
//! let mut rng = DetRng::seed_from(3);
//! let topo = Topology::random_connected(&TopologyConfig::small(8), &mut rng);
//! let mut pbft = PbftNetwork::new(BaselineConfig::test_default(), topo, 3);
//! pbft.step();
//! // Every replica stores every block generated in the slot.
//! let per_node = pbft.storage_bits_per_node();
//! assert!(per_node.iter().all(|b| *b == per_node[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod iota;
pub mod ledger;
pub mod pbft;

pub use config::BaselineConfig;
pub use ledger::LedgerSim;
