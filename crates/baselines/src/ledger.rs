//! A uniform interface over the three ledgers so the evaluation harness can
//! sweep them identically (Figs. 7–8 plot all three on shared axes).

use crate::iota::IotaNetwork;
use crate::pbft::PbftNetwork;
use tldag_core::network::TldagNetwork;
use tldag_sim::bus::Accounting;
use tldag_sim::engine::Slot;
use tldag_sim::Bits;

/// A slotted ledger simulation with storage/communication accounting.
pub trait LedgerSim {
    /// Short system name for report rows ("2LDAG", "PBFT", "IOTA").
    fn name(&self) -> &'static str;

    /// Executes one time slot.
    fn step(&mut self);

    /// The next slot to execute (= slots executed so far).
    fn slot(&self) -> Slot;

    /// Per-node logical storage.
    fn storage_bits_per_node(&self) -> Vec<Bits>;

    /// Traffic accounting so far.
    fn accounting(&self) -> &Accounting;

    /// Runs `k` slots.
    fn run_slots(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Mean per-node storage in MB (the Fig. 7 y-axis).
    fn mean_storage_mb(&self) -> f64 {
        let per_node = self.storage_bits_per_node();
        if per_node.is_empty() {
            return 0.0;
        }
        per_node.iter().map(|b| b.as_megabytes()).sum::<f64>() / per_node.len() as f64
    }
}

impl LedgerSim for TldagNetwork {
    fn name(&self) -> &'static str {
        "2LDAG"
    }

    fn step(&mut self) {
        TldagNetwork::step(self);
    }

    fn slot(&self) -> Slot {
        TldagNetwork::slot(self)
    }

    fn storage_bits_per_node(&self) -> Vec<Bits> {
        TldagNetwork::storage_bits_per_node(self)
    }

    fn accounting(&self) -> &Accounting {
        TldagNetwork::accounting(self)
    }
}

impl LedgerSim for PbftNetwork {
    fn name(&self) -> &'static str {
        "PBFT"
    }

    fn step(&mut self) {
        PbftNetwork::step(self);
    }

    fn slot(&self) -> Slot {
        PbftNetwork::slot(self)
    }

    fn storage_bits_per_node(&self) -> Vec<Bits> {
        PbftNetwork::storage_bits_per_node(self)
    }

    fn accounting(&self) -> &Accounting {
        PbftNetwork::accounting(self)
    }
}

impl LedgerSim for IotaNetwork {
    fn name(&self) -> &'static str {
        "IOTA"
    }

    fn step(&mut self) {
        IotaNetwork::step(self);
    }

    fn slot(&self) -> Slot {
        IotaNetwork::slot(self)
    }

    fn storage_bits_per_node(&self) -> Vec<Bits> {
        IotaNetwork::storage_bits_per_node(self)
    }

    fn accounting(&self) -> &Accounting {
        IotaNetwork::accounting(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineConfig;
    use tldag_core::config::ProtocolConfig;
    use tldag_sim::engine::GenerationSchedule;
    use tldag_sim::topology::{Topology, TopologyConfig};
    use tldag_sim::DetRng;

    fn topo(seed: u64) -> Topology {
        Topology::random_connected(&TopologyConfig::small(8), &mut DetRng::seed_from(seed))
    }

    fn all_three(seed: u64) -> Vec<Box<dyn LedgerSim>> {
        let t = topo(seed);
        let tldag = TldagNetwork::new(
            ProtocolConfig::test_default(),
            t.clone(),
            GenerationSchedule::uniform(t.len()),
            seed,
        );
        let pbft = PbftNetwork::new(BaselineConfig::test_default(), t.clone(), seed);
        let iota = IotaNetwork::new(BaselineConfig::test_default(), t, seed);
        vec![Box::new(tldag), Box::new(pbft), Box::new(iota)]
    }

    #[test]
    fn trait_objects_drive_all_three_systems() {
        for mut ledger in all_three(5) {
            ledger.run_slots(4);
            assert_eq!(ledger.slot(), 4, "{}", ledger.name());
            assert!(ledger.mean_storage_mb() > 0.0, "{}", ledger.name());
        }
    }

    #[test]
    fn tldag_stores_less_than_replicated_ledgers() {
        let mut ledgers = all_three(6);
        for ledger in &mut ledgers {
            ledger.run_slots(10);
        }
        let storage: Vec<f64> = ledgers.iter().map(|l| l.mean_storage_mb()).collect();
        let (tldag, pbft, iota) = (storage[0], storage[1], storage[2]);
        assert!(
            tldag < pbft / 4.0,
            "2LDAG {tldag} MB should be well below PBFT {pbft} MB"
        );
        assert!(
            tldag < iota / 4.0,
            "2LDAG {tldag} MB should be well below IOTA {iota} MB"
        );
    }
}
