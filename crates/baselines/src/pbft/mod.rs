//! PBFT blockchain baseline (Sec. VI comparator).
//!
//! Two layers:
//!
//! * [`replica`]/[`cluster`] — a message-driven PBFT state machine with
//!   views, quorums, and crash-fault handling, used by protocol tests.
//! * [`PbftNetwork`] — the experiment-scale model: per slot, every IoT node's
//!   block runs through the three-phase protocol and is appended to a chain
//!   replicated at **every** node. Message counts per phase are identical to
//!   the cluster's happy path but accounted in `O(n)` aggregate operations,
//!   which is what makes 50-node × 200-slot sweeps instant.

pub mod cluster;
pub mod messages;
pub mod replica;

pub use cluster::PbftCluster;
pub use messages::{BlockMeta, PbftMessage};
pub use replica::Replica;

use crate::config::BaselineConfig;
use tldag_crypto::sha256::Sha256;
use tldag_sim::bus::{Accounting, TrafficClass};
use tldag_sim::engine::Slot;
use tldag_sim::{Bits, NodeId, Topology};

/// The experiment-scale PBFT network.
///
/// Every IoT node is a PBFT replica; the view-0 primary (`n0`) orders all
/// blocks. Happy-path phase traffic per committed block (n replicas):
///
/// * request: proposer → primary (full block),
/// * pre-prepare: primary → n−1 replicas (full block each),
/// * prepare: n−1 non-primaries broadcast a vote to n−1 peers,
/// * commit: all n replicas broadcast a vote to n−1 peers,
/// * storage: every replica appends the block.
#[derive(Clone, Debug)]
pub struct PbftNetwork {
    cfg: BaselineConfig,
    n: usize,
    accounting: Accounting,
    slot: Slot,
    /// Total committed chain size; identical at every replica.
    chain_bits: Bits,
    blocks_committed: u64,
    seed: u64,
}

impl PbftNetwork {
    /// Creates the network. The `topology` fixes the node count; PBFT itself
    /// communicates over a full overlay, as replicated ledgers do.
    pub fn new(cfg: BaselineConfig, topology: Topology, seed: u64) -> Self {
        PbftNetwork {
            cfg,
            n: topology.len(),
            accounting: Accounting::new(topology.len()),
            slot: 0,
            chain_bits: Bits::ZERO,
            blocks_committed: 0,
            seed,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no replicas.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The view-0 primary.
    pub fn primary(&self) -> NodeId {
        NodeId(0)
    }

    /// Executes one slot: every node proposes one block; all commit.
    pub fn step(&mut self) {
        let slot = self.slot;
        for proposer_idx in 0..self.n as u32 {
            let proposer = NodeId(proposer_idx);
            let mut h = Sha256::new();
            h.update(b"pbft-block");
            h.update(&self.seed.to_be_bytes());
            h.update(&proposer_idx.to_be_bytes());
            h.update(&slot.to_be_bytes());
            let digest = h.finalize();
            let block = BlockMeta {
                proposer,
                slot,
                digest,
                bits: self.cfg.block_bits(),
            };
            self.commit_instance(block);
        }
        self.slot += 1;
    }

    /// Runs `k` slots.
    pub fn run_slots(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Accounts one happy-path consensus instance and appends the block.
    fn commit_instance(&mut self, block: BlockMeta) {
        let n = self.n as u64;
        let primary = self.primary();
        let request = block.bits + Bits::from_bits(self.cfg.framing_bits);
        let pre_prepare = self.cfg.pre_prepare_bits();
        let vote = self.cfg.vote_bits();

        // Request: proposer → primary.
        if block.proposer != primary {
            self.accounting
                .record(block.proposer, primary, TrafficClass::Pbft, request);
        }
        // Pre-prepare: primary → everyone else.
        self.accounting
            .record_tx_only(primary, TrafficClass::Pbft, pre_prepare * (n - 1));
        for i in 0..self.n as u32 {
            let id = NodeId(i);
            if id != primary {
                self.accounting
                    .record_rx_only(id, TrafficClass::Pbft, pre_prepare);
            }
        }
        // Prepare: every non-primary broadcasts to n−1 peers; a replica
        // receives one prepare from every sender except itself.
        let prepare_senders = n - 1;
        for i in 0..self.n as u32 {
            let id = NodeId(i);
            let is_sender = id != primary;
            if is_sender {
                self.accounting
                    .record_tx_only(id, TrafficClass::Pbft, vote * (n - 1));
            }
            let received = prepare_senders - u64::from(is_sender);
            self.accounting
                .record_rx_only(id, TrafficClass::Pbft, vote * received);
        }
        // Commit: all n broadcast to n−1 peers.
        for i in 0..self.n as u32 {
            let id = NodeId(i);
            self.accounting
                .record_tx_only(id, TrafficClass::Pbft, vote * (n - 1));
            self.accounting
                .record_rx_only(id, TrafficClass::Pbft, vote * (n - 1));
        }
        // Every replica appends the block.
        self.chain_bits += block.bits;
        self.blocks_committed += 1;
    }

    /// Commits a single externally built block through the aggregate model.
    /// Exposed so consistency tests can compare this accounting against the
    /// message-driven [`PbftCluster`] byte-for-byte.
    pub fn commit_block_for_test(&mut self, block: BlockMeta) {
        self.commit_instance(block);
    }

    /// Current slot count.
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Total committed blocks.
    pub fn blocks_committed(&self) -> u64 {
        self.blocks_committed
    }

    /// Per-node storage: the full replicated chain at every node.
    pub fn storage_bits_per_node(&self) -> Vec<Bits> {
        vec![self.chain_bits; self.n]
    }

    /// The accounting ledger.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_sim::topology::TopologyConfig;
    use tldag_sim::DetRng;

    fn topo(n: usize) -> Topology {
        Topology::random_connected(&TopologyConfig::small(n), &mut DetRng::seed_from(1))
    }

    #[test]
    fn every_replica_stores_every_block() {
        let cfg = BaselineConfig::test_default();
        let mut net = PbftNetwork::new(cfg, topo(5), 1);
        net.run_slots(3);
        assert_eq!(net.blocks_committed(), 15);
        let per_node = net.storage_bits_per_node();
        assert_eq!(per_node.len(), 5);
        let expect = cfg.block_bits() * 15;
        assert!(per_node.iter().all(|&b| b == expect));
    }

    #[test]
    fn aggregate_accounting_matches_message_driven_cluster() {
        // One block through the real cluster vs the aggregate model must
        // produce identical per-node byte totals.
        let cfg = BaselineConfig::test_default();
        let n = 4;

        let mut cluster = PbftCluster::new(cfg, n);
        let block = BlockMeta {
            proposer: NodeId(2),
            slot: 0,
            digest: tldag_crypto::Digest::from_bytes([7; 32]),
            bits: cfg.block_bits(),
        };
        assert!(cluster.submit(NodeId(2), block));

        let mut net = PbftNetwork::new(cfg, topo(n), 1);
        net.commit_instance(block);

        for i in 0..n as u32 {
            let id = NodeId(i);
            assert_eq!(
                cluster.accounting().tx(id, TrafficClass::Pbft),
                net.accounting().tx(id, TrafficClass::Pbft),
                "tx mismatch at {id}"
            );
            assert_eq!(
                cluster.accounting().rx(id, TrafficClass::Pbft),
                net.accounting().rx(id, TrafficClass::Pbft),
                "rx mismatch at {id}"
            );
        }
    }

    #[test]
    fn block_broadcast_dominates_traffic_at_large_bodies() {
        let cfg = BaselineConfig::paper_default();
        let mut net = PbftNetwork::new(cfg, topo(8), 1);
        net.step();
        let total = net.accounting().network_total(TrafficClass::Pbft);
        // 8 proposals × pre-prepare to 7 replicas ≈ 56 block transmissions
        // (× 2 for tx+rx accounting); votes are negligible at C = 0.5 MB.
        let block_traffic = cfg.pre_prepare_bits().bits() * 56 * 2;
        assert!(total.bits() > block_traffic);
        assert!(total.bits() < block_traffic + block_traffic / 4);
    }

    #[test]
    fn deterministic_digests_per_seed() {
        let cfg = BaselineConfig::test_default();
        let mut a = PbftNetwork::new(cfg, topo(4), 9);
        let mut b = PbftNetwork::new(cfg, topo(4), 9);
        a.step();
        b.step();
        assert_eq!(
            a.accounting().network_total(TrafficClass::Pbft),
            b.accounting().network_total(TrafficClass::Pbft)
        );
    }
}
