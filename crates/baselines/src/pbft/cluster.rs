//! A message-driven PBFT cluster for protocol-correctness tests.
//!
//! Wires [`Replica`]s together through an in-memory queue with full byte
//! accounting. Faulty replicas can be silenced (crash faults) to exercise
//! quorum margins and view changes. The experiment-scale model
//! ([`crate::pbft::PbftNetwork`]) shares the same message-size definitions
//! but accounts phases in aggregate; `consistency` tests in the workspace
//! assert the two agree.

use crate::config::BaselineConfig;
use crate::pbft::messages::{BlockMeta, Destination, PbftMessage};
use crate::pbft::replica::Replica;
use std::collections::VecDeque;
use tldag_sim::bus::{Accounting, TrafficClass};
use tldag_sim::NodeId;

/// An in-memory PBFT cluster.
#[derive(Clone, Debug)]
pub struct PbftCluster {
    cfg: BaselineConfig,
    replicas: Vec<Replica>,
    silenced: Vec<bool>,
    accounting: Accounting,
    queue: VecDeque<(NodeId, NodeId, PbftMessage)>,
}

impl PbftCluster {
    /// Creates a cluster of `n` replicas.
    pub fn new(cfg: BaselineConfig, n: usize) -> Self {
        PbftCluster {
            cfg,
            replicas: (0..n as u32).map(|i| Replica::new(NodeId(i), n)).collect(),
            silenced: vec![false; n],
            accounting: Accounting::new(n),
            queue: VecDeque::new(),
        }
    }

    /// Crash-faults a replica: it neither sends nor processes messages.
    pub fn silence(&mut self, id: NodeId) {
        self.silenced[id.index()] = true;
    }

    /// Read access to a replica.
    pub fn replica(&self, id: NodeId) -> &Replica {
        &self.replicas[id.index()]
    }

    /// The accounting ledger.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Submits a client block to the current primary and drives the cluster
    /// to quiescence. Returns `true` when a quorum of live replicas committed
    /// the block.
    pub fn submit(&mut self, client: NodeId, block: BlockMeta) -> bool {
        let primary = self.replicas[0].primary_of(self.current_view());
        self.enqueue(client, primary, PbftMessage::Request { block });
        self.run_to_quiescence();
        let committed = self
            .replicas
            .iter()
            .zip(&self.silenced)
            .filter(|(r, &s)| !s && r.has_committed(&block.digest))
            .count();
        committed > 2 * self.replicas[0].f()
    }

    /// Triggers a view change from every live replica (used when the primary
    /// is silenced) and drives it to completion.
    pub fn force_view_change(&mut self) {
        let ids: Vec<NodeId> = (0..self.replicas.len() as u32).map(NodeId).collect();
        for id in ids {
            if self.silenced[id.index()] {
                continue;
            }
            let out = self.replicas[id.index()].suspect_primary();
            self.dispatch(id, out);
        }
        self.run_to_quiescence();
    }

    /// The view agreed by the (first live) replica.
    pub fn current_view(&self) -> u64 {
        self.replicas
            .iter()
            .zip(&self.silenced)
            .find(|(_, &s)| !s)
            .map(|(r, _)| r.view())
            .unwrap_or(0)
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: PbftMessage) {
        self.accounting
            .record(from, to, TrafficClass::Pbft, msg.bits(&self.cfg));
        self.queue.push_back((from, to, msg));
    }

    fn dispatch(&mut self, from: NodeId, outbound: Vec<(Destination, PbftMessage)>) {
        for (dest, msg) in outbound {
            match dest {
                Destination::Broadcast => {
                    for i in 0..self.replicas.len() as u32 {
                        let to = NodeId(i);
                        if to != from {
                            self.enqueue(from, to, msg);
                        }
                    }
                }
                Destination::One(to) => self.enqueue(from, to, msg),
            }
        }
    }

    fn run_to_quiescence(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop_front() {
            if self.silenced[to.index()] || self.silenced[from.index()] {
                continue;
            }
            let out = self.replicas[to.index()].handle(from, msg);
            self.dispatch(to, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_crypto::Digest;
    use tldag_sim::Bits;

    fn block(tag: u8) -> BlockMeta {
        BlockMeta {
            proposer: NodeId(u32::from(tag)),
            slot: 0,
            digest: Digest::from_bytes([tag; 32]),
            bits: Bits::from_bytes(128),
        }
    }

    #[test]
    fn happy_path_commits_on_all_replicas() {
        let mut cluster = PbftCluster::new(BaselineConfig::test_default(), 4);
        assert!(cluster.submit(NodeId(3), block(1)));
        for i in 0..4u32 {
            assert_eq!(cluster.replica(NodeId(i)).chain().len(), 1, "replica {i}");
        }
    }

    #[test]
    fn chains_agree_across_replicas() {
        let mut cluster = PbftCluster::new(BaselineConfig::test_default(), 7);
        for tag in 1..=5u8 {
            assert!(cluster.submit(NodeId(6), block(tag)));
        }
        let reference: Vec<Digest> = cluster
            .replica(NodeId(0))
            .chain()
            .iter()
            .map(|b| b.digest)
            .collect();
        assert_eq!(reference.len(), 5);
        for i in 1..7u32 {
            let chain: Vec<Digest> = cluster
                .replica(NodeId(i))
                .chain()
                .iter()
                .map(|b| b.digest)
                .collect();
            assert_eq!(chain, reference, "replica {i} diverged");
        }
    }

    #[test]
    fn tolerates_f_crash_faults() {
        let mut cluster = PbftCluster::new(BaselineConfig::test_default(), 4);
        cluster.silence(NodeId(3)); // f = 1
        assert!(cluster.submit(NodeId(2), block(1)));
    }

    #[test]
    fn stalls_beyond_f_crash_faults() {
        let mut cluster = PbftCluster::new(BaselineConfig::test_default(), 4);
        cluster.silence(NodeId(2));
        cluster.silence(NodeId(3)); // 2 > f = 1
        assert!(!cluster.submit(NodeId(1), block(1)));
    }

    #[test]
    fn view_change_elects_new_primary_and_recovers() {
        let mut cluster = PbftCluster::new(BaselineConfig::test_default(), 4);
        cluster.silence(NodeId(0)); // kill the view-0 primary
        assert!(!cluster.submit(NodeId(1), block(1)), "dead primary stalls");
        cluster.force_view_change();
        assert_eq!(cluster.current_view(), 1);
        assert!(cluster.submit(NodeId(1), block(2)), "new primary commits");
    }

    #[test]
    fn communication_is_quadratic_in_replicas() {
        let totals: Vec<u64> = [4usize, 8]
            .iter()
            .map(|&n| {
                let mut cluster = PbftCluster::new(BaselineConfig::test_default(), n);
                cluster.submit(NodeId(0), block(1));
                cluster
                    .accounting()
                    .network_total(TrafficClass::Pbft)
                    .bits()
            })
            .collect();
        // Doubling n should far more than double the vote traffic.
        assert!(totals[1] > totals[0] * 3, "totals = {totals:?}");
    }
}
