//! PBFT wire messages (Castro & Liskov, OSDI '99), simplified to what the
//! evaluation and the protocol tests need: the three happy-path phases plus
//! a view-change.

use crate::config::BaselineConfig;
use tldag_crypto::Digest;
use tldag_sim::engine::Slot;
use tldag_sim::{Bits, NodeId};

/// Metadata of a client block moving through consensus. The body itself is
/// represented by its size; the digest stands in for its content.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// IoT node that produced the data.
    pub proposer: NodeId,
    /// Generation slot.
    pub slot: Slot,
    /// Content digest.
    pub digest: Digest,
    /// Full block size (header + body).
    pub bits: Bits,
}

/// A PBFT protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PbftMessage {
    /// Client request carrying a block to order (client → primary).
    Request {
        /// The block to order.
        block: BlockMeta,
    },
    /// Primary's proposal (primary → all replicas). Carries the full block.
    PrePrepare {
        /// View in which the proposal is made.
        view: u64,
        /// Sequence number assigned by the primary.
        seq: u64,
        /// The proposed block.
        block: BlockMeta,
    },
    /// Phase-two vote (all → all).
    Prepare {
        /// View of the instance.
        view: u64,
        /// Sequence number of the instance.
        seq: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Voting replica.
        replica: NodeId,
    },
    /// Phase-three vote (all → all).
    Commit {
        /// View of the instance.
        view: u64,
        /// Sequence number of the instance.
        seq: u64,
        /// Digest of the proposed block.
        digest: Digest,
        /// Voting replica.
        replica: NodeId,
    },
    /// Vote to move to `new_view` after a primary failure (all → all).
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// Voting replica.
        replica: NodeId,
    },
}

impl PbftMessage {
    /// Logical wire size of the message.
    pub fn bits(&self, cfg: &BaselineConfig) -> Bits {
        match self {
            PbftMessage::Request { block } => block.bits + Bits::from_bits(cfg.framing_bits),
            PbftMessage::PrePrepare { .. } => cfg.pre_prepare_bits(),
            PbftMessage::Prepare { .. } | PbftMessage::Commit { .. } => cfg.vote_bits(),
            PbftMessage::ViewChange { .. } => cfg.view_change_bits(),
        }
    }
}

/// Delivery target of an outbound message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Send to every other replica.
    Broadcast,
    /// Send to one replica.
    One(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_follow_config() {
        let cfg = BaselineConfig::test_default();
        let block = BlockMeta {
            proposer: NodeId(0),
            slot: 0,
            digest: Digest::ZERO,
            bits: cfg.block_bits(),
        };
        let pre = PbftMessage::PrePrepare {
            view: 0,
            seq: 1,
            block,
        };
        let prep = PbftMessage::Prepare {
            view: 0,
            seq: 1,
            digest: Digest::ZERO,
            replica: NodeId(1),
        };
        assert!(pre.bits(&cfg) > prep.bits(&cfg));
        assert_eq!(prep.bits(&cfg), cfg.vote_bits());
    }
}
