//! A PBFT replica state machine.
//!
//! Implements the happy path (pre-prepare → prepare → commit with `2f` /
//! `2f + 1` quorums) and a simplified view change: on suspecting the primary,
//! replicas broadcast `VIEW-CHANGE` votes and adopt the new view once `2f + 1`
//! replicas agree. Checkpointing, watermarks, and the new-view certificate
//! are out of scope — the evaluation needs the message/storage profile and a
//! correct ordering core, not a production PBFT.

use crate::config::BaselineConfig;
use crate::pbft::messages::{BlockMeta, Destination, PbftMessage};
use std::collections::{HashMap, HashSet};
use tldag_crypto::Digest;
use tldag_sim::NodeId;

/// Per-instance voting state.
#[derive(Clone, Debug, Default)]
struct Instance {
    block: Option<BlockMeta>,
    prepares: HashSet<NodeId>,
    commits: HashSet<NodeId>,
    committed: bool,
}

/// A PBFT replica.
#[derive(Clone, Debug)]
pub struct Replica {
    id: NodeId,
    n: usize,
    view: u64,
    next_seq: u64,
    instances: HashMap<(u64, u64), Instance>,
    chain: Vec<BlockMeta>,
    committed_digests: HashSet<Digest>,
    view_change_votes: HashMap<u64, HashSet<NodeId>>,
}

impl Replica {
    /// Creates replica `id` in a cluster of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `id` is outside the cluster.
    pub fn new(id: NodeId, n: usize) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        assert!(id.index() < n, "replica id out of range");
        Replica {
            id,
            n,
            view: 0,
            next_seq: 0,
            instances: HashMap::new(),
            chain: Vec::new(),
            committed_digests: HashSet::new(),
            view_change_votes: HashMap::new(),
        }
    }

    /// Number of tolerated Byzantine replicas, `f = ⌊(n-1)/3⌋`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// The primary of view `v` (round-robin).
    pub fn primary_of(&self, view: u64) -> NodeId {
        NodeId((view % self.n as u64) as u32)
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.id
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The committed chain.
    pub fn chain(&self) -> &[BlockMeta] {
        &self.chain
    }

    /// Whether `digest` has been committed.
    pub fn has_committed(&self, digest: &Digest) -> bool {
        self.committed_digests.contains(digest)
    }

    /// Handles one message, returning outbound messages.
    pub fn handle(&mut self, from: NodeId, msg: PbftMessage) -> Vec<(Destination, PbftMessage)> {
        match msg {
            PbftMessage::Request { block } => self.on_request(block),
            PbftMessage::PrePrepare { view, seq, block } => {
                self.on_pre_prepare(from, view, seq, block)
            }
            PbftMessage::Prepare {
                view,
                seq,
                digest,
                replica,
            } => self.on_prepare(view, seq, digest, replica),
            PbftMessage::Commit {
                view,
                seq,
                digest,
                replica,
            } => self.on_commit(view, seq, digest, replica),
            PbftMessage::ViewChange { new_view, replica } => self.on_view_change(new_view, replica),
        }
    }

    /// Starts a view change (called when the primary is suspected).
    pub fn suspect_primary(&mut self) -> Vec<(Destination, PbftMessage)> {
        let new_view = self.view + 1;
        let mut out = self.on_view_change(new_view, self.id);
        out.push((
            Destination::Broadcast,
            PbftMessage::ViewChange {
                new_view,
                replica: self.id,
            },
        ));
        out
    }

    fn on_request(&mut self, block: BlockMeta) -> Vec<(Destination, PbftMessage)> {
        if !self.is_primary() {
            return Vec::new(); // non-primaries ignore direct requests
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let view = self.view;
        // The primary's pre-prepare also counts as its prepare vote.
        let instance = self.instances.entry((view, seq)).or_default();
        instance.block = Some(block);
        instance.prepares.insert(self.id);
        vec![(
            Destination::Broadcast,
            PbftMessage::PrePrepare { view, seq, block },
        )]
    }

    fn on_pre_prepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        block: BlockMeta,
    ) -> Vec<(Destination, PbftMessage)> {
        if view != self.view || from != self.primary_of(view) {
            return Vec::new();
        }
        let instance = self.instances.entry((view, seq)).or_default();
        if instance.block.is_some() {
            return Vec::new(); // duplicate pre-prepare
        }
        instance.block = Some(block);
        instance.prepares.insert(from); // primary's implicit prepare
        instance.prepares.insert(self.id);
        self.next_seq = self.next_seq.max(seq + 1);
        let mut out = vec![(
            Destination::Broadcast,
            PbftMessage::Prepare {
                view,
                seq,
                digest: block.digest,
                replica: self.id,
            },
        )];
        out.extend(self.try_advance(view, seq));
        out
    }

    fn on_prepare(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        replica: NodeId,
    ) -> Vec<(Destination, PbftMessage)> {
        if view != self.view {
            return Vec::new();
        }
        let instance = self.instances.entry((view, seq)).or_default();
        if instance.block.is_some_and(|b| b.digest != digest) {
            return Vec::new(); // equivocation; ignore
        }
        instance.prepares.insert(replica);
        self.try_advance(view, seq)
    }

    fn on_commit(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        replica: NodeId,
    ) -> Vec<(Destination, PbftMessage)> {
        if view != self.view {
            return Vec::new();
        }
        let instance = self.instances.entry((view, seq)).or_default();
        if instance.block.is_some_and(|b| b.digest != digest) {
            return Vec::new();
        }
        instance.commits.insert(replica);
        self.try_advance(view, seq)
    }

    /// Fires prepared/committed transitions for an instance.
    fn try_advance(&mut self, view: u64, seq: u64) -> Vec<(Destination, PbftMessage)> {
        let f = self.f();
        let mut out = Vec::new();
        let Some(instance) = self.instances.get_mut(&(view, seq)) else {
            return out;
        };
        let Some(block) = instance.block else {
            return out;
        };
        // Prepared: pre-prepare + 2f matching prepares (own vote included).
        if instance.prepares.len() > 2 * f && !instance.commits.contains(&self.id) {
            instance.commits.insert(self.id);
            out.push((
                Destination::Broadcast,
                PbftMessage::Commit {
                    view,
                    seq,
                    digest: block.digest,
                    replica: self.id,
                },
            ));
        }
        // Committed: 2f + 1 commits.
        if instance.commits.len() > 2 * f
            && !instance.committed
            && !self.committed_digests.contains(&block.digest)
        {
            instance.committed = true;
            self.committed_digests.insert(block.digest);
            self.chain.push(block);
        }
        out
    }

    fn on_view_change(
        &mut self,
        new_view: u64,
        replica: NodeId,
    ) -> Vec<(Destination, PbftMessage)> {
        if new_view <= self.view {
            return Vec::new();
        }
        let quorum = 2 * self.f() + 1;
        let my_id = self.id;
        let votes = self.view_change_votes.entry(new_view).or_default();
        votes.insert(replica);
        let mut out = Vec::new();
        // Echo our own vote once someone else initiates (mutual suspicion).
        if !votes.contains(&my_id) {
            votes.insert(my_id);
            out.push((
                Destination::Broadcast,
                PbftMessage::ViewChange {
                    new_view,
                    replica: my_id,
                },
            ));
        }
        if self.view_change_votes[&new_view].len() >= quorum {
            self.view = new_view;
            // Uncommitted instances of older views are abandoned; clients
            // retransmit (simplification: no new-view certificate replay).
            self.instances.retain(|&(v, _), _| v >= new_view);
        }
        out
    }
}

/// Exposes message-size computation for the cluster driver.
pub fn message_bits(cfg: &BaselineConfig, msg: &PbftMessage) -> tldag_sim::Bits {
    msg.bits(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8) -> BlockMeta {
        BlockMeta {
            proposer: NodeId(u32::from(tag)),
            slot: 0,
            digest: Digest::from_bytes([tag; 32]),
            bits: tldag_sim::Bits::from_bytes(100),
        }
    }

    #[test]
    fn f_computation() {
        assert_eq!(Replica::new(NodeId(0), 4).f(), 1);
        assert_eq!(Replica::new(NodeId(0), 7).f(), 2);
        assert_eq!(Replica::new(NodeId(0), 50).f(), 16);
    }

    #[test]
    fn primary_rotates_with_view() {
        let r = Replica::new(NodeId(0), 4);
        assert_eq!(r.primary_of(0), NodeId(0));
        assert_eq!(r.primary_of(1), NodeId(1));
        assert_eq!(r.primary_of(4), NodeId(0));
    }

    #[test]
    fn primary_assigns_sequence_numbers() {
        let mut primary = Replica::new(NodeId(0), 4);
        let out1 = primary.handle(NodeId(1), PbftMessage::Request { block: block(1) });
        let out2 = primary.handle(NodeId(2), PbftMessage::Request { block: block(2) });
        let seq_of = |out: &[(Destination, PbftMessage)]| match out[0].1 {
            PbftMessage::PrePrepare { seq, .. } => seq,
            _ => panic!("expected pre-prepare"),
        };
        assert_eq!(seq_of(&out1), 0);
        assert_eq!(seq_of(&out2), 1);
    }

    #[test]
    fn non_primary_ignores_requests() {
        let mut backup = Replica::new(NodeId(1), 4);
        assert!(backup
            .handle(NodeId(2), PbftMessage::Request { block: block(1) })
            .is_empty());
    }

    #[test]
    fn equivocating_prepare_is_ignored() {
        let mut r = Replica::new(NodeId(1), 4);
        let b = block(1);
        r.handle(
            NodeId(0),
            PbftMessage::PrePrepare {
                view: 0,
                seq: 0,
                block: b,
            },
        );
        let out = r.handle(
            NodeId(2),
            PbftMessage::Prepare {
                view: 0,
                seq: 0,
                digest: Digest::from_bytes([9; 32]), // wrong digest
                replica: NodeId(2),
            },
        );
        assert!(out.is_empty());
        assert!(!r.has_committed(&b.digest));
    }

    #[test]
    fn stale_view_messages_ignored() {
        let mut r = Replica::new(NodeId(1), 4);
        // Move to view 1 via a quorum of view-changes.
        r.handle(
            NodeId(2),
            PbftMessage::ViewChange {
                new_view: 1,
                replica: NodeId(2),
            },
        );
        r.handle(
            NodeId(3),
            PbftMessage::ViewChange {
                new_view: 1,
                replica: NodeId(3),
            },
        );
        assert_eq!(r.view(), 1);
        // A view-0 pre-prepare is now stale.
        let out = r.handle(
            NodeId(0),
            PbftMessage::PrePrepare {
                view: 0,
                seq: 0,
                block: block(1),
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn view_change_quorum_advances_view() {
        let mut r = Replica::new(NodeId(0), 4);
        assert_eq!(r.view(), 0);
        r.handle(
            NodeId(1),
            PbftMessage::ViewChange {
                new_view: 1,
                replica: NodeId(1),
            },
        );
        assert_eq!(r.view(), 0, "one external vote + own echo < quorum of 3");
        r.handle(
            NodeId(2),
            PbftMessage::ViewChange {
                new_view: 1,
                replica: NodeId(2),
            },
        );
        assert_eq!(r.view(), 1, "3 votes reach the 2f+1 = 3 quorum");
    }
}
