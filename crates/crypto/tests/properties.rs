//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use tldag_crypto::digest::Digest;
use tldag_crypto::hex;
use tldag_crypto::merkle::{merkle_root, MerkleTree};
use tldag_crypto::puzzle;
use tldag_crypto::schnorr::{KeyPair, Signature};
use tldag_crypto::sha256::{sha256, Sha256};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hex encoding round-trips for arbitrary byte strings.
    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::from_hex(&hex::to_hex(&data)).unwrap(), data);
    }

    /// Digest display/parse round-trips for arbitrary digests.
    #[test]
    fn digest_round_trip(bytes in any::<[u8; 32]>()) {
        let d = Digest::from_bytes(bytes);
        prop_assert_eq!(d.to_string().parse::<Digest>().unwrap(), d);
    }

    /// SHA-256 is deterministic and sensitive to any single-byte change.
    #[test]
    fn sha256_sensitivity(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in 0usize..128,
        bit in 0u8..8,
    ) {
        let base = sha256(&data);
        prop_assert_eq!(sha256(&data), base);
        let mut tampered = data.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1 << bit;
        if tampered != data {
            prop_assert_ne!(sha256(&tampered), base);
        }
    }

    /// Multi-chunk absorption equals one-shot hashing for any chunking.
    #[test]
    fn sha256_chunking_invariance(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let mut hasher = Sha256::new();
        let mut concat = Vec::new();
        for chunk in &chunks {
            hasher.update(chunk);
            concat.extend_from_slice(chunk);
        }
        prop_assert_eq!(hasher.finalize(), sha256(&concat));
    }

    /// The streaming Merkle root agrees with the materialised tree, and
    /// appending a leaf always changes the root.
    #[test]
    fn merkle_append_changes_root(
        leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..20),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let tree = MerkleTree::build(leaves.iter());
        prop_assert_eq!(tree.root(), merkle_root(leaves.iter()));
        let mut appended = leaves.clone();
        appended.push(extra);
        prop_assert_ne!(merkle_root(appended.iter()), tree.root());
    }

    /// Every proof of every leaf verifies; a corrupted root verifies nothing.
    #[test]
    fn merkle_proofs_complete(
        leaves in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..16),
        probe in 0usize..16,
    ) {
        let tree = MerkleTree::build(leaves.iter());
        let i = probe % leaves.len();
        let proof = tree.proof(i).unwrap();
        prop_assert!(proof.verify(&tree.root(), &leaves[i]));
        prop_assert!(!proof.verify(&tree.root().corrupted(), &leaves[i]));
    }

    /// Puzzle solutions satisfy their target and are minimal from the start
    /// nonce; the check is monotone in difficulty.
    #[test]
    fn puzzle_solutions_minimal(prefix in proptest::collection::vec(any::<u8>(), 0..32)) {
        let difficulty = 6u8;
        let nonce = puzzle::solve(&prefix, difficulty, 0);
        let digest = puzzle::puzzle_digest(&prefix, nonce);
        prop_assert!(puzzle::check(&digest, difficulty));
        for lower in 0..=difficulty {
            prop_assert!(puzzle::check(&digest, lower), "monotone in difficulty");
        }
        for n in (0..nonce).take(64) {
            prop_assert!(!puzzle::check(&puzzle::puzzle_digest(&prefix, n), difficulty));
        }
    }

    /// Signature byte encoding round-trips; mutated signatures never verify.
    #[test]
    fn signature_encoding_and_mutation(
        seed in 0u64..10_000,
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        which in any::<bool>(),
        bit in 0u8..64,
    ) {
        let kp = KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
        prop_assert!(kp.public().verify(&msg, &sig));
        let mutated = if which {
            Signature { e: sig.e ^ (1 << (bit % 63)), ..sig }
        } else {
            Signature { s: sig.s ^ (1 << (bit % 63)), ..sig }
        };
        if mutated != sig {
            prop_assert!(!kp.public().verify(&msg, &mutated));
        }
    }
}
