//! 256-bit digest type shared by every hash-bearing structure in the workspace.

use crate::hex;
use std::fmt;
use std::str::FromStr;

/// Number of bytes in a [`Digest`].
pub const DIGEST_LEN: usize = 32;

/// A 256-bit digest (the output of [`crate::sha256`]).
///
/// `Digest` is the unit of linkage in 2LDAG: block headers reference their
/// parents by digest, the `Root` field is a Merkle-root digest, and the
/// difficulty puzzle compares a digest against a target. It is a plain value
/// type — `Copy`, ordered bytewise, hashable, and displayed as lowercase hex.
///
/// # Example
///
/// ```
/// use tldag_crypto::Digest;
///
/// let d = Digest::from_bytes([0xab; 32]);
/// assert_eq!(d.to_string().len(), 64);
/// assert_eq!(d, d.to_string().parse::<Digest>().unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest. Used as the "previous block" reference of genesis
    /// blocks and as a sentinel in tests.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Creates a digest from raw bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the raw bytes of the digest.
    pub const fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest, returning the underlying byte array.
    pub const fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Returns `true` if this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; DIGEST_LEN]
    }

    /// Number of leading zero bits, used by the difficulty puzzle
    /// (`H(...) ≤ ρ` in Eq. 5 of the paper).
    pub fn leading_zero_bits(&self) -> u32 {
        let mut count = 0u32;
        for &byte in &self.0 {
            if byte == 0 {
                count += 8;
            } else {
                count += byte.leading_zeros();
                break;
            }
        }
        count
    }

    /// Interprets the first eight bytes as a big-endian `u64`. Handy for
    /// deriving deterministic pseudo-random streams from digests.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }

    /// Returns a digest with one bit flipped; used by fault injection to model
    /// corrupted hashes in transit.
    #[must_use]
    pub fn corrupted(&self) -> Digest {
        let mut bytes = self.0;
        bytes[0] ^= 0x01;
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

impl From<Digest> for [u8; DIGEST_LEN] {
    fn from(d: Digest) -> Self {
        d.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::to_hex(&self.0))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &hex::to_hex(&self.0[..4]))
    }
}

impl fmt::LowerHex for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::to_hex(&self.0))
    }
}

/// Error returned when parsing a [`Digest`] from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDigestError {
    kind: ParseDigestErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseDigestErrorKind {
    Length(usize),
    InvalidHex,
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseDigestErrorKind::Length(n) => {
                write!(f, "expected 64 hex characters, found {n}")
            }
            ParseDigestErrorKind::InvalidHex => write!(f, "invalid hex character"),
        }
    }
}

impl std::error::Error for ParseDigestError {}

impl FromStr for Digest {
    type Err = ParseDigestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != DIGEST_LEN * 2 {
            return Err(ParseDigestError {
                kind: ParseDigestErrorKind::Length(s.len()),
            });
        }
        let bytes = hex::from_hex(s).ok_or(ParseDigestError {
            kind: ParseDigestErrorKind::InvalidHex,
        })?;
        let arr: [u8; DIGEST_LEN] = bytes.try_into().map_err(|_| ParseDigestError {
            kind: ParseDigestErrorKind::InvalidHex,
        })?;
        Ok(Digest(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_digest_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::from_bytes([1; 32]).is_zero());
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        assert_eq!(Digest::ZERO.leading_zero_bits(), 256);
        let mut b = [0u8; 32];
        b[0] = 0x80;
        assert_eq!(Digest::from_bytes(b).leading_zero_bits(), 0);
        b[0] = 0x01;
        assert_eq!(Digest::from_bytes(b).leading_zero_bits(), 7);
        b[0] = 0x00;
        b[1] = 0x40;
        assert_eq!(Digest::from_bytes(b).leading_zero_bits(), 9);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let d = Digest::from_bytes([0x5a; 32]);
        let s = d.to_string();
        assert_eq!(s.parse::<Digest>().unwrap(), d);
    }

    #[test]
    fn parse_rejects_bad_length_and_bad_chars() {
        assert!("abcd".parse::<Digest>().is_err());
        let bad = "zz".repeat(32);
        assert!(bad.parse::<Digest>().is_err());
    }

    #[test]
    fn corrupted_differs_in_exactly_one_bit() {
        let d = Digest::from_bytes([0x77; 32]);
        let c = d.corrupted();
        assert_ne!(d, c);
        let diff: u32 = d
            .as_bytes()
            .iter()
            .zip(c.as_bytes())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Digest::from_bytes(b).prefix_u64(), 1);
    }

    #[test]
    fn ordering_is_bytewise() {
        let lo = Digest::from_bytes([0u8; 32]);
        let mut hi_bytes = [0u8; 32];
        hi_bytes[0] = 1;
        let hi = Digest::from_bytes(hi_bytes);
        assert!(lo < hi);
    }
}
