//! Binary Merkle tree with inclusion proofs.
//!
//! The `Root` field of every 2LDAG block header is the Merkle root `M(b^d)` of
//! the block body (Sec. III-B of the paper). The validator recomputes this root
//! when it retrieves a block (Algorithm 3, line 3) and rejects the block on
//! mismatch. Inclusion proofs let an application audit a single sensor sample
//! without fetching the whole body.
//!
//! Construction: leaves are `H(0x00 ‖ leaf)`, interior nodes are
//! `H(0x01 ‖ left ‖ right)`. Domain separation prevents a leaf from being
//! reinterpreted as an interior node. An odd node at any level is paired with
//! itself (Bitcoin-style duplication). The root of an empty tree is defined as
//! `H(0x02)`.

use crate::digest::Digest;
use crate::sha256::Sha256;

const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;
const EMPTY_TAG: u8 = 0x02;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_TAG]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// Root digest of an empty tree.
pub fn empty_root() -> Digest {
    let mut h = Sha256::new();
    h.update(&[EMPTY_TAG]);
    h.finalize()
}

/// Computes the Merkle root of `leaves` without materialising the tree.
///
/// Equivalent to `MerkleTree::build(leaves).root()` but allocates only one
/// level at a time. This is the `M(.)` used during block generation.
///
/// # Example
///
/// ```
/// use tldag_crypto::merkle::{merkle_root, MerkleTree};
///
/// let leaves: Vec<&[u8]> = vec![b"t=21.5", b"t=21.7", b"t=21.6"];
/// let tree = MerkleTree::build(leaves.iter());
/// assert_eq!(merkle_root(leaves.iter()), tree.root());
/// ```
pub fn merkle_root<I, T>(leaves: I) -> Digest
where
    I: IntoIterator<Item = T>,
    T: AsRef<[u8]>,
{
    let mut level: Vec<Digest> = leaves
        .into_iter()
        .map(|leaf| hash_leaf(leaf.as_ref()))
        .collect();
    if level.is_empty() {
        return empty_root();
    }
    while level.len() > 1 {
        level = reduce_level(&level);
    }
    level[0]
}

fn reduce_level(level: &[Digest]) -> Vec<Digest> {
    let mut next = Vec::with_capacity(level.len().div_ceil(2));
    for pair in level.chunks(2) {
        let left = &pair[0];
        let right = pair.get(1).unwrap_or(left);
        next.push(hash_node(left, right));
    }
    next
}

/// A fully materialised Merkle tree supporting inclusion proofs.
///
/// # Example
///
/// ```
/// use tldag_crypto::merkle::MerkleTree;
///
/// let samples: Vec<&[u8]> = vec![b"s0", b"s1", b"s2", b"s3", b"s4"];
/// let tree = MerkleTree::build(samples.iter());
/// let proof = tree.proof(2).unwrap();
/// assert!(proof.verify(&tree.root(), b"s2"));
/// assert!(!proof.verify(&tree.root(), b"tampered"));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level has exactly one digest.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    pub fn build<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaf_level: Vec<Digest> = leaves
            .into_iter()
            .map(|leaf| hash_leaf(leaf.as_ref()))
            .collect();
        if leaf_level.is_empty() {
            return MerkleTree {
                levels: vec![vec![empty_root()]],
            };
        }
        let mut levels = vec![leaf_level];
        while levels.last().expect("non-empty").len() > 1 {
            let next = reduce_level(levels.last().expect("non-empty"));
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        *self
            .levels
            .last()
            .expect("tree always has a root level")
            .first()
            .expect("root level is non-empty")
    }

    /// Number of leaves (zero for the empty tree).
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0].len() == 1 && self.levels[0][0] == empty_root()
        {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None` if the
    /// index is out of bounds.
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len());
        let mut pos = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_pos = pos ^ 1;
            let sibling = if sibling_pos < level.len() {
                level[sibling_pos]
            } else {
                level[pos] // odd node pairs with itself
            };
            siblings.push(ProofStep {
                sibling,
                sibling_on_right: pos.is_multiple_of(2),
            });
            pos /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct ProofStep {
    sibling: Digest,
    sibling_on_right: bool,
}

/// An inclusion proof produced by [`MerkleTree::proof`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    index: usize,
    siblings: Vec<ProofStep>,
}

impl MerkleProof {
    /// Leaf index this proof is for.
    pub fn leaf_index(&self) -> usize {
        self.index
    }

    /// Proof depth (number of sibling hashes).
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// Returns `true` for the trivial proof of a single-leaf tree.
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }

    /// Verifies that `leaf_data` is included under `root` at this proof's index.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        let mut acc = hash_leaf(leaf_data);
        for step in &self.siblings {
            acc = if step.sibling_on_right {
                hash_node(&acc, &step.sibling)
            } else {
                hash_node(&step.sibling, &acc)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_defined_root() {
        let tree = MerkleTree::build(Vec::<&[u8]>::new());
        assert_eq!(tree.root(), empty_root());
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.proof(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.proof(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&tree.root(), b"only"));
    }

    #[test]
    fn streaming_root_matches_tree_root() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
            let data = leaves(n);
            assert_eq!(
                merkle_root(data.iter()),
                MerkleTree::build(data.iter()).root(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn all_proofs_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 13] {
            let data = leaves(n);
            let tree = MerkleTree::build(data.iter());
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let data = leaves(6);
        let tree = MerkleTree::build(data.iter());
        let proof = tree.proof(3).unwrap();
        assert!(!proof.verify(&tree.root(), b"not the leaf"));
        assert!(!proof.verify(&tree.root().corrupted(), &data[3]));
    }

    #[test]
    fn proof_is_position_bound() {
        // A proof for index i must not verify leaf j's data (i != j).
        let data = leaves(8);
        let tree = MerkleTree::build(data.iter());
        let proof = tree.proof(2).unwrap();
        assert!(!proof.verify(&tree.root(), &data[5]));
    }

    #[test]
    fn changing_any_leaf_changes_root() {
        let data = leaves(9);
        let base = merkle_root(data.iter());
        for i in 0..data.len() {
            let mut tampered = data.clone();
            tampered[i][0] ^= 0xff;
            assert_ne!(merkle_root(tampered.iter()), base, "leaf {i}");
        }
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A two-leaf tree's root should differ from a single leaf whose bytes
        // are the concatenation of the two leaf hashes.
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        let two_leaf = merkle_root([b"a".as_slice(), b"b".as_slice()]);
        let fake = merkle_root([concat.as_slice()]);
        assert_ne!(two_leaf, fake);
    }

    #[test]
    fn duplication_rule_is_stable() {
        // Odd trees duplicate the last node; check 3 leaves == [a,b,c,c] shape.
        let three = merkle_root(leaves(3).iter());
        let mut four = leaves(3);
        four.push(leaves(3)[2].clone());
        assert_eq!(three, merkle_root(four.iter()));
    }
}
