//! Cryptographic substrate for the 2LDAG protocol.
//!
//! The 2LDAG paper (ICDCS 2023) assumes a 256-bit hash function `H(.)`, a Merkle
//! tree root function `M(.)`, a public-key signature scheme `E(., sk)` / `D(., pk)`,
//! and a proof-of-work style difficulty puzzle used to rate-limit block generation
//! (Eq. 5). This crate implements all four from scratch so the workspace has no
//! external cryptographic dependencies:
//!
//! * [`sha256`] — a pure-Rust SHA-256 (FIPS 180-4), validated against NIST vectors.
//! * [`merkle`] — a binary Merkle tree with inclusion proofs over block bodies.
//! * [`schnorr`] — Schnorr signatures over a 64-bit safe-prime field. This is
//!   **simulation-grade**: structurally a real Schnorr scheme (key generation,
//!   deterministic nonces, batch-verifiable equations) but with a deliberately small
//!   field, so it must never be used outside simulations. The 2LDAG overhead model
//!   accounts signatures at the paper's `f_s = 256` bits regardless.
//! * [`puzzle`] — leading-zero-bit difficulty puzzles (`H(fields ‖ nonce) ≤ ρ`).
//!
//! # Example
//!
//! ```
//! use tldag_crypto::{sha256::sha256, schnorr::KeyPair, puzzle};
//!
//! let digest = sha256(b"sensor reading");
//! let kp = KeyPair::from_seed(7);
//! let sig = kp.sign(digest.as_bytes());
//! assert!(kp.public().verify(digest.as_bytes(), &sig));
//!
//! let nonce = puzzle::solve(b"block header", 8, 0);
//! assert!(puzzle::check(&puzzle::puzzle_digest(b"block header", nonce), 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod hex;
pub mod merkle;
pub mod puzzle;
pub mod schnorr;
pub mod sha256;

pub use digest::Digest;
pub use merkle::{MerkleProof, MerkleTree};
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
