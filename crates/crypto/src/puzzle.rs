//! Difficulty puzzle (Eq. 5 of the paper): find a nonce such that
//! `H(fields ‖ nonce)` has at least `difficulty_bits` leading zero bits.
//!
//! 2LDAG uses the puzzle *not* for consensus (unlike PoW blockchains) but to
//! rate-limit block generation: a node needs a few seconds per block, so a
//! malicious node cannot flood neighbors with digests (Sec. IV-D.5). The
//! difficulty `ρ` is therefore small and fixed. Neighbors ban peers whose
//! blocks arrive faster than the puzzle allows.

use crate::digest::Digest;
use crate::sha256::Sha256;

/// Computes the puzzle digest `H(prefix ‖ nonce)` with the nonce encoded as
/// four little-endian bytes (the 32-bit `Nonce` field of the block header).
pub fn puzzle_digest(prefix: &[u8], nonce: u32) -> Digest {
    let mut h = Sha256::new();
    h.update(prefix);
    h.update(&nonce.to_le_bytes());
    h.finalize()
}

/// Returns `true` if `digest` satisfies the difficulty target, i.e. has at
/// least `difficulty_bits` leading zero bits. A difficulty of zero accepts
/// every digest (useful to disable the puzzle in unit tests).
pub fn check(digest: &Digest, difficulty_bits: u8) -> bool {
    digest.leading_zero_bits() >= u32::from(difficulty_bits)
}

/// Searches nonces starting at `start` until the puzzle is satisfied,
/// returning the first valid nonce.
///
/// Expected work is `2^difficulty_bits` hash evaluations; the simulations use
/// 8–12 bits so block generation stays fast while the rate-limiting semantics
/// are preserved.
///
/// # Panics
///
/// Panics if the nonce space is exhausted without a solution, which for any
/// practical difficulty (< 32 bits) does not happen.
///
/// # Example
///
/// ```
/// use tldag_crypto::puzzle;
///
/// let nonce = puzzle::solve(b"header fields", 8, 0);
/// assert!(puzzle::check(&puzzle::puzzle_digest(b"header fields", nonce), 8));
/// ```
pub fn solve(prefix: &[u8], difficulty_bits: u8, start: u32) -> u32 {
    let mut nonce = start;
    loop {
        if check(&puzzle_digest(prefix, nonce), difficulty_bits) {
            return nonce;
        }
        nonce = nonce
            .checked_add(1)
            .expect("puzzle nonce space exhausted (difficulty too high)");
    }
}

/// Expected number of hash evaluations to solve at `difficulty_bits`.
pub fn expected_attempts(difficulty_bits: u8) -> u64 {
    1u64 << difficulty_bits.min(63)
}

/// Number of attempts [`solve`] actually made for a given result, assuming it
/// started at `start`. Used by tests and by the DoS detector, which flags
/// peers producing blocks implausibly faster than the expected attempt count.
pub fn attempts_used(start: u32, solution: u32) -> u64 {
    u64::from(solution.wrapping_sub(start)) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_difficulty_accepts_first_nonce() {
        assert_eq!(solve(b"x", 0, 17), 17);
    }

    #[test]
    fn solution_satisfies_check() {
        for d in [1u8, 4, 8, 10] {
            let nonce = solve(b"prefix", d, 0);
            assert!(check(&puzzle_digest(b"prefix", nonce), d));
        }
    }

    #[test]
    fn solution_is_minimal_from_start() {
        let d = 6u8;
        let nonce = solve(b"minimality", d, 0);
        for n in 0..nonce {
            assert!(!check(&puzzle_digest(b"minimality", n), d));
        }
    }

    #[test]
    fn harder_difficulty_needs_no_fewer_attempts() {
        let easy = solve(b"same prefix", 2, 0);
        let hard = solve(b"same prefix", 10, 0);
        assert!(attempts_used(0, hard) >= attempts_used(0, easy));
    }

    #[test]
    fn different_prefixes_different_solutions() {
        // Not guaranteed in general, but with 12-bit difficulty the chance of
        // collision across these prefixes is negligible and the test pins the
        // implementation's determinism either way.
        let a = solve(b"prefix-a", 8, 0);
        let b = solve(b"prefix-a", 8, 0);
        assert_eq!(a, b, "solve must be deterministic");
    }

    #[test]
    fn expected_attempts_doubles_per_bit() {
        assert_eq!(expected_attempts(0), 1);
        assert_eq!(expected_attempts(8), 256);
        assert_eq!(expected_attempts(9), 512);
    }

    #[test]
    fn check_respects_boundary() {
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0x0f; // exactly 4 leading zero bits
        let d = Digest::from_bytes(bytes);
        assert!(check(&d, 4));
        assert!(!check(&d, 5));
    }
}
