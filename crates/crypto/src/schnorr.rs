//! Schnorr signatures over a 64-bit safe-prime group (simulation-grade).
//!
//! The 2LDAG paper assumes each node holds a public/private key pair and signs
//! block headers with a "low complexity encryption scheme" (Sec. III-B, Eq. 6).
//! The protocol only needs (1) public verifiability and (2) unforgeability
//! against the simulated adversary, so this module implements a structurally
//! faithful Schnorr scheme — deterministic nonces, Fiat–Shamir challenge,
//! standard verification equation — over a deliberately small field.
//!
//! **Security notice:** a 64-bit discrete-log group offers *no* real-world
//! security. This is a simulation substrate, not a production signature
//! scheme. The 2LDAG overhead model accounts signatures at the paper's
//! `f_s = 256` bits independent of this encoding.
//!
//! Group: `p = 2q + 1` a safe prime (found deterministically at first use),
//! `g = 4` generating the order-`q` subgroup of quadratic residues.

use crate::sha256::Sha256;
use std::fmt;
use std::sync::OnceLock;

/// Multiplication mod `m` without overflow (`m < 2^63`).
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by square-and-multiply.
fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin, exact for all `n < 2^64` with this witness set.
fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The group parameters shared by every key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupParams {
    /// Safe prime modulus, `p = 2q + 1`, `p < 2^63`.
    pub p: u64,
    /// Prime order of the quadratic-residue subgroup.
    pub q: u64,
    /// Generator of the order-`q` subgroup (`g = 4 = 2²`).
    pub g: u64,
}

static PARAMS: OnceLock<GroupParams> = OnceLock::new();

/// Returns the lazily computed global group parameters.
///
/// The search starts just below `2^62` and walks downward over odd `q`
/// until both `q` and `2q + 1` are prime; it is deterministic, so every
/// process in the workspace agrees on the same group.
pub fn group_params() -> &'static GroupParams {
    PARAMS.get_or_init(|| {
        let mut q: u64 = (1u64 << 61) - 1; // odd starting point below 2^61
        loop {
            if is_prime_u64(q) {
                let p = 2 * q + 1; // < 2^62, well inside the mulmod bound
                if is_prime_u64(p) {
                    return GroupParams { p, q, g: 4 };
                }
            }
            q -= 2;
        }
    })
}

/// A secret (signing) key: an exponent in `[1, q-1]`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(u64);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        write!(f, "SecretKey(..)")
    }
}

/// A public (verification) key: `g^sk mod p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(u64);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:#018x})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl PublicKey {
    /// Raw group element.
    pub fn to_u64(self) -> u64 {
        self.0
    }

    /// Big-endian byte encoding used in challenge hashes.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Verifies `sig` over `message`.
    ///
    /// Computes `r' = g^s · pk^(q-e) mod p` and accepts iff the Fiat–Shamir
    /// challenge of `(r', pk, message)` equals `e`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let params = group_params();
        if sig.e >= params.q || sig.s >= params.q {
            return false;
        }
        if self.0 <= 1 || self.0 >= params.p {
            return false;
        }
        let gs = powmod(params.g, sig.s, params.p);
        let pk_neg_e = powmod(self.0, params.q - sig.e, params.p);
        let r = mulmod(gs, pk_neg_e, params.p);
        challenge(r, self.0, message, params.q) == sig.e
    }
}

/// A Schnorr signature `(e, s)`.
///
/// Encoded size is 16 bytes; the 2LDAG overhead model accounts it at the
/// paper's `f_s = 256` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Fiat–Shamir challenge.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl Signature {
    /// Byte encoding `(e ‖ s)`, big-endian.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Decodes a signature from [`Signature::to_bytes`] output.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Signature {
            e: u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")),
            s: u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }

    /// A deliberately invalid signature, used by fault injection.
    pub fn garbage() -> Self {
        Signature { e: 0, s: 0 }
    }
}

fn challenge(r: u64, pk: u64, message: &[u8], q: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(b"2ldag-schnorr-challenge");
    h.update(&r.to_be_bytes());
    h.update(&pk.to_be_bytes());
    h.update(message);
    h.finalize().prefix_u64() % q
}

/// A signing key pair.
///
/// # Example
///
/// ```
/// use tldag_crypto::schnorr::KeyPair;
///
/// let kp = KeyPair::from_seed(42);
/// let sig = kp.sign(b"block header bytes");
/// assert!(kp.public().verify(b"block header bytes", &sig));
/// assert!(!kp.public().verify(b"different message", &sig));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    sk: SecretKey,
    pk: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a seed. Every simulated node
    /// uses its node id as the seed, which models the paper's assumption that
    /// keys are provisioned at registration time.
    pub fn from_seed(seed: u64) -> Self {
        let params = group_params();
        let mut h = Sha256::new();
        h.update(b"2ldag-keygen");
        h.update(&seed.to_be_bytes());
        let sk = h.finalize().prefix_u64() % (params.q - 1) + 1;
        let pk = powmod(params.g, sk, params.p);
        KeyPair {
            sk: SecretKey(sk),
            pk: PublicKey(pk),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.pk
    }

    /// Signs `message` with a deterministic (RFC-6979-style) nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let params = group_params();
        let mut h = Sha256::new();
        h.update(b"2ldag-schnorr-nonce");
        h.update(&self.sk.0.to_be_bytes());
        h.update(message);
        let k = h.finalize().prefix_u64() % (params.q - 1) + 1;
        let r = powmod(params.g, k, params.p);
        let e = challenge(r, self.pk.0, message, params.q);
        let s = (k + mulmod(e, self.sk.0, params.q)) % params.q;
        Signature { e, s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_params_are_a_safe_prime_group() {
        let params = group_params();
        assert!(is_prime_u64(params.p));
        assert!(is_prime_u64(params.q));
        assert_eq!(params.p, 2 * params.q + 1);
        // g = 4 is a quadratic residue, so its order divides q; q is prime and
        // g != 1, hence order is exactly q.
        assert_eq!(powmod(params.g, params.q, params.p), 1);
        assert_ne!(powmod(params.g, 1, params.p), 1);
    }

    #[test]
    fn miller_rabin_known_values() {
        for p in [2u64, 3, 5, 7, 61, 2_147_483_647, 1_000_000_007] {
            assert!(is_prime_u64(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 561, 41041, 825_265, 321_197_185, 1_000_000_008] {
            assert!(!is_prime_u64(c), "{c} is composite");
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::from_seed(1);
        for msg in [&b"a"[..], b"", b"the quick brown fox", &[0u8; 1000]] {
            let sig = kp.sign(msg);
            assert!(kp.public().verify(msg, &sig));
        }
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = KeyPair::from_seed(2);
        let sig = kp.sign(b"original");
        assert!(!kp.public().verify(b"tampered", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let alice = KeyPair::from_seed(3);
        let bob = KeyPair::from_seed(4);
        let sig = alice.sign(b"message");
        assert!(!bob.public().verify(b"message", &sig));
    }

    #[test]
    fn verify_rejects_garbage_and_mutations() {
        let kp = KeyPair::from_seed(5);
        let sig = kp.sign(b"message");
        assert!(!kp.public().verify(b"message", &Signature::garbage()));
        let flipped_e = Signature {
            e: sig.e ^ 1,
            ..sig
        };
        let flipped_s = Signature {
            s: sig.s ^ 1,
            ..sig
        };
        assert!(!kp.public().verify(b"message", &flipped_e));
        assert!(!kp.public().verify(b"message", &flipped_s));
    }

    #[test]
    fn signature_bytes_round_trip() {
        let kp = KeyPair::from_seed(6);
        let sig = kp.sign(b"encode me");
        assert_eq!(Signature::from_bytes(sig.to_bytes()), sig);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let keys: Vec<u64> = (0..100)
            .map(|s| KeyPair::from_seed(s).public().to_u64())
            .collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = KeyPair::from_seed(7);
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let kp = KeyPair::from_seed(8);
        let params = group_params();
        let sig = Signature { e: params.q, s: 1 };
        assert!(!kp.public().verify(b"m", &sig));
    }

    #[test]
    fn debug_never_reveals_secret() {
        let kp = KeyPair::from_seed(9);
        let dbg = format!("{kp:?}");
        assert!(dbg.contains("SecretKey(..)"));
    }
}
