//! Pure-Rust SHA-256 (FIPS 180-4).
//!
//! This is the `H(.)` of the 2LDAG paper: every block-header digest, Merkle
//! node, puzzle evaluation, and signature challenge in the workspace flows
//! through this implementation. It is validated against the NIST short/long
//! message vectors in the unit tests below.

use crate::digest::Digest;

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use tldag_crypto::sha256::{sha256, Sha256};
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffer_len > 0 {
            let take = rest.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let arr: &[u8; 64] = block.try_into().expect("split_at(64)");
            self.compress(arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffer_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, then zero padding, then the 64-bit big-endian length.
        self.update(&[0x80]);
        // `update` changed total_len; padding is length-neutral from here on,
        // so write zeros directly through the buffer machinery.
        while self.buffer_len != 56 {
            let zeros = if self.buffer_len < 56 {
                56 - self.buffer_len
            } else {
                64 - self.buffer_len + 56
            };
            // Feed zeros in buffer-sized chunks.
            let chunk = [0u8; 64];
            let n = zeros.min(64);
            let before = self.total_len;
            self.update(&chunk[..n]);
            self.total_len = before; // padding does not count toward message length
        }
        let before = self.total_len;
        self.update(&bit_len.to_be_bytes());
        self.total_len = before;
        debug_assert_eq!(self.buffer_len, 0, "padding must close the final block");

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_bytes(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks_exact(4)"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Example
///
/// ```
/// use tldag_crypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// SHA-256 over the concatenation of two byte slices, a frequent pattern when
/// hashing `(parent_digest ‖ child_bytes)` pairs.
pub fn sha256_pair(a: &[u8], b: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(a);
    hasher.update(b);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(s: &str) -> String {
        sha256(s.as_bytes()).to_string()
    }

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            hex_digest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex_digest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_message() {
        assert_eq!(
            hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bit_message() {
        assert_eq!(
            hex_digest(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                 hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            ),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_string(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..200u8).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn lengths_spanning_padding_boundaries() {
        // 55, 56, 63, 64, 65 bytes hit every branch of the padding logic.
        let known = [
            (
                55usize,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                63,
                "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
            (
                65,
                "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0",
            ),
        ];
        for (len, expect) in known {
            let data = vec![b'a'; len];
            assert_eq!(sha256(&data).to_string(), expect, "len {len}");
        }
    }

    #[test]
    fn pair_equals_concatenation() {
        assert_eq!(sha256_pair(b"foo", b"bar"), sha256(b"foobar"));
    }
}
