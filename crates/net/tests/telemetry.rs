//! Live-telemetry acceptance over real sockets: a 3-node loopback cluster
//! serves `/metrics` and `/journal` while its slot loop runs, a mid-run
//! scrape sees slots advancing and non-zero phase latencies (the `tldag
//! status` path end to end), and — the guardrail the whole subsystem
//! rests on — running with telemetry listeners changes no digest and no
//! PoP counter: observability reads the protocol, never steers it.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tldag_net::runtime::NodeOutcome;
use tldag_net::telemetry::{scrape_metrics, total_row, StatusRow};
use tldag_net::{NetNode, NetNodeConfig};
use tldag_obs::http_get;
use tldag_sim::NodeId;

/// Binds-and-releases `n` loopback UDP ports.
fn discover_udp_ports(n: usize) -> Vec<SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

/// Binds-and-releases `n` loopback TCP ports (metrics listeners).
fn discover_tcp_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind metrics probe"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("metrics probe addr"))
        .collect()
}

fn founder_configs(addrs: &[SocketAddr], seed: u64, slots: u64, pop: bool) -> Vec<NetNodeConfig> {
    let founders = addrs.len();
    (0..founders)
        .map(|i| {
            let mut config = NetNodeConfig::new(NodeId(i as u32), addrs[i], seed, founders, slots);
            config.peers = (0..founders)
                .filter(|&j| j != i)
                .map(|j| (NodeId(j as u32), addrs[j]))
                .collect();
            config.pop = pop;
            config.linger = Duration::from_millis(2000);
            config
        })
        .collect()
}

fn run_nodes(configs: Vec<NetNodeConfig>) -> Vec<NodeOutcome> {
    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = configs
        .into_iter()
        .map(|config| {
            std::thread::spawn(move || {
                NetNode::new(config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();
    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| o.run.node.0);
    outcomes
}

#[test]
fn live_cluster_is_scrapable_mid_run_with_nonzero_phase_latencies() {
    let addrs = discover_udp_ports(3);
    let metrics = discover_tcp_ports(3);
    let mut configs = founder_configs(&addrs, 72_001, 150, true);
    for (config, addr) in configs.iter_mut().zip(&metrics) {
        config.metrics_addr = Some(*addr);
    }

    // Scrape from this thread while the cluster runs in its own threads.
    let scraped: Arc<std::sync::Mutex<Vec<Vec<tldag_obs::Sample>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let journal_line = Arc::new(std::sync::Mutex::new(String::new()));
    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let scraped = Arc::clone(&scraped);
        let journal_line = Arc::clone(&journal_line);
        let done = Arc::clone(&done);
        let targets = metrics.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            while Instant::now() < deadline && !done.load(Ordering::Relaxed) {
                let per_node: Vec<Vec<tldag_obs::Sample>> = targets
                    .iter()
                    .filter_map(|a| scrape_metrics(*a, Duration::from_millis(400)).ok())
                    .collect();
                // A useful sample: every node answered, slots have begun,
                // and the generate-phase histogram has observations.
                let mid_run = per_node.len() == targets.len()
                    && per_node.iter().all(|s| {
                        tldag_obs::expo::sample_value(s, "tldag_slot", &[]).unwrap_or(0.0) >= 1.0
                            && tldag_obs::expo::sample_value(
                                s,
                                "tldag_phase_latency_micros_count",
                                &[("phase", "generate")],
                            )
                            .unwrap_or(0.0)
                                >= 1.0
                    });
                if mid_run {
                    *journal_line.lock().expect("journal") =
                        http_get(targets[0], "/journal", Duration::from_millis(400))
                            .unwrap_or_default();
                    *scraped.lock().expect("scraped") = per_node;
                    return;
                }
                std::thread::sleep(Duration::from_millis(15));
            }
        })
    };

    let outcomes = run_nodes(configs);
    done.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread panicked");

    let per_node = scraped.lock().expect("scraped").clone();
    assert_eq!(
        per_node.len(),
        3,
        "the scraper must catch all 3 nodes mid-run (cluster finished too fast?)"
    );

    // The `tldag status` aggregation path on the captured mid-run state.
    let rows: Vec<StatusRow> = per_node
        .iter()
        .enumerate()
        .map(|(i, s)| StatusRow::from_samples(metrics[i].to_string(), s))
        .collect();
    let mut ids: Vec<u64> = rows.iter().map(|r| r.node.expect("node id")).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2]);
    for row in &rows {
        assert!(row.slot >= 1, "scrape was mid-run: {row:?}");
        assert!(row.chain_len >= 1, "chains grow while scraped: {row:?}");
        assert!(
            row.generate_p50 > 0,
            "generate-phase latency must be non-zero mid-run: {row:?}"
        );
    }
    let total = total_row(&per_node, &rows);
    assert_eq!(
        total.chain_len,
        rows.iter().map(|r| r.chain_len).sum::<u64>(),
        "the TOTAL row sums chains"
    );
    assert!(total.requests_sent >= rows.iter().map(|r| r.requests_sent).max().unwrap());

    // The journal served structured JSONL with slot lifecycle events.
    let journal = journal_line.lock().expect("journal").clone();
    assert!(
        journal.lines().any(|l| l.contains("\"kind\":\"slt\"")),
        "journal must carry slot events, got: {}",
        &journal[..journal.len().min(200)]
    );
    assert!(
        journal.lines().any(|l| l.contains("\"kind\":\"gen\"")),
        "journal must carry generation events"
    );

    // End-of-run reports carry the merged transport counters.
    for o in &outcomes {
        assert!(o.run.net.datagrams_sent > 0, "RunReport.net must be live");
        assert_eq!(o.run.chain_len, 150);
    }
}

#[test]
fn telemetry_listeners_change_no_digest_and_no_pop_counter() {
    // Identical seed/slots, PoP on: one run with metrics listeners, one
    // without. The protocol outcome must be byte-identical — telemetry is
    // pure observation.
    let seed = 72_002;
    let slots = 8;

    let addrs = discover_udp_ports(3);
    let mut with_metrics = founder_configs(&addrs, seed, slots, true);
    let metrics = discover_tcp_ports(3);
    for (config, addr) in with_metrics.iter_mut().zip(&metrics) {
        config.metrics_addr = Some(*addr);
    }
    let observed = run_nodes(with_metrics);

    let addrs = discover_udp_ports(3);
    let unobserved = run_nodes(founder_configs(&addrs, seed, slots, true));

    for (a, b) in observed.iter().zip(&unobserved) {
        assert_eq!(
            a.run.chain_digest, b.run.chain_digest,
            "metrics on/off must not change node {}'s chain",
            a.run.node
        );
        assert_eq!(a.run.pop_attempts, b.run.pop_attempts);
        assert_eq!(a.run.pop_successes, b.run.pop_successes);
        assert_eq!(a.run.chain_len, b.run.chain_len);
    }
}
