//! Batched-I/O pipeline acceptance: fragmented envelopes that arrive
//! interleaved within a receive batch — and duplicated or reordered by the
//! transport — always reassemble to the exact original message or are
//! dropped cleanly, and an idle receiver parks instead of spinning.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tldag_core::block::BlockId;
use tldag_core::codec::WireMessage;
use tldag_core::config::ProtocolConfig;
use tldag_core::node::LedgerNode;
use tldag_net::runtime::serve_wire_request;
use tldag_net::{Endpoint, EndpointConfig, FaultSpec, FaultyTransport, Inbound, UdpTransport};
use tldag_sim::{DetRng, NodeId};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

fn fast_config() -> EndpointConfig {
    EndpointConfig {
        request_timeout: Duration::from_millis(60),
        max_retries: 5,
        max_backoff: Duration::from_millis(240),
        ..EndpointConfig::default()
    }
}

/// An endpoint whose transport duplicates and reorders datagrams with the
/// given seed, running its receiver on a background thread.
struct FaultyPeer {
    endpoint: Arc<Endpoint>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultyPeer {
    fn spawn(id: NodeId, seed: u64, node: Option<LedgerNode>) -> (Self, SocketAddr) {
        let spec = FaultSpec {
            drop: 0.0,
            duplicate: 0.3,
            reorder: 0.3,
        };
        let udp = UdpTransport::bind(loopback()).expect("bind");
        let faulty = Arc::new(FaultyTransport::new(udp, spec, DetRng::seed_from(seed)));
        let endpoint = Arc::new(Endpoint::with_transport(
            id,
            Box::new(faulty),
            fast_config(),
        ));
        let addr = endpoint.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let endpoint = Arc::clone(&endpoint);
            let stop = Arc::clone(&stop);
            let node = node.map(Arc::new);
            std::thread::spawn(move || {
                let mut handler = |inbound: Inbound| {
                    if let (Inbound::Wire { src, seq, msg, .. }, Some(node)) = (inbound, &node) {
                        if let Some(reply) = serve_wire_request(node, &msg) {
                            let _ = endpoint.send_reply(src, seq, &reply);
                        }
                    }
                };
                endpoint.run_receiver(&stop, &mut handler);
            })
        };
        (
            FaultyPeer {
                endpoint,
                stop,
                thread: Some(thread),
            },
            addr,
        )
    }
}

impl Drop for FaultyPeer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn interleaved_fragments_under_dup_and_reorder_always_reassemble() {
    // Property sweep: 8 KiB payloads force every Block reply across many
    // fragments; two concurrent requesters keep fragments of distinct
    // messages interleaved within the responder's send batches; the
    // transport duplicates and reorders 30% of datagrams on both sides.
    // No loss is injected, so every request MUST deliver the exact block
    // — duplicates must be idempotent and reordering healed, never a
    // corrupt payload, never a panic.
    let cfg = ProtocolConfig::test_default();
    let blocks = 4usize;
    for seed in 0..6u64 {
        let mut node = LedgerNode::new(NodeId(1), vec![], &cfg);
        for slot in 0..blocks {
            node.generate_block(&cfg, slot as u64, vec![slot as u8; 8 * 1024])
                .expect("generate");
        }
        let (responder, addr) = FaultyPeer::spawn(NodeId(1), 0xD00D ^ seed, Some(node));
        let (requester, _) = FaultyPeer::spawn(NodeId(0), 0xBEEF ^ (seed << 8), None);

        let workers: Vec<_> = (0..2)
            .map(|lane| {
                let endpoint = Arc::clone(&requester.endpoint);
                std::thread::spawn(move || {
                    for seq in 0..blocks as u32 {
                        let want = BlockId::new(NodeId(1), seq);
                        let reply = endpoint.request(
                            addr,
                            &WireMessage::FetchBlock {
                                from: NodeId(0),
                                id: want,
                            },
                        );
                        let Some((from, WireMessage::Block(block))) = reply else {
                            panic!("lane {lane} seq {seq}: lossless faults must deliver, got {reply:?}");
                        };
                        assert_eq!(from, NodeId(1));
                        assert_eq!(block.id, want);
                        assert_eq!(
                            block.body.payload,
                            vec![seq as u8; 8 * 1024],
                            "lane {lane}: reassembly returned a corrupt payload"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("requester lane");
        }
        let stats = requester.endpoint.stats();
        assert!(
            stats.messages_reassembled >= 2 * blocks as u64,
            "seed {seed}: every reply must cross fragment reassembly, stats {stats:?}"
        );
        assert_eq!(
            stats.malformed_drops, 0,
            "seed {seed}: duplication/reordering must never look malformed"
        );
        drop(responder);
    }
}

#[test]
fn idle_receiver_parks_instead_of_spinning() {
    // Satellite regression for the barrier-era busy loop: a receiver with
    // no traffic must cost one park-timeout syscall per interval, not a
    // nonblocking-recv spin. Over ~1 s with the 250 ms default park the
    // loop should wake a handful of times; the old spin woke thousands.
    let endpoint =
        Arc::new(Endpoint::bind(NodeId(0), loopback(), EndpointConfig::default()).expect("bind"));
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let endpoint = Arc::clone(&endpoint);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handler = |_inbound: Inbound| {};
            endpoint.run_receiver(&stop, &mut handler);
        })
    };
    std::thread::sleep(Duration::from_millis(1050));
    stop.store(true, Ordering::Relaxed);
    thread.join().expect("receiver thread");

    let stats = endpoint.stats();
    assert!(
        stats.recv_wakeups <= 10,
        "an idle second must park (~4 wakeups at the 250 ms default), saw {} wakeups",
        stats.recv_wakeups
    );
    assert_eq!(
        stats.idle_wakeups, stats.recv_wakeups,
        "every wakeup of an idle receiver is an expired park"
    );
    assert_eq!(stats.datagrams_received, 0);
}
