//! Membership churn edges over real sockets: liveness eviction of a
//! silently dead peer, a dynamic (unscheduled) join racing the slot
//! boundaries of a running cluster, and re-join of a previously evicted
//! id at the addressing layer. Loss injection uses fixed
//! [`FaultyTransport`] seeds, so every run exercises the same datagram
//! fates.

use std::net::SocketAddr;
use std::time::Duration;
use tldag_net::runtime::NodeOutcome;
use tldag_net::{FaultSpec, NetNode, NetNodeConfig, PeerTable};
use tldag_sim::NodeId;

/// Binds-and-releases `n` loopback UDP ports.
fn discover_ports(n: usize) -> Vec<SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

fn founder_config(
    id: u32,
    addrs: &[SocketAddr],
    founders: usize,
    seed: u64,
    slots: u64,
) -> NetNodeConfig {
    let mut config = NetNodeConfig::new(NodeId(id), addrs[id as usize], seed, founders, slots);
    config.peers = (0..founders)
        .filter(|&j| j != id as usize)
        .map(|j| (NodeId(j as u32), addrs[j]))
        .collect();
    config.linger = Duration::from_millis(2500);
    config
}

fn run_nodes(configs: Vec<NetNodeConfig>) -> Vec<NodeOutcome> {
    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = configs
        .into_iter()
        .map(|config| {
            std::thread::spawn(move || {
                NetNode::new(config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();
    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| o.run.node.0);
    outcomes
}

#[test]
fn silent_peer_is_evicted_and_the_cluster_finishes() {
    // Node 2 believes the run is 3 slots long and then goes quiet without
    // any leave announcement — a silent death from the others' viewpoint.
    // Nodes 0 and 1 expect 9 slots; without eviction they would burn a
    // full slot_timeout per remaining slot. With eviction they cut node 2
    // loose at the first blocked barrier and finish.
    let addrs = discover_ports(3);
    let mut configs: Vec<NetNodeConfig> = (0..3u32)
        .map(|id| {
            let mut c = founder_config(id, &addrs, 3, 90_701, 9);
            c.evict_after = Some(Duration::from_millis(600));
            c.slot_timeout = Duration::from_secs(30);
            c
        })
        .collect();
    configs[2].slots = 3;
    configs[2].evict_after = None;
    configs[2].linger = Duration::from_millis(200);

    let outcomes = run_nodes(configs);
    assert_eq!(outcomes[2].run.chain_len, 3, "the dying node ran 3 slots");
    for survivor in &outcomes[..2] {
        assert_eq!(
            survivor.run.chain_len, 9,
            "survivors must complete the full run past the eviction"
        );
    }
    let evictions: u64 = outcomes.iter().map(|o| o.stats.evictions).sum();
    assert!(
        evictions >= 1,
        "at least one survivor must evict the silent peer (got {evictions})"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| o.stats.evictions > 0 && o.run.degraded),
        "an evicting node must report its run degraded — the chain \
diverged from the reference schedule"
    );
}

#[test]
fn dynamic_join_races_slot_boundaries_under_loss() {
    // An *unscheduled* join: the founders know nothing in advance; the
    // joiner negotiates its slot from the handshake (bootstrap slot + 4)
    // and its announcement must land before the cluster crosses that
    // boundary. PoP lockstep paces the founders, and fixed fault seeds
    // drop a deterministic subset of the handshake/announce datagrams, so
    // the race is exercised reproducibly.
    let addrs = discover_ports(4);
    let seed = 77_412;
    let slots = 12;
    let mut configs: Vec<NetNodeConfig> = (0..3u32)
        .map(|id| {
            let mut c = founder_config(id, &addrs, 3, seed, slots);
            c.pop = true;
            c.fault = Some(FaultSpec::degraded(0.10));
            c.slot_timeout = Duration::from_secs(20);
            c.hello_timeout = Duration::from_secs(20);
            c
        })
        .collect();
    let mut joiner = NetNodeConfig::new(NodeId(3), addrs[3], seed, 3, slots);
    joiner.pop = true;
    joiner.join = Some(addrs[0]);
    joiner.fault = Some(FaultSpec::degraded(0.10));
    joiner.slot_timeout = Duration::from_secs(20);
    joiner.hello_timeout = Duration::from_secs(20);
    joiner.linger = Duration::from_millis(2500);
    configs.push(joiner);

    let outcomes = run_nodes(configs);
    let joiner = &outcomes[3];
    assert!(
        joiner.run.catch_up_ms > 0,
        "the joiner must measure its catch-up latency"
    );
    assert!(
        (1..slots).contains(&joiner.run.slots),
        "the joiner must execute a proper suffix of the run (got {})",
        joiner.run.slots
    );
    assert_eq!(
        joiner.run.chain_len, joiner.run.slots,
        "one block per executed slot"
    );
    for o in &outcomes {
        assert!(
            !o.run.degraded,
            "node {} timed out a barrier — the join lost the race",
            o.run.node
        );
    }
    // The joiner took part in the verification workload once old enough
    // blocks existed.
    assert!(
        joiner.run.pop_attempts > 0,
        "the joiner must run PoP verifications after joining"
    );
}

#[test]
fn evicted_id_can_rejoin_at_the_addressing_layer() {
    // The PeerTable half of re-join: forget must clear liveness so the
    // fresh incarnation is not instantly re-evicted on stale silence.
    let a: SocketAddr = "127.0.0.1:9401".parse().unwrap();
    let b: SocketAddr = "127.0.0.1:9402".parse().unwrap();
    let table = PeerTable::new([(NodeId(1), a)]);
    table.mark_heard(NodeId(1));
    std::thread::sleep(Duration::from_millis(10));
    assert!(table.gone_quiet(NodeId(1), Duration::from_millis(1)));
    table.forget(NodeId(1));
    // Re-join on a new port: addressable again, not "gone quiet".
    assert!(table.insert(NodeId(1), b));
    assert_eq!(table.addr(NodeId(1)), Some(b));
    assert!(
        !table.gone_quiet(NodeId(1), Duration::from_millis(1)),
        "a re-joined id must start from a clean liveness slate"
    );
}
