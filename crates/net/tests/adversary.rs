//! Byzantine behaviors over real loopback sockets: an equivocator and a
//! digest liar are detected from conflicting `SlotDigest` gossip (pull
//! recovery re-converges the honest barriers), and a membership flapper is
//! evicted without stalling the honest slot loop. Honest nodes must keep
//! byte-identical chain digests with an in-memory engine run under the
//! identical [`Behavior`] placement — the honest-subset parity contract.

use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tldag_core::attack::Behavior;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_net::harness::replay_reference_schedule;
use tldag_net::runtime::{deployment_protocol_config, deployment_topology, NodeOutcome};
use tldag_net::{AdversaryPlacement, NetNode, NetNodeConfig};
use tldag_obs::http_get;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// Binds-and-releases `n` loopback UDP ports.
fn discover_ports(n: usize) -> Vec<SocketAddr> {
    let sockets: Vec<std::net::UdpSocket> = (0..n)
        .map(|_| std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    sockets
        .iter()
        .map(|s| s.local_addr().expect("probe addr"))
        .collect()
}

/// Binds-and-releases a loopback TCP port (for a metrics listener).
fn discover_tcp_port() -> SocketAddr {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("bind tcp probe")
        .local_addr()
        .expect("tcp probe addr")
}

fn founder_config(
    id: u32,
    addrs: &[SocketAddr],
    founders: usize,
    seed: u64,
    slots: u64,
) -> NetNodeConfig {
    let mut config = NetNodeConfig::new(NodeId(id), addrs[id as usize], seed, founders, slots);
    config.peers = (0..founders)
        .filter(|&j| j != id as usize)
        .map(|j| (NodeId(j as u32), addrs[j]))
        .collect();
    config.linger = Duration::from_millis(2500);
    config
}

fn run_nodes(configs: Vec<NetNodeConfig>) -> Vec<NodeOutcome> {
    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = configs
        .into_iter()
        .map(|config| {
            std::thread::spawn(move || {
                NetNode::new(config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();
    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| o.run.node.0);
    outcomes
}

/// The in-memory engine run the wire cluster must agree with: same
/// topology, same workload, same adversary placement (applied through
/// [`replay_reference_schedule`], exactly as `tldag cluster` does).
fn engine_reference(
    seed: u64,
    nodes: usize,
    slots: u64,
    pop: bool,
    placements: &[AdversaryPlacement],
) -> TldagNetwork {
    let topology = deployment_topology(seed, nodes, 300.0);
    let cfg = deployment_protocol_config(3);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut reference = TldagNetwork::new(cfg, topology, schedule, seed);
    reference.set_verification_workload(if pop {
        VerificationWorkload::RandomPast {
            min_age_slots: nodes as u64,
        }
    } else {
        VerificationWorkload::Disabled
    });
    replay_reference_schedule(&mut reference, &[], placements, nodes, seed, slots);
    reference
}

/// Honest chains must match the engine reference block for block; the
/// adversary's canonical chain is out of scope for the verdict.
fn assert_honest_parity(outcomes: &[NodeOutcome], reference: &TldagNetwork, honest: &[u32]) {
    for &id in honest {
        assert_eq!(
            outcomes[id as usize].run.chain_digest,
            reference.chain_digest(NodeId(id)),
            "honest node n{id} diverged from the engine reference"
        );
    }
}

#[test]
fn equivocator_is_detected_and_honest_parity_holds() {
    // Node 3 mines a second, genuinely signed block per slot from slot 2
    // on and gossips both digests. Honest receivers must notice the
    // conflicting pair, discard it, re-pull the canonical digest, and
    // finish with chains identical to the engine reference — including
    // the PoP verification counters, which the equivocation must not
    // perturb (the adversary's canonical chain stays conformant).
    let seed = 41_007;
    let slots = 9;
    let addrs = discover_ports(4);
    let placements = [AdversaryPlacement {
        node: NodeId(3),
        behavior: Behavior::Equivocate,
        slot: 2,
    }];
    let configs: Vec<NetNodeConfig> = (0..4u32)
        .map(|id| {
            let mut c = founder_config(id, &addrs, 4, seed, slots);
            c.pop = true;
            c.slot_timeout = Duration::from_secs(20);
            if id == 3 {
                c.behavior = Behavior::Equivocate;
                c.behavior_from = 2;
            }
            c
        })
        .collect();

    let outcomes = run_nodes(configs);
    let reference = engine_reference(seed, 4, slots, true, &placements);

    assert_honest_parity(&outcomes, &reference, &[0, 1, 2]);
    let conflicts: u64 = outcomes.iter().map(|o| o.stats.digest_conflicts).sum();
    let pulls: u64 = outcomes.iter().map(|o| o.stats.conflict_pulls).sum();
    assert!(
        conflicts >= 1 && pulls >= 1,
        "honest nodes must detect the equivocation and re-pull \
(conflicts {conflicts}, pulls {pulls})"
    );
    for o in &outcomes {
        assert!(
            !o.run.degraded,
            "node {} timed out a barrier — pull recovery failed",
            o.run.node
        );
    }
    let wire_attempts: u64 = outcomes.iter().map(|o| o.run.pop_attempts).sum();
    let wire_successes: u64 = outcomes.iter().map(|o| o.run.pop_successes).sum();
    let (ref_attempts, ref_successes) = reference.pop_counters();
    assert!(wire_attempts > 0, "the workload must run PoP verifications");
    assert_eq!(
        (wire_attempts, wire_successes),
        (ref_attempts, ref_successes),
        "PoP counters must match the engine under the same placement"
    );
}

#[test]
fn digest_liar_is_named_in_the_journal() {
    // Node 3 gossips corrupted digests for its own slots from slot 2 on.
    // Honest nodes must (a) re-pull and converge, (b) keep honest parity,
    // and (c) name the liar in their live journal — scraped over HTTP
    // *while the cluster runs*, the same evidence `tldag status` and the
    // forensics path consume. PoP mode, so digest gossip fans out to
    // every generator: node 0 observes the conflicting pair no matter
    // where the liar sits in the radio topology.
    let seed = 52_118;
    let slots = 8;
    let addrs = discover_ports(4);
    let metrics_addr = discover_tcp_port();
    let placements = [AdversaryPlacement {
        node: NodeId(3),
        behavior: Behavior::DigestLie,
        slot: 2,
    }];
    let configs: Vec<NetNodeConfig> = (0..4u32)
        .map(|id| {
            let mut c = founder_config(id, &addrs, 4, seed, slots);
            c.pop = true;
            c.slot_timeout = Duration::from_secs(20);
            // Stretch the serving tail so the scraper below reliably
            // observes a live listener even if it starts polling late.
            c.linger = Duration::from_millis(4000);
            if id == 0 {
                c.metrics_addr = Some(metrics_addr);
            }
            if id == 3 {
                c.behavior = Behavior::DigestLie;
                c.behavior_from = 2;
            }
            c
        })
        .collect();

    // Spawn by hand: the journal must be scraped mid-run (the HTTP
    // listener dies with the node thread).
    let handles: Vec<std::thread::JoinHandle<NodeOutcome>> = configs
        .into_iter()
        .map(|config| {
            std::thread::spawn(move || {
                NetNode::new(config)
                    .expect("node construction")
                    .run()
                    .expect("node run")
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut journal = String::new();
    let mut named = false;
    while Instant::now() < deadline && !named {
        if let Ok(text) = http_get(metrics_addr, "/journal", Duration::from_secs(1)) {
            named = text.contains("conflicting digests from n3")
                && text.contains("peer flagged as adversarial");
            journal = text;
        }
        if !named {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    let mut outcomes: Vec<NodeOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| o.run.node.0);

    assert!(
        named,
        "node 0's journal must name n3 as adversarial; last scrape:\n{journal}"
    );
    let reference = engine_reference(seed, 4, slots, true, &placements);
    assert_honest_parity(&outcomes, &reference, &[0, 1, 2]);
    let pulls: u64 = outcomes.iter().map(|o| o.stats.conflict_pulls).sum();
    assert!(pulls >= 1, "the lie must trigger DigestReq pull recovery");
    for o in &outcomes {
        assert!(!o.run.degraded, "node {} timed out a barrier", o.run.node);
    }
}

/// A flapper goes dark mid-run, is evicted by liveness, then spams rejoin
/// announcements the honest roster must refuse. The honest nodes finish
/// every slot; the flapper's chain stops where it went dark. No parity is
/// asserted — the flapper forks from the reference by construction (the
/// engine has no liveness eviction), which is exactly why the cluster
/// verdict scopes to the honest subset.
fn flapper_run(seed: u64, window: u64, pop: bool) {
    let slots = 9;
    let addrs = discover_ports(4);
    let configs: Vec<NetNodeConfig> = (0..4u32)
        .map(|id| {
            let mut c = founder_config(id, &addrs, 4, seed, slots);
            c.pop = pop;
            c.window = window;
            if id == 3 {
                c.behavior = Behavior::Flapper;
                c.behavior_from = 3;
                // Bounds the rejoin-spam phase (2x slot_timeout), and is
                // still generous for the three honest slots it executes.
                // Wide enough that eviction news + at least one refused
                // rejoin land even on a loaded CI runner.
                c.slot_timeout = Duration::from_secs(6);
                c.linger = Duration::from_millis(200);
            } else {
                c.evict_after = Some(Duration::from_millis(600));
                c.slot_timeout = Duration::from_secs(30);
            }
            c
        })
        .collect();

    let outcomes = run_nodes(configs);
    for honest in &outcomes[..3] {
        assert_eq!(
            honest.run.chain_len, slots,
            "honest node {} must finish every slot past the eviction",
            honest.run.node
        );
    }
    assert!(
        outcomes[3].run.chain_len < slots,
        "the flapper went dark and must not have a full chain (len {})",
        outcomes[3].run.chain_len
    );
    let evictions: u64 = outcomes.iter().map(|o| o.stats.evictions).sum();
    assert!(
        evictions >= 1,
        "an honest node must evict the dark flapper (got {evictions})"
    );
    let rejections: u64 = outcomes.iter().map(|o| o.stats.flap_rejections).sum();
    assert!(
        rejections >= 1,
        "rejoin spam from an evicted id must be refused (got {rejections})"
    );
}

#[test]
fn flapper_is_evicted_without_stalling_lockstep() {
    flapper_run(63_229, 1, false);
}

#[test]
fn flapper_is_evicted_without_stalling_the_pipelined_window() {
    flapper_run(63_230, 4, true);
}
