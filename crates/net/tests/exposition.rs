//! Property tests for the metrics exposition path: everything
//! [`render_metrics`] emits must survive [`parse_exposition`] (the scraper,
//! `tldag status`, and the explorer's live mode all depend on that), and
//! the parser must reject arbitrary garbage with an error — never a panic.

use proptest::collection::vec;
use proptest::prelude::*;
use tldag_core::pop::PopMetrics;
use tldag_net::metrics::NetStats;
use tldag_net::{render_metrics, MetricsView, NodeTelemetry};
use tldag_obs::expo::{parse_exposition, sample_value, Expo};
use tldag_obs::hist::{HistogramSnapshot, LatencyHistogram, Phase};
use tldag_obs::histogram_quantile;
use tldag_sim::NodeId;

/// A fully-populated view exercising every family the renderer knows,
/// including the journal/span drop and eviction counters.
fn sample_view() -> MetricsView {
    let telemetry = NodeTelemetry::new(16);
    telemetry
        .phases
        .record(Phase::Generate, std::time::Duration::from_micros(120));
    telemetry
        .phases
        .record(Phase::Verify, std::time::Duration::from_micros(900));
    telemetry.pop_rtt.record_micros(1500);
    telemetry.fsync.record_micros(80);
    MetricsView {
        node: NodeId(2),
        slot: 7,
        net: NetStats {
            datagrams_sent: 100,
            requests_sent: 40,
            request_retries: 3,
            request_timeouts: 1,
            ..NetStats::default()
        },
        pop: PopMetrics {
            messages_sent: 9,
            timeouts: 1,
            ..PopMetrics::default()
        },
        pop_attempts: 5,
        pop_successes: 4,
        chain_len: 8,
        durable_len: 8,
        pruned_floor: 0,
        fsync_count: 9,
        segment_count: 1,
        roster_members: 3,
        roster_departed: 0,
        blacklist_banned: 1,
        adversaries_detected: 2,
        journal_len: 2,
        journal_dropped: 11,
        trace_spans: 6,
        trace_dropped: 1,
        trace_evicted: 13,
        window: 4,
        window_occupancy: 3,
        watermark_lag: 2,
        phases: telemetry.phases.snapshot(),
        slot_latency: telemetry.slot_latency.snapshot(),
        batch_fill: HistogramSnapshot::default(),
        pop_rtt: telemetry.pop_rtt.snapshot(),
        request_rtt: HistogramSnapshot::default(),
        retry_backoff: HistogramSnapshot::default(),
        fsync: telemetry.fsync.snapshot(),
    }
}

/// Every sample line the node renderer emits parses back, in order, and
/// every declared `# TYPE` family has at least one surviving sample —
/// including the trace/journal counter families added for forensics.
#[test]
fn render_metrics_roundtrips_every_family() {
    let text = render_metrics(&sample_view());
    let samples = parse_exposition(&text).expect("renderer output must parse");

    let sample_lines = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .count();
    assert_eq!(samples.len(), sample_lines, "no sample line may be lost");

    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let family = line
            .split_whitespace()
            .nth(2)
            .expect("TYPE line carries a family name");
        assert!(
            samples.iter().any(|s| s.name.starts_with(family)),
            "family {family} declared but yielded no samples"
        );
    }

    assert_eq!(
        sample_value(&samples, "tldag_journal_dropped_total", &[]),
        Some(11.0)
    );
    assert_eq!(
        sample_value(&samples, "tldag_trace_spans_total", &[]),
        Some(6.0)
    );
    assert_eq!(
        sample_value(&samples, "tldag_trace_dropped_total", &[]),
        Some(1.0)
    );
    assert_eq!(
        sample_value(&samples, "tldag_trace_evicted_total", &[]),
        Some(13.0)
    );
}

/// Maps raw bytes to printable ASCII — the workspace proptest shim has no
/// string strategies, so label values (including `"` and `\`, which
/// exercise the escaper) are derived from byte vectors.
fn printable(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b % 95 + 32) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary input never panics the parser: it either yields samples
    /// or a diagnostic string.
    #[test]
    fn parser_never_panics_on_arbitrary_text(bytes in vec(any::<u8>(), 0..400)) {
        let _ = parse_exposition(&String::from_utf8_lossy(&bytes));
        let _ = parse_exposition(&printable(&bytes));
    }

    /// Near-miss input — a valid document with bytes spliced into the
    /// middle — never panics either (truncated label blocks, split
    /// escapes, half numbers).
    #[test]
    fn parser_never_panics_on_corrupted_exposition(
        at in 0usize..4096,
        noise in vec(any::<u8>(), 0..12),
    ) {
        let mut text = render_metrics(&sample_view());
        let at = at.min(text.len());
        assert!(text.is_char_boundary(at), "renderer output is ASCII");
        text.insert_str(at, &printable(&noise));
        let _ = parse_exposition(&text);
    }

    /// Counters and gauges built with [`Expo`] round-trip exactly, label
    /// escaping included (quotes and backslashes in label values).
    #[test]
    fn expo_counters_and_gauges_roundtrip(
        entries in vec(
            (any::<u64>(), any::<u64>(), vec(any::<u8>(), 0..16), 0u64..u32::MAX as u64),
            1..8,
        ),
        gauge_value in -1e12f64..1e12,
    ) {
        let entries: Vec<(String, String, String, u64)> = entries
            .iter()
            .enumerate()
            .map(|(i, (name, key, value, count))| {
                (
                    format!("tldag_p{i}_m{:x}_total", name % 0xffff),
                    format!("k{:x}", key % 0xfff),
                    printable(value),
                    *count,
                )
            })
            .collect();
        let mut expo = Expo::new();
        for (family, key, value, count) in &entries {
            expo.counter_series(
                family,
                "property counter",
                &[(&[(key.as_str(), value.as_str())], *count)],
            );
        }
        expo.gauge("tldag_p_gauge", "property gauge", gauge_value);
        let samples = parse_exposition(&expo.finish()).expect("builder output parses");
        for (family, key, value, count) in &entries {
            prop_assert_eq!(
                sample_value(&samples, family, &[(key.as_str(), value.as_str())]),
                Some(*count as f64),
                "family {} with label {}={:?} lost in roundtrip", family, key, value
            );
        }
        // `fmt_value` prints floats with Rust's shortest-roundtrip
        // formatting, so the scrape is exact, not approximate.
        prop_assert_eq!(sample_value(&samples, "tldag_p_gauge", &[]), Some(gauge_value));
    }

    /// A histogram scraped back through the exposition estimates the same
    /// quantiles as the in-process snapshot.
    #[test]
    fn scraped_histogram_quantiles_match_snapshot(
        values in vec(0u64..5_000_000, 1..120),
        q in 0.01f64..1.0,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_micros(v);
        }
        let snap = h.snapshot();
        let mut expo = Expo::new();
        expo.histogram("tldag_p_micros", "property histogram", &[(&[], &snap)]);
        let samples = parse_exposition(&expo.finish()).expect("histogram parses");
        prop_assert_eq!(
            sample_value(&samples, "tldag_p_micros_count", &[]),
            Some(values.len() as f64)
        );
        let scraped = histogram_quantile(&samples, "tldag_p_micros", &[], q)
            .expect("non-empty histogram");
        // The snapshot clamps a bucket's upper bound to the observed max;
        // the exposition doesn't carry the max, so clamp before comparing.
        prop_assert_eq!(
            (scraped as u64).min(snap.max_micros),
            snap.quantile_micros(q)
        );
    }
}
