//! Hostile-envelope fuzzing: datagrams that are *well-formed enough* to be
//! dangerous — valid magic and CRC wrapping adversarial semantics (forged
//! sender ids, replayed sequence/request ids, oversized fragment claims,
//! lying trace TLVs, version and kind lies). The decode path must reject
//! each with the *right* [`NetError`] (drop attribution is what the
//! `tldag_net_*_drops_total` counters export), reassembly memory must stay
//! bounded under fragment-claim floods, and a live [`Endpoint`] fed the
//! same traffic from a raw socket must count every category without
//! panicking or leaking state.
//!
//! `PROPTEST_CASES` scales these suites into the CI fuzz job.

use proptest::collection::vec;
use proptest::prelude::*;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tldag_core::codec::{self, WireMessage};
use tldag_net::envelope::{decode_datagram, encode_message, Kind, HEADER_LEN, OVERHEAD};
use tldag_net::frag::Reassembler;
use tldag_net::{Endpoint, EndpointConfig, Inbound, NetError};
use tldag_sim::NodeId;
use tldag_storage::crc32::crc32;

/// Hand-builds a datagram with full control over every header field — the
/// attacker's encoder. The CRC is always valid (`stated_len` lets the
/// length field lie while the checksum still passes), so nothing here is
/// rejected for mere corruption: whatever the decoder refuses, it refuses
/// for the *semantic* violation.
#[allow(clippy::too_many_arguments)]
fn hostile_datagram(
    version: u8,
    kind: u8,
    sender: u32,
    seq: u64,
    req_id: u64,
    frag_index: u16,
    frag_count: u16,
    payload: &[u8],
    stated_len: Option<u16>,
    ext: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(OVERHEAD + payload.len() + ext.len());
    out.extend_from_slice(b"TLDG");
    out.push(version);
    out.push(kind);
    out.extend_from_slice(&sender.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&req_id.to_be_bytes());
    out.extend_from_slice(&frag_index.to_be_bytes());
    out.extend_from_slice(&frag_count.to_be_bytes());
    let stated = stated_len.unwrap_or(payload.len() as u16);
    out.extend_from_slice(&stated.to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(ext);
    let crc = crc32(&out).to_be_bytes();
    out.extend_from_slice(&crc);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every hostile shape lands in the decoder's *intended* rejection (or
    /// acceptance) class — never a panic, never a misattributed error. The
    /// attribution matters: the endpoint maps these variants onto distinct
    /// drop counters, so a wrong class here would mislead an operator
    /// reading `/metrics` during an actual attack.
    #[test]
    fn hostile_envelopes_decode_to_their_intended_class(
        shape in 0u8..8,
        sender in any::<u32>(),
        seq in any::<u64>(),
        req_id in any::<u64>(),
        payload in vec(any::<u8>(), 0..200),
        tweak in any::<u8>(),
    ) {
        match shape {
            // Forged sender id: framing-valid, so it decodes — identity is
            // not the envelope's problem (the runtime's conflict detection
            // and blacklist judge the *claims*, not the framing).
            0 => {
                let frame = hostile_datagram(1, 0, sender, seq, req_id, 0, 1, &payload, None, &[]);
                let (env, chunk) = decode_datagram(&frame).expect("framing-valid");
                prop_assert_eq!(env.sender, NodeId(sender));
                prop_assert_eq!((env.msg_seq, env.req_id), (seq, req_id));
                prop_assert_eq!(chunk, &payload[..]);
            }
            // Replayed seq/req ids: byte-identical replays decode to the
            // identical envelope — replay handling is the dedup /
            // correlation layer's job, and it must see the same values.
            1 => {
                let frame = hostile_datagram(1, 1, sender, seq, seq, 0, 1, &payload, None, &[]);
                let a = decode_datagram(&frame).expect("first decode");
                let b = decode_datagram(&frame).expect("replay decode");
                prop_assert_eq!(a, b);
            }
            // Version lie (valid CRC): must be the version-skew class.
            2 => {
                let v = 2u8.saturating_add(tweak % 254);
                let frame = hostile_datagram(v, 0, sender, seq, 0, 0, 1, &payload, None, &[]);
                prop_assert_eq!(decode_datagram(&frame).unwrap_err(), NetError::BadVersion(v));
            }
            // Kind lie: unknown channel byte.
            3 => {
                let k = 2u8.saturating_add(tweak % 254);
                let frame = hostile_datagram(1, k, sender, seq, 0, 0, 1, &payload, None, &[]);
                prop_assert_eq!(decode_datagram(&frame).unwrap_err(), NetError::BadKind(k));
            }
            // Fragment lies: zero count, or index outside the claimed count.
            4 => {
                let zero = hostile_datagram(1, 0, sender, seq, 0, 0, 0, &payload, None, &[]);
                prop_assert_eq!(decode_datagram(&zero).unwrap_err(), NetError::BadFragment);
                let count = (tweak as u16 % 8) + 1;
                let oob =
                    hostile_datagram(1, 0, sender, seq, 0, count, count, &payload, None, &[]);
                prop_assert_eq!(decode_datagram(&oob).unwrap_err(), NetError::BadFragment);
            }
            // Length lie: stated payload overruns the datagram.
            5 => {
                let stated = (payload.len() + 1 + tweak as usize).min(u16::MAX as usize) as u16;
                let frame =
                    hostile_datagram(1, 0, sender, seq, 0, 0, 1, &payload, Some(stated), &[]);
                prop_assert_eq!(decode_datagram(&frame).unwrap_err(), NetError::LengthMismatch);
            }
            // Lying trace TLV: a recognised tag whose body is not the
            // 28-byte trace context (here: `tweak % 28` bytes), or a
            // record whose stated length overruns the extension region.
            6 => {
                let body_len = tweak % 28;
                let mut ext = vec![0x01u8, body_len];
                ext.extend(std::iter::repeat_n(0xAA, body_len as usize));
                let frame = hostile_datagram(1, 0, sender, seq, 0, 0, 1, &payload, None, &ext);
                prop_assert_eq!(decode_datagram(&frame).unwrap_err(), NetError::LengthMismatch);
                let overrun = hostile_datagram(
                    1, 0, sender, seq, 0, 0, 1, &payload, None, &[0x01, 200, 0xBB],
                );
                prop_assert_eq!(decode_datagram(&overrun).unwrap_err(), NetError::LengthMismatch);
            }
            // Unknown extension tag, well-formed: forward compatibility
            // says decode fine, no trace.
            7 => {
                let ext = [0xF0u8, 2, tweak, tweak];
                let frame = hostile_datagram(1, 0, sender, seq, 0, 0, 1, &payload, None, &ext);
                let (env, chunk) = decode_datagram(&frame).expect("unknown tags are skipped");
                prop_assert_eq!(env.trace, None);
                prop_assert_eq!(chunk, &payload[..]);
            }
            _ => unreachable!(),
        }
    }

    /// A flood of CRC-valid fragments claiming enormous fragment counts —
    /// each 1-byte datagram trying to reserve a `u16::MAX`-slot table —
    /// cannot pin memory past the reassembly budget, and a shape-shifting
    /// replay (same `(sender, seq)`, different claimed count) poisons the
    /// entry instead of corrupting the accounting.
    #[test]
    fn oversized_frag_claims_keep_memory_bounded(
        flood in vec((any::<u32>(), any::<u64>(), 2u16..=u16::MAX), 1..48),
    ) {
        const BUDGET: usize = 1 << 20;
        let per_slot = std::mem::size_of::<Option<Vec<u8>>>();
        let mut r = Reassembler::new(BUDGET);
        for &(sender, seq, count) in &flood {
            let frame = hostile_datagram(1, 0, sender, seq, 0, 0, count, &[0u8], None, &[]);
            let (env, chunk) = decode_datagram(&frame).expect("framing-valid flood");
            prop_assert!(r.offer(&env, chunk).is_none(), "a partial cannot complete");
            // The newest partial may exceed the budget on its own; nothing
            // beyond that single claimed slot table may accumulate.
            prop_assert!(
                r.buffered_bytes() <= BUDGET + u16::MAX as usize * per_slot + 1,
                "buffered {} bytes escaped the {} budget",
                r.buffered_bytes(),
                BUDGET
            );
        }
        // Shape-shift replay: reuse the first key with a different count.
        let (sender, seq, count) = flood[0];
        let other = if count == 2 { 3 } else { count - 1 };
        let frame = hostile_datagram(1, 0, sender, seq, 0, 0, other, &[0u8], None, &[]);
        let (env, chunk) = decode_datagram(&frame).expect("reshaped frame");
        prop_assert!(r.offer(&env, chunk).is_none());
        // An honest fragmented message still completes after the flood.
        let honest: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        let frames = encode_message(Kind::Wire, NodeId(7), u64::MAX, 0, &honest, 1400)
            .expect("honest encode");
        let mut done = None;
        for f in &frames {
            let (env, chunk) = decode_datagram(f).expect("honest frame");
            done = r.offer(&env, chunk);
        }
        prop_assert_eq!(done.expect("honest message completes"), honest);
    }
}

/// The live half: a victim [`Endpoint`] on a real socket, an attacker on a
/// raw [`UdpSocket`], one representative datagram per hostile class. Every
/// class must land in its dedicated drop counter (the exposition an
/// operator would scrape during the attack), the forged-sender messages
/// must reach the handler without panic, and the replayed reply must be
/// counted as unmatched — never delivered to a requester.
#[test]
fn live_endpoint_attributes_every_hostile_class() {
    let victim = Arc::new(
        Endpoint::bind(
            NodeId(0),
            "127.0.0.1:0".parse().unwrap(),
            EndpointConfig::default(),
        )
        .expect("bind victim"),
    );
    let target = victim.local_addr().expect("victim addr");
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));
    let receiver = {
        let victim = Arc::clone(&victim);
        let stop = Arc::clone(&stop);
        let delivered = Arc::clone(&delivered);
        std::thread::spawn(move || {
            victim.run_receiver(&stop, &mut |inbound| {
                // Forged identities are the runtime's problem; the endpoint
                // just delivers. Touch the fields so a torn decode panics.
                match inbound {
                    Inbound::Wire { from, seq, .. } => {
                        let _ = (from, seq);
                    }
                    Inbound::Control { from, .. } => {
                        let _ = from;
                    }
                }
                delivered.fetch_add(1, Ordering::Relaxed);
            });
        })
    };

    let attacker = UdpSocket::bind("127.0.0.1:0").expect("bind attacker");
    let nack = codec::encode_message(&WireMessage::Nack { from: NodeId(777) });
    let shots: Vec<(&str, Vec<u8>)> = vec![
        // Not a tldag datagram at all.
        ("malformed", b"not a tldag datagram".to_vec()),
        // Valid frame, one payload byte flipped after sealing.
        ("crc", {
            let mut f = hostile_datagram(1, 0, 9, 1, 0, 0, 1, b"x", None, &[]);
            f[HEADER_LEN] ^= 0xFF;
            f
        }),
        // Future protocol version, CRC resealed.
        (
            "version",
            hostile_datagram(9, 0, 9, 2, 0, 0, 1, b"x", None, &[]),
        ),
        // Unknown envelope kind (framing violation bucket).
        (
            "malformed",
            hostile_datagram(1, 7, 9, 3, 0, 0, 1, b"x", None, &[]),
        ),
        // Control channel, unknown control tag (version skew).
        (
            "unknown_tag",
            hostile_datagram(1, 1, 9, 4, 0, 0, 1, &[0xFF, 1, 2], None, &[]),
        ),
        // Wire channel, known tag truncated mid-structure (codec error).
        (
            "codec",
            hostile_datagram(1, 0, 9, 5, 0, 0, 1, &[0x01], None, &[]),
        ),
        // A valid reply correlated to a request nobody made (replay).
        (
            "replay",
            hostile_datagram(1, 0, u32::MAX, 6, 0xDEAD, 0, 1, &nack, None, &[]),
        ),
        // Forged-sender unsolicited wire message: delivered to the handler.
        (
            "deliver",
            hostile_datagram(1, 0, u32::MAX, 7, 0, 0, 1, &nack, None, &[]),
        ),
    ];
    for (_, frame) in &shots {
        attacker.send_to(frame, target).expect("attacker send");
    }

    // UDP on loopback is lossless in practice, but give the receiver time.
    let deadline = Instant::now() + Duration::from_secs(10);
    let expected = shots.len() as u64;
    while Instant::now() < deadline && victim.stats().datagrams_received < expected {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    receiver.join().expect("receiver thread");

    let stats = victim.stats();
    assert_eq!(
        stats.datagrams_received, expected,
        "every attack datagram must be seen"
    );
    assert_eq!(stats.malformed_drops, 2, "garbage + bad kind");
    assert_eq!(stats.crc_drops, 1, "tampered payload");
    assert_eq!(stats.version_drops, 1, "future version");
    assert_eq!(stats.unknown_tag_drops, 1, "unknown control tag");
    assert_eq!(stats.codec_error_drops, 1, "truncated wire payload");
    assert_eq!(
        stats.replies_unmatched, 1,
        "the replayed reply must be counted, not delivered"
    );
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        1,
        "exactly the forged-sender unsolicited message reaches the handler"
    );
}
