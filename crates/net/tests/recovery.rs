//! Transport loss-recovery acceptance: dropped datagrams are retried and
//! recovered, silent peers cost bounded time and surface as a timeout
//! metric, and malformed traffic is counted — never a hang, never a panic.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tldag_core::block::BlockId;
use tldag_core::codec::WireMessage;
use tldag_core::config::ProtocolConfig;
use tldag_core::node::LedgerNode;
use tldag_net::envelope;
use tldag_net::runtime::serve_wire_request;
use tldag_net::{Datagram, Endpoint, EndpointConfig, Inbound, UdpTransport};
use tldag_sim::NodeId;

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().expect("addr")
}

fn fast_config() -> EndpointConfig {
    EndpointConfig {
        request_timeout: Duration::from_millis(30),
        max_retries: 4,
        max_backoff: Duration::from_millis(120),
        ..EndpointConfig::default()
    }
}

/// Deterministically swallows the first `n` outbound datagrams, then
/// behaves like the wrapped transport.
struct DropFirst {
    inner: UdpTransport,
    remaining: AtomicU64,
}

impl Datagram for DropFirst {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        if self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok()
        {
            return Ok(buf.len()); // swallowed
        }
        self.inner.send_to(buf, addr)
    }
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }
}

/// A responder node with `blocks` blocks (1 KiB payloads) serving protocol
/// requests from its own receiver thread.
struct Responder {
    endpoint: Arc<Endpoint>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Responder {
    fn spawn(id: NodeId, blocks: usize, drop_first: u64) -> (Self, SocketAddr) {
        let cfg = ProtocolConfig::test_default();
        let mut node = LedgerNode::new(id, vec![], &cfg);
        for slot in 0..blocks {
            node.generate_block(&cfg, slot as u64, vec![slot as u8; 1024])
                .expect("generate");
        }
        let transport = DropFirst {
            inner: UdpTransport::bind(loopback()).expect("bind"),
            remaining: AtomicU64::new(drop_first),
        };
        let endpoint = Arc::new(Endpoint::with_transport(
            id,
            Box::new(transport),
            fast_config(),
        ));
        let addr = endpoint.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let endpoint = Arc::clone(&endpoint);
            let stop = Arc::clone(&stop);
            let node = Arc::new(node);
            std::thread::spawn(move || {
                let mut handler = |inbound: Inbound| {
                    if let Inbound::Wire { src, seq, msg, .. } = inbound {
                        if let Some(reply) = serve_wire_request(&node, &msg) {
                            let _ = endpoint.send_reply(src, seq, &reply);
                        }
                    }
                };
                endpoint.run_receiver(&stop, &mut handler);
            })
        };
        (
            Responder {
                endpoint,
                stop,
                thread: Some(thread),
            },
            addr,
        )
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A requester endpoint whose receiver routes replies back to `request`.
struct Requester {
    endpoint: Arc<Endpoint>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Requester {
    fn spawn(id: NodeId) -> Self {
        let endpoint =
            Arc::new(Endpoint::bind(id, loopback(), fast_config()).expect("bind requester"));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let endpoint = Arc::clone(&endpoint);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handler = |_inbound: Inbound| {};
                endpoint.run_receiver(&stop, &mut handler);
            })
        };
        Requester {
            endpoint,
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Requester {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn dropped_fetch_reply_is_retried_and_succeeds() {
    // The responder's first outbound datagram — its first FetchBlock reply —
    // is lost; the requester's retry makes the exchange succeed anyway.
    let (responder, addr) = Responder::spawn(NodeId(1), 2, 1);
    let requester = Requester::spawn(NodeId(0));

    let msg = WireMessage::FetchBlock {
        from: NodeId(0),
        id: BlockId::new(NodeId(1), 1),
    };
    let reply = requester.endpoint.request(addr, &msg);
    let Some((from, WireMessage::Block(block))) = reply else {
        panic!("expected the retried fetch to deliver a block, got {reply:?}");
    };
    assert_eq!(from, NodeId(1));
    assert_eq!(block.id, BlockId::new(NodeId(1), 1));

    let stats = requester.endpoint.stats();
    assert!(
        stats.request_retries >= 1,
        "recovery must go through a retry"
    );
    assert_eq!(stats.request_timeouts, 0, "the request did not give up");
    assert_eq!(stats.replies_matched, 1, "one request, one delivered reply");
    drop(responder);
}

#[test]
fn silent_peer_surfaces_as_timeout_metric_not_a_hang() {
    // A peer that is bound but never replies: the request must return None
    // within the (bounded) retry budget and count one timeout.
    let silent = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind silent");
    let addr = silent.local_addr().expect("addr");
    let requester = Requester::spawn(NodeId(0));

    let started = Instant::now();
    let reply = requester.endpoint.request(
        addr,
        &WireMessage::ReqChild {
            from: NodeId(0),
            target: tldag_crypto::Digest::ZERO,
        },
    );
    let elapsed = started.elapsed();
    assert!(reply.is_none(), "a silent peer cannot produce a reply");
    assert!(
        elapsed < Duration::from_secs(5),
        "retry budget must bound the wait, took {elapsed:?}"
    );
    let stats = requester.endpoint.stats();
    assert_eq!(stats.request_timeouts, 1);
    assert_eq!(stats.request_retries, 4, "every retry was spent");
    assert_eq!(stats.replies_matched, 0);
}

#[test]
fn fragmented_block_reply_reassembles_over_the_socket() {
    // 64 KiB payloads force the Block reply across many datagrams.
    let cfg = ProtocolConfig::test_default();
    let mut node = LedgerNode::new(NodeId(1), vec![], &cfg);
    node.generate_block(&cfg, 0, vec![7u8; 64 * 1024])
        .expect("generate");
    let endpoint = Arc::new(Endpoint::bind(NodeId(1), loopback(), fast_config()).expect("bind"));
    let addr = endpoint.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let serve = {
        let endpoint = Arc::clone(&endpoint);
        let stop = Arc::clone(&stop);
        let node = Arc::new(node);
        std::thread::spawn(move || {
            let mut handler = |inbound: Inbound| {
                if let Inbound::Wire { src, seq, msg, .. } = inbound {
                    if let Some(reply) = serve_wire_request(&node, &msg) {
                        let _ = endpoint.send_reply(src, seq, &reply);
                    }
                }
            };
            endpoint.run_receiver(&stop, &mut handler);
        })
    };

    let requester = Requester::spawn(NodeId(0));
    let reply = requester.endpoint.request(
        addr,
        &WireMessage::FetchBlock {
            from: NodeId(0),
            id: BlockId::new(NodeId(1), 0),
        },
    );
    let Some((_, WireMessage::Block(block))) = reply else {
        panic!("expected a block, got {reply:?}");
    };
    assert_eq!(block.body.payload.len(), 64 * 1024);
    assert!(
        requester.endpoint.stats().messages_reassembled >= 1,
        "the reply must have crossed fragment reassembly"
    );

    stop.store(true, Ordering::Relaxed);
    serve.join().expect("responder thread");
}

#[test]
fn malformed_and_skewed_traffic_is_counted_and_dropped() {
    let (responder, addr) = Responder::spawn(NodeId(1), 1, 0);
    let probe = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe");

    // A well-framed envelope whose codec payload has an unknown message tag
    // (version skew) — counted in unknown_tag_drops.
    let skewed = envelope::encode_message(
        envelope::Kind::Wire,
        NodeId(9),
        1,
        0,
        &[0xCC, 0x01, 0x02],
        envelope::DEFAULT_MTU,
    )
    .expect("frame")
    .remove(0);
    probe.send_to(&skewed, addr).expect("send");

    // The same envelope with a flipped bit — rejected by the CRC.
    let mut corrupt = skewed.clone();
    corrupt[10] ^= 0x40;
    probe.send_to(&corrupt, addr).expect("send");

    // Garbage that is not an envelope at all.
    probe.send_to(b"not a tldag datagram", addr).expect("send");

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = responder.endpoint.stats();
        if stats.unknown_tag_drops >= 1 && stats.crc_drops >= 1 && stats.malformed_drops >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drops not counted in time: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
