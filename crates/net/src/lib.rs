//! # tldag-net — UDP wire transport and peer runtime for 2LDAG nodes
//!
//! The paper defines the reactive PoP exchange (Sec. IV-C) as an actual
//! message protocol between IoT validators, but the reproduction so far ran
//! it through an in-memory bus. This crate is the missing wire layer — with
//! it, codec ↔ transport ↔ storage compose into a full node binary:
//!
//! * [`envelope`] — versioned, CRC-guarded datagram framing with
//!   fragmentation for messages larger than one MTU (full blocks).
//! * [`frag`] — out-of-order, budget-bounded fragment reassembly.
//! * [`transport`] — the [`Datagram`] socket abstraction:
//!   [`UdpTransport`] for real sockets, [`FaultyTransport`] for
//!   deterministic loss/duplication/reorder injection (the `fig11_wire`
//!   knob).
//! * [`peer`] — dynamic [`PeerTable`] with liveness tracking (inserts on
//!   join, forgets on leave/eviction).
//! * [`membership`] — the [`membership::Roster`]: who generates at which
//!   slot, churn-spec parsing, and deterministic join placement.
//! * [`endpoint`] — the [`Endpoint`]: framing + reassembly + reply
//!   correlation + request retry with bounded backoff, fully metered
//!   ([`metrics`]).
//! * [`control`] — runtime control messages: hello bootstrap, slot-tagged
//!   digest gossip with pull-based recovery, the join handshake and
//!   membership-delta gossip, report/shutdown handshake.
//! * [`runtime`] — [`NetNode`], the deployed node: inbound dispatcher
//!   serving `REQ_CHILD`/`FetchBlock` (cooperative `Nack`/`PrunedNack`
//!   included) plus the slot loop — roster-aware barriers, join/leave at
//!   slot boundaries — and the wire-side PoP validator.
//! * [`harness`] — the `tldag cluster` multi-process deployment harness
//!   with `network_digest` parity checking against the in-memory engine,
//!   including under a scheduled churn of late joins and graceful leaves.
//! * [`telemetry`] — live observability: per-node histograms + journal
//!   ([`telemetry::NodeTelemetry`]), the `/metrics` + `/journal` +
//!   `/trace` HTTP routes, and the `tldag status` scraper/aggregator.
//! * [`forensics`] — slot-by-slot divergence diagnosis on parity
//!   failures: first divergent slot, differing block digests, and the
//!   offending blocks' causal lifecycle timelines.
//! * [`explore`] — the `tldag explore` DAG explorer: `/dag`, `/slot/<t>`
//!   and `/block/<id>` served from disk segments or a live node's
//!   telemetry endpoints.
//!
//! Everything is `std`-only (threads + `UdpSocket`), matching the
//! workspace's scoped-thread engine style: no async runtime, no new
//! dependencies.

// `deny`, not `forbid`: the one sanctioned exception is [`mmsg`], the
// Linux `sendmmsg`/`recvmmsg` FFI behind the batched datagram path. It is
// a leaf module with its own `allow(unsafe_code)` and a portable fallback,
// so no other module can grow unsafe blocks without tripping the lint.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod control;
pub mod endpoint;
pub mod envelope;
pub mod explore;
pub mod forensics;
pub mod frag;
pub mod harness;
pub mod membership;
pub mod metrics;
#[cfg(target_os = "linux")]
mod mmsg;
pub mod peer;
pub mod runtime;
pub mod telemetry;
pub mod transport;

pub use endpoint::{Endpoint, EndpointConfig, Inbound};
pub use explore::{Explorer, ExplorerSource};
pub use forensics::{diagnose, timelines_for_slot, DivergenceReport, SlotMismatch};
pub use harness::{
    format_adversary_schedule, parse_adversary_spec, run_cluster, AdversaryPlacement,
    ClusterConfig, ClusterOutcome,
};
pub use membership::{parse_churn_spec, ChurnEvent, Roster};
pub use metrics::{NetMetrics, NetStats};
pub use peer::PeerTable;
pub use runtime::{NetNode, NetNodeConfig, NetPopTransport, StorageMode};
pub use telemetry::{
    render_metrics, render_status_table, scrape_metrics, status_json, total_row, MetricsView,
    NodeTelemetry, StatusRow,
};
pub use transport::{Datagram, FaultSpec, FaultyTransport, UdpTransport};

/// A wire-layer failure: framing, checksum, version, or payload decode.
///
/// Every variant is a *clean rejection* — malformed datagrams are counted
/// and dropped by the endpoint, never panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The datagram (or control payload) ended before the structure did.
    Truncated,
    /// The datagram does not start with the tldag magic.
    BadMagic,
    /// The checksum does not match the datagram contents.
    BadCrc,
    /// The envelope speaks an unsupported protocol version.
    BadVersion(u8),
    /// The envelope kind byte names no known channel.
    BadKind(u8),
    /// A control payload carries an unknown tag (runtime version skew).
    BadControlTag(u8),
    /// An encoded socket address names an unknown family (version skew,
    /// like [`NetError::BadControlTag`] — distinct from truncation so the
    /// drop is observable as skew, not framing).
    BadAddressFamily(u8),
    /// A length field disagrees with the actual data.
    LengthMismatch,
    /// Fragment fields are inconsistent (zero count, index out of range).
    BadFragment,
    /// The message cannot be framed (too many fragments, or no payload
    /// room under the configured MTU).
    Oversize,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated => write!(f, "datagram ended mid-structure"),
            NetError::BadMagic => write!(f, "not a tldag datagram (bad magic)"),
            NetError::BadCrc => write!(f, "checksum mismatch"),
            NetError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::BadKind(k) => write!(f, "unknown envelope kind {k:#04x}"),
            NetError::BadControlTag(t) => write!(f, "unknown control tag {t:#04x}"),
            NetError::BadAddressFamily(v) => write!(f, "unknown address family {v}"),
            NetError::LengthMismatch => write!(f, "length field disagrees with data"),
            NetError::BadFragment => write!(f, "inconsistent fragment fields"),
            NetError::Oversize => write!(f, "message cannot be framed under the MTU"),
        }
    }
}

impl std::error::Error for NetError {}
