//! The multi-process deployment harness behind `tldag cluster`.
//!
//! Spawns `N` real node processes (`tldag node ...`), each with its own UDP
//! socket on localhost, acts as the report controller, and — once every
//! node reported — replays the identical experiment on the in-memory
//! [`TldagNetwork`] engine and compares `network_digest`s. Digest parity
//! proves the wire path (envelope codec, fragmentation, gossip barrier,
//! pull-based loss recovery) reproduces the simulator's protocol execution
//! byte-for-byte on a shared seed.
//!
//! With a churn schedule (`--churn join:4@3,leave:1@6`) the harness also
//! spawns the late joiners — provisioned with nothing but a bootstrap
//! address, so the join handshake and membership gossip genuinely carry
//! the roster — and replays the same `node_joins` / `node_leaves`
//! schedule on the reference engine, asserting parity *through* the
//! membership changes.
//!
//! Orphan safety: every spawned child carries a watchdog deadline (it
//! exits on its own once the harness must have given up on it), children
//! are killed explicitly on every failure path, and the child guard kills
//! whatever is left on drop — a failed run can never strand UDP listeners
//! that would wedge a rerun on the same ports.

use crate::control::{Control, RunReport};
use crate::endpoint::{Endpoint, EndpointConfig, Inbound};
use crate::forensics::{diagnose, timelines_for_slot, DivergenceReport};
use crate::membership::{format_churn_spec, join_site, validate_churn, ChurnEvent, Roster};
use crate::metrics::NetStats;
use crate::peer::format_peer_list;
use crate::runtime::{
    deployment_protocol_config, deployment_range_m, deployment_topology, network_digest_of,
};
use crate::telemetry::{scrape_metrics, StatusRow};
use std::collections::{BTreeMap, HashMap};
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tldag_core::attack::Behavior;
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_crypto::Digest;
use tldag_obs::http_get;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// One scheduled wire adversary: `node` switches from honest operation to
/// `behavior` at the start of `slot` (and stays adversarial for the rest
/// of the run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdversaryPlacement {
    /// The founder that turns adversarial.
    pub node: NodeId,
    /// What it does once active.
    pub behavior: Behavior,
    /// The activation slot (`0` = adversarial from the first slot).
    pub slot: u64,
}

/// Parses a `tldag cluster --adversary` schedule — comma-separated
/// `kind:count[@slot]` groups, e.g. `selfish:2,equivocate:1@4` — and
/// resolves it to concrete [`AdversaryPlacement`]s.
///
/// Placement is deterministic so the wire run and the engine reference
/// agree without exchanging anything: adversaries occupy the *highest*
/// founder ids, assigned in spec order, and node 0 (the default bootstrap
/// for late joiners) is never scheduled.
///
/// # Errors
///
/// Unknown kinds (including the parameterised engine-only `sybil` /
/// `flooder`), `honest`, zero counts, malformed counts/slots, and
/// schedules that need more than `founders - 1` adversaries.
pub fn parse_adversary_spec(
    spec: &str,
    founders: usize,
) -> Result<Vec<AdversaryPlacement>, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    let mut next = founders;
    let mut placements = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let (head, slot) = match part.split_once('@') {
            Some((head, raw)) => (
                head,
                raw.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("invalid adversary activation slot in `{part}`"))?,
            ),
            None => (part, 0),
        };
        let (kind, count) = match head.split_once(':') {
            Some((kind, raw)) => (
                kind.trim(),
                raw.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("invalid adversary count in `{part}`"))?,
            ),
            None => (head.trim(), 1),
        };
        let behavior = Behavior::parse_kind(kind)
            .ok_or_else(|| format!("unknown adversary kind `{kind}` in `{part}`"))?;
        if behavior == Behavior::Honest {
            return Err("`honest` is not an adversary kind".into());
        }
        if count == 0 {
            return Err(format!("adversary count must be positive in `{part}`"));
        }
        for _ in 0..count {
            if next <= 1 {
                return Err(format!(
                    "adversary schedule `{spec}` needs more nodes than the {founders} \
founders allow (node 0 is never an adversary)"
                ));
            }
            next -= 1;
            placements.push(AdversaryPlacement {
                node: NodeId(next as u32),
                behavior,
                slot,
            });
        }
    }
    Ok(placements)
}

/// Renders placements for logs: `n7 selfish@0, n6 equivocate@4`.
pub fn format_adversary_schedule(placements: &[AdversaryPlacement]) -> String {
    placements
        .iter()
        .map(|p| format!("n{} {}@{}", p.node.0, p.behavior, p.slot))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The `tldag` binary to spawn node processes from.
    pub exe: PathBuf,
    /// Number of founding nodes (= processes at start).
    pub nodes: usize,
    /// Slots each founder executes.
    pub slots: u64,
    /// Shared experiment seed.
    pub seed: u64,
    /// Deployment area side in meters.
    pub side_m: f64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Whether nodes run the PoP verification workload over the wire.
    pub pop: bool,
    /// Epoch window `W` passed to every node (`1` = slot lockstep;
    /// `W ≥ 2` enables the pipelined runtime, PoP mode only).
    pub window: u64,
    /// Socket batch size passed to every node (datagrams per
    /// `sendmmsg`/`recvmmsg` wakeup).
    pub batch: Option<usize>,
    /// Per-datagram drop probability injected at every node's transport
    /// (deterministic per node seed); `0.0` means a clean transport.
    pub drop: f64,
    /// When set, node `i` stores its chain on disk under `root/node-i`.
    pub storage_root: Option<PathBuf>,
    /// First UDP port; node `i` listens on `base_port + i`. When `None`,
    /// free ports are discovered by probing.
    pub base_port: Option<u16>,
    /// How long the controller waits for all reports.
    pub report_timeout: Duration,
    /// Scheduled membership changes: late joins (spawned as extra
    /// processes bootstrapped via the join handshake) and graceful leaves.
    pub churn: Vec<ChurnEvent>,
    /// Scheduled wire adversaries (see [`parse_adversary_spec`]). Each
    /// placement is passed to its node process as `--behavior` and applied
    /// to the reference engine at the same slot boundary, so the
    /// honest-subset parity verdict compares like with like.
    pub adversaries: Vec<AdversaryPlacement>,
    /// When set, every node evicts a barrier-blocking peer that has gone
    /// silent for this long (`tldag node --evict-after`). Required for
    /// runs that must *exclude* a silent adversary instead of waiting out
    /// every barrier on it.
    pub evict_after: Option<Duration>,
    /// When true, every node serves `GET /metrics` + `GET /journal` on a
    /// discovered localhost TCP port, and the harness records the
    /// endpoints in [`ClusterOutcome::metrics_addrs`].
    pub metrics: bool,
    /// With [`ClusterConfig::metrics`] set, scrape every node this often
    /// while waiting for reports and keep the aggregated
    /// [`StatusRow`] snapshots as a mid-run time series
    /// ([`ClusterOutcome::status_series`]). `None` disables sampling.
    pub sample_every: Option<Duration>,
    /// When true, every node records causal block-lifecycle spans
    /// (`--trace`); combined with [`ClusterConfig::metrics`] the harness
    /// scrapes each node's `/trace` endpoint after the reports arrive and
    /// keeps the snapshots ([`ClusterOutcome::trace_snapshots`]). Tracing
    /// never changes protocol byte content.
    pub trace: bool,
}

impl ClusterConfig {
    /// A cluster of `nodes` × `slots` with deployment defaults.
    pub fn new(exe: PathBuf, nodes: usize, slots: u64, seed: u64) -> Self {
        ClusterConfig {
            exe,
            nodes,
            slots,
            seed,
            side_m: 300.0,
            gamma: 3,
            pop: false,
            window: 1,
            batch: None,
            drop: 0.0,
            storage_root: None,
            base_port: None,
            report_timeout: Duration::from_secs(60),
            churn: Vec::new(),
            adversaries: Vec::new(),
            evict_after: None,
            metrics: false,
            sample_every: None,
            trace: false,
        }
    }

    /// Total processes the run spawns: founders plus scheduled joiners.
    pub fn total_processes(&self) -> usize {
        self.nodes
            + self
                .churn
                .iter()
                .filter(|e| matches!(e, ChurnEvent::Join { .. }))
                .count()
    }

    /// Node ids with no scheduled adversary placement, in id order — the
    /// subset the honest-parity verdict is computed over.
    pub fn honest_ids(&self) -> Vec<NodeId> {
        (0..self.total_processes() as u32)
            .map(NodeId)
            .filter(|id| !self.adversaries.iter().any(|p| p.node == *id))
            .collect()
    }
}

/// The outcome of a cluster run, including the parity verdict.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Per-node end-of-run reports, in node order (founders then joiners).
    pub reports: Vec<RunReport>,
    /// Network digest assembled from the wire nodes' chain digests.
    pub wire_digest: Digest,
    /// Network digest of the in-memory reference run on the same seed and
    /// membership schedule.
    pub reference_digest: Digest,
    /// Per-node chain digests of the reference run, for mismatch diagnosis.
    pub reference_chains: Vec<Digest>,
    /// The adversary placements the run was configured with (empty for an
    /// all-honest run).
    pub adversaries: Vec<AdversaryPlacement>,
    /// Network digest over only the honest nodes' wire chains — the
    /// verdict subset when adversaries are scheduled (a flapping adversary
    /// legitimately forks its *own* chain from the reference by going
    /// dark, so full parity is not the right bar).
    pub honest_wire_digest: Digest,
    /// The same honest-subset digest computed from the reference engine
    /// with the identical behavior placements applied.
    pub honest_reference_digest: Digest,
    /// PoP (attempts, successes) summed over the wire nodes.
    pub wire_pop: (u64, u64),
    /// PoP (attempts, successes) of the reference engine.
    pub reference_pop: (u64, u64),
    /// Transport counters merged across every node's report.
    pub net: NetStats,
    /// The `/metrics` endpoints the nodes served, in node order (empty
    /// unless [`ClusterConfig::metrics`] was set).
    pub metrics_addrs: Vec<SocketAddr>,
    /// Mid-run scrape snapshots (one `Vec<StatusRow>` per sample, a row
    /// per node that answered), oldest first. Populated only with
    /// [`ClusterConfig::metrics`] + [`ClusterConfig::sample_every`].
    pub status_series: Vec<Vec<StatusRow>>,
    /// One `/trace` JSON snapshot per answering node, taken after every
    /// report arrived but before the cluster was released. Populated only
    /// with [`ClusterConfig::trace`] + [`ClusterConfig::metrics`].
    pub trace_snapshots: Vec<String>,
    /// The slot-by-slot divergence diagnosis, present only when digest
    /// parity failed and the harness could pull per-slot evidence from
    /// the still-live nodes.
    pub forensics: Option<DivergenceReport>,
}

impl ClusterOutcome {
    /// Whether the wire cluster reproduced the reference digest exactly.
    pub fn parity(&self) -> bool {
        self.wire_digest == self.reference_digest
    }

    /// Whether the honest subset reproduced the reference: the verdict for
    /// adversarial runs. Identical to [`Self::parity`] when no adversaries
    /// were scheduled.
    pub fn honest_parity(&self) -> bool {
        self.honest_wire_digest == self.honest_reference_digest
    }

    /// Whether any node proceeded past a timed-out barrier.
    pub fn degraded(&self) -> bool {
        self.reports.iter().any(|r| r.degraded)
    }
}

/// Kills every child on drop, so no path out of the harness leaks
/// processes.
struct ChildGuard {
    children: Vec<(NodeId, Child)>,
}

impl ChildGuard {
    /// Reaps children that exited on their own; returns the failures.
    fn harvest_failures(&mut self) -> Vec<String> {
        let mut failures = Vec::new();
        for (id, child) in &mut self.children {
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    failures.push(format!("node {} exited early: {status}", id.0));
                }
            }
        }
        failures
    }

    /// Kills and reaps every child immediately. Called explicitly on every
    /// failure path (and again from `Drop`, idempotently) so a failed run
    /// releases its UDP ports before the error is even reported.
    fn kill_all(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Waits for clean exits up to `deadline`, then kills stragglers.
    fn shutdown(&mut self, deadline: Instant) {
        loop {
            let all_done = self
                .children
                .iter_mut()
                .all(|(_, c)| matches!(c.try_wait(), Ok(Some(_))));
            if all_done || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.kill_all();
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_all();
    }
}

/// Finds `n` bindable localhost TCP ports (for the metrics listeners).
///
/// Same release-then-rebind race as [`discover_ports`]; the harness's
/// single retry on an early child exit absorbs a stolen port.
fn discover_tcp_ports(n: usize) -> Result<Vec<u16>, String> {
    let mut sockets = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let socket = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot discover a free metrics port: {e}"))?;
        ports.push(
            socket
                .local_addr()
                .map_err(|e| format!("cannot read discovered metrics port: {e}"))?
                .port(),
        );
        sockets.push(socket);
    }
    Ok(ports)
}

/// Finds `n` bindable localhost UDP ports.
fn discover_ports(n: usize) -> Result<Vec<u16>, String> {
    let mut sockets = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let socket = UdpSocket::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot discover a free port: {e}"))?;
        ports.push(
            socket
                .local_addr()
                .map_err(|e| format!("cannot read discovered port: {e}"))?
                .port(),
        );
        // Held until all are discovered so probes cannot collide.
        sockets.push(socket);
    }
    Ok(ports)
}

/// Replays a membership schedule on a reference engine and runs it for
/// `slots` slots: the **same** leaves-before-joins slot-boundary
/// application and derived `join_site` placement every `NetNode` uses, so
/// any consumer comparing a wire run against the engine (`run_cluster`,
/// `fig12_churn`) computes the identical reference — one definition, no
/// drift.
///
/// `adversaries` are applied with [`TldagNetwork::set_behavior`] at the
/// same slot boundary the wire node activates its `--behavior`, so the
/// engine's malicious-node handling (validator exclusion, silent
/// responders, offense-driven blacklisting) runs against the identical
/// placement.
///
/// # Panics
///
/// Panics when a join's id is not the engine's next topology index (the
/// schedule should have been checked with
/// [`crate::membership::validate_churn`] first).
pub fn replay_reference_schedule(
    reference: &mut TldagNetwork,
    churn: &[ChurnEvent],
    adversaries: &[AdversaryPlacement],
    founders: usize,
    seed: u64,
    slots: u64,
) {
    // The full-schedule roster: what every wire process knows from its
    // `--churn` spec, and therefore what `join_site` must be computed
    // against for the placements to agree.
    let mut roster = Roster::founders(founders);
    for event in churn {
        match *event {
            ChurnEvent::Join { id, slot } => {
                roster.learn_join(id, None, slot);
            }
            ChurnEvent::Leave { id, slot } => {
                roster.learn_leave(id, slot);
            }
        }
    }
    // Canonical application order regardless of how the caller built the
    // schedule: by slot, leaves before joins, ids ascending.
    let mut events = churn.to_vec();
    events.sort_by_key(|e| (e.slot(), matches!(e, ChurnEvent::Join { .. }), e.id().0));
    let mut next_event = 0usize;
    for slot in 0..slots {
        for placement in adversaries.iter().filter(|p| p.slot == slot) {
            reference.set_behavior(placement.node, placement.behavior);
        }
        while next_event < events.len() && events[next_event].slot() == slot {
            match events[next_event] {
                ChurnEvent::Leave { id, .. } => reference.node_leaves(id),
                ChurnEvent::Join { id, slot } => {
                    let site = join_site(
                        reference.topology(),
                        &roster,
                        seed,
                        slot,
                        id,
                        deployment_range_m(),
                    );
                    let assigned = reference.node_joins(site, deployment_range_m(), 1);
                    assert_eq!(assigned, id, "churn join ids are consecutive");
                }
            }
            next_event += 1;
        }
        reference.step();
    }
}

/// Replays the cluster's experiment — including its membership schedule —
/// on the in-memory engine, returning the reference network after
/// `config.slots` slots.
fn reference_run(config: &ClusterConfig) -> TldagNetwork {
    let topology = deployment_topology(config.seed, config.nodes, config.side_m);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut reference = TldagNetwork::new(cfg, topology, schedule, config.seed);
    reference.set_verification_workload(if config.pop {
        VerificationWorkload::RandomPast {
            min_age_slots: config.nodes as u64,
        }
    } else {
        VerificationWorkload::Disabled
    });
    replay_reference_schedule(
        &mut reference,
        &config.churn,
        &config.adversaries,
        config.nodes,
        config.seed,
        config.slots,
    );
    reference
}

/// Runs a full cluster: spawn, collect, compare. Node processes are always
/// reaped, whatever path is taken.
///
/// # Errors
///
/// An invalid churn schedule, spawn failures, early child exits, and
/// report-collection timeouts.
pub fn run_cluster(config: &ClusterConfig) -> Result<ClusterOutcome, String> {
    validate_churn(&config.churn, config.nodes, config.slots)?;
    for p in &config.adversaries {
        if p.node.0 as usize >= config.nodes {
            return Err(format!(
                "adversary placement on n{} is outside the {} founders",
                p.node.0, config.nodes
            ));
        }
        if p.slot >= config.slots {
            return Err(format!(
                "adversary n{} activates at slot {} but the run has only {} slots",
                p.node.0, p.slot, config.slots
            ));
        }
    }
    match run_cluster_attempt(config) {
        // Probed ports are necessarily released before the child processes
        // bind them, so a concurrent bind on the same host can steal one in
        // that window and the victim exits at startup. Fresh ports and one
        // retry absorb the race (impossible with an explicit --base-port,
        // where retrying would collide identically).
        Err(e) if config.base_port.is_none() && e.contains("exited early") => {
            run_cluster_attempt(config)
        }
        outcome => outcome,
    }
}

fn run_cluster_attempt(config: &ClusterConfig) -> Result<ClusterOutcome, String> {
    if config.nodes == 0 {
        return Err("--nodes must be positive".into());
    }
    let total = config.total_processes();
    let ports: Vec<u16> = match config.base_port {
        Some(base) => {
            let last = u64::from(base) + total as u64 - 1;
            if last > u64::from(u16::MAX) {
                return Err(format!(
                    "--base-port {base} + {total} nodes exceeds port 65535"
                ));
            }
            (0..total as u16).map(|i| base + i).collect()
        }
        None => discover_ports(total)?,
    };
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}").parse().expect("addr"))
        .collect();
    let metrics_addrs: Vec<SocketAddr> = if config.metrics {
        discover_tcp_ports(total)?
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("addr"))
            .collect()
    } else {
        Vec::new()
    };
    // Announced *before* the children spawn (stdout is line-buffered), so
    // an observer tailing the harness can scrape the live endpoints
    // mid-run instead of guessing at ports.
    if !metrics_addrs.is_empty() {
        println!(
            "metrics endpoints: {}",
            metrics_addrs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // --- The controller endpoint: collect reports, ack each.
    let controller = Arc::new(
        Endpoint::bind(
            NodeId(u32::MAX),
            "127.0.0.1:0".parse().expect("addr"),
            EndpointConfig::default(),
        )
        .map_err(|e| format!("cannot bind controller socket: {e}"))?,
    );
    let controller_addr = controller
        .local_addr()
        .map_err(|e| format!("controller address: {e}"))?;
    let reports: Arc<Mutex<HashMap<NodeId, RunReport>>> = Arc::new(Mutex::new(HashMap::new()));
    // Per-slot digests answered to the controller's forensic DigestReq
    // pulls, keyed by (node, slot).
    let pulled: Arc<Mutex<BTreeMap<(u32, u64), Digest>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let controller = Arc::clone(&controller);
        let reports = Arc::clone(&reports);
        let pulled = Arc::clone(&pulled);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handler = |inbound: Inbound| match inbound {
                Inbound::Control {
                    src,
                    msg: Control::Report(report),
                    ..
                } => {
                    reports
                        .lock()
                        .expect("reports poisoned")
                        .insert(report.node, report);
                    let _ = controller.send_control(src, &Control::ReportAck);
                }
                Inbound::Control {
                    from,
                    msg: Control::SlotDigest { slot, digest },
                    ..
                } => {
                    pulled
                        .lock()
                        .expect("pulled digests poisoned")
                        .insert((from.0, slot), digest);
                }
                _ => {}
            };
            controller.run_receiver(&stop, &mut handler);
        })
    };
    // Joins every failure path through one teardown: children killed
    // first (ports released), then the collector thread.
    let fail = |guard: &mut ChildGuard, msg: String| -> String {
        guard.kill_all();
        stop.store(true, Ordering::Relaxed);
        msg
    };

    // Children may not outlive the harness even if it is SIGKILLed (no
    // destructors run then): a generous watchdog inside each node covers
    // the whole report window plus the shutdown grace.
    let child_deadline = config.report_timeout + Duration::from_secs(30);
    let churn_spec = format_churn_spec(&config.churn);

    // --- Spawn one real process per member: founders first, then the
    // scheduled joiners (provisioned with only a bootstrap address — the
    // join handshake transfers the roster).
    let mut guard = ChildGuard {
        children: Vec::with_capacity(total),
    };
    for i in 0..total {
        let id = NodeId(i as u32);
        let is_joiner = i >= config.nodes;
        let mut cmd = Command::new(&config.exe);
        cmd.arg("node")
            .arg("--id")
            .arg(i.to_string())
            .arg("--listen")
            .arg(addrs[i].to_string())
            .arg("--controller")
            .arg(controller_addr.to_string())
            .arg("--seed")
            .arg(config.seed.to_string())
            .arg("--nodes")
            .arg(config.nodes.to_string())
            .arg("--side")
            .arg(config.side_m.to_string())
            .arg("--gamma")
            .arg(config.gamma.to_string())
            .arg("--slots")
            .arg(config.slots.to_string())
            .arg("--deadline")
            .arg(child_deadline.as_secs().to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if is_joiner {
            // Bootstrap via a founder that is still a member at the join
            // slot (a departed bootstrap keeps serving, but a live one
            // answers faster).
            let join_slot = config
                .churn
                .iter()
                .find_map(|e| match *e {
                    ChurnEvent::Join { id: j, slot } if j == id => Some(slot),
                    _ => None,
                })
                .expect("joiner ids come from the churn spec");
            let bootstrap = (0..config.nodes)
                .find(|&f| {
                    !config.churn.iter().any(|e| {
                        matches!(*e, ChurnEvent::Leave { id: l, slot }
                            if l == NodeId(f as u32) && slot <= join_slot)
                    })
                })
                .unwrap_or(0);
            cmd.arg("--join").arg(addrs[bootstrap].to_string());
        } else {
            let peers: Vec<(NodeId, SocketAddr)> = (0..config.nodes)
                .filter(|&j| j != i)
                .map(|j| (NodeId(j as u32), addrs[j]))
                .collect();
            cmd.arg("--peers").arg(format_peer_list(&peers));
        }
        if !churn_spec.is_empty() {
            cmd.arg("--churn").arg(&churn_spec);
        }
        if let Some(p) = config.adversaries.iter().find(|p| p.node == id) {
            cmd.arg("--behavior")
                .arg(format!("{}@{}", p.behavior, p.slot));
        }
        if let Some(evict_after) = config.evict_after {
            cmd.arg("--evict-after")
                .arg(evict_after.as_secs_f64().to_string());
        }
        if config.pop {
            cmd.arg("--pop");
        }
        if config.window > 1 {
            cmd.arg("--window").arg(config.window.to_string());
        }
        if let Some(batch) = config.batch {
            cmd.arg("--batch").arg(batch.to_string());
        }
        if config.drop > 0.0 {
            cmd.arg("--drop").arg(config.drop.to_string());
        }
        if config.trace {
            cmd.arg("--trace");
        }
        if let Some(addr) = metrics_addrs.get(i) {
            cmd.arg("--metrics-addr").arg(addr.to_string());
        }
        if let Some(root) = &config.storage_root {
            cmd.arg("--storage")
                .arg("disk")
                .arg("--storage-dir")
                .arg(root.join(format!("node-{i}")));
        }
        let child = match cmd.spawn() {
            Ok(child) => child,
            Err(e) => {
                let msg = fail(
                    &mut guard,
                    format!("cannot spawn node {i} from {}: {e}", config.exe.display()),
                );
                let _ = collector.join();
                return Err(msg);
            }
        };
        guard.children.push((id, child));
    }

    // --- Collect all reports (or fail with whatever went wrong), scraping
    // the live metrics endpoints on the way when sampling is on.
    let deadline = Instant::now() + config.report_timeout;
    let mut status_series: Vec<Vec<StatusRow>> = Vec::new();
    let mut next_sample = config.sample_every.map(|every| Instant::now() + every);
    let collected = loop {
        if let (Some(at), Some(every)) = (next_sample, config.sample_every) {
            if Instant::now() >= at {
                next_sample = Some(Instant::now() + every);
                let rows: Vec<StatusRow> = metrics_addrs
                    .iter()
                    .filter_map(|addr| {
                        // A node that already shut down (or is still
                        // binding) simply misses this sample.
                        scrape_metrics(*addr, Duration::from_millis(500))
                            .ok()
                            .map(|samples| StatusRow::from_samples(addr.to_string(), &samples))
                    })
                    .collect();
                if !rows.is_empty() {
                    status_series.push(rows);
                }
            }
        }
        let have = reports.lock().expect("reports poisoned").len();
        if have == total {
            break reports.lock().expect("reports poisoned").clone();
        }
        let failures = guard.harvest_failures();
        if !failures.is_empty() {
            let msg = fail(&mut guard, failures.join("; "));
            let _ = collector.join();
            return Err(msg);
        }
        if Instant::now() > deadline {
            let msg = fail(
                &mut guard,
                format!(
                    "cluster timed out: {have}/{total} reports within {:?}",
                    config.report_timeout
                ),
            );
            let _ = collector.join();
            return Err(msg);
        }
        std::thread::sleep(Duration::from_millis(30));
    };

    // --- The in-memory reference on the same seed and churn schedule,
    // computed *before* the cluster is released: a parity failure then
    // still has every node alive and serving DigestReq pulls.
    let reference = reference_run(config);

    let mut ordered = Vec::with_capacity(total);
    for i in 0..total {
        let id = NodeId(i as u32);
        match collected.get(&id) {
            Some(report) => ordered.push(*report),
            None => {
                let msg = fail(&mut guard, format!("missing report from node {i}"));
                let _ = collector.join();
                return Err(msg);
            }
        }
    }
    let wire_digest =
        network_digest_of(&ordered.iter().map(|r| r.chain_digest).collect::<Vec<_>>());
    let reference_chains: Vec<Digest> = (0..total)
        .map(|i| reference.chain_digest(NodeId(i as u32)))
        .collect();
    let reference_digest = reference.network_digest();
    // The honest-subset digests: the verdict pair for adversarial runs
    // (equal to the full pair when no adversaries are scheduled).
    let honest_ids = config.honest_ids();
    let honest_wire_digest = network_digest_of(
        &honest_ids
            .iter()
            .map(|id| ordered[id.0 as usize].chain_digest)
            .collect::<Vec<_>>(),
    );
    let honest_reference_digest = network_digest_of(
        &honest_ids
            .iter()
            .map(|id| reference_chains[id.0 as usize])
            .collect::<Vec<_>>(),
    );

    // --- Trace snapshots while the nodes still serve `/trace`.
    let trace_snapshots: Vec<String> = if config.trace {
        metrics_addrs
            .iter()
            .filter_map(|addr| http_get(*addr, "/trace", Duration::from_secs(1)).ok())
            .collect()
    } else {
        Vec::new()
    };

    // --- Divergence forensics: on a parity failure, pull the suspect
    // nodes' recent per-slot digests over the live control plane and
    // diff them against the reference before anything shuts down. For
    // adversarial runs the verdict (and hence the trigger) is the honest
    // subset: a flapper's own dark chain is an expected fork, not a bug.
    let verdict_failed = if config.adversaries.is_empty() {
        wire_digest != reference_digest
    } else {
        honest_wire_digest != honest_reference_digest
    };
    let forensics = if verdict_failed {
        Some(run_forensics(
            config,
            &controller,
            &addrs,
            &ordered,
            &reference,
            &reference_chains,
            &pulled,
            &trace_snapshots,
        ))
    } else {
        None
    };

    // --- Release the cluster and reap the processes.
    for addr in &addrs {
        for _ in 0..3 {
            let _ = controller.send_control(*addr, &Control::Shutdown);
        }
    }
    guard.shutdown(Instant::now() + Duration::from_secs(5));
    stop.store(true, Ordering::Relaxed);
    collector.join().map_err(|_| "collector thread panicked")?;

    let wire_pop = ordered.iter().fold((0, 0), |(a, s), r| {
        (a + r.pop_attempts, s + r.pop_successes)
    });
    let mut net = NetStats::default();
    for report in &ordered {
        net.merge(&report.net);
    }
    Ok(ClusterOutcome {
        wire_digest,
        reference_digest,
        reference_chains,
        adversaries: config.adversaries.clone(),
        honest_wire_digest,
        honest_reference_digest,
        wire_pop,
        reference_pop: reference.pop_counters(),
        net,
        metrics_addrs,
        status_series,
        trace_snapshots,
        forensics,
        reports: ordered,
    })
}

/// Pulls per-slot digests from every chain-level suspect over the live
/// [`Control::DigestReq`] path and diffs them against the reference
/// engine's blocks. Best-effort: silence is reported, never fatal.
#[allow(clippy::too_many_arguments)]
fn run_forensics(
    config: &ClusterConfig,
    controller: &Endpoint,
    addrs: &[SocketAddr],
    reports: &[RunReport],
    reference: &TldagNetwork,
    reference_chains: &[Digest],
    pulled: &Arc<Mutex<BTreeMap<(u32, u64), Digest>>>,
    trace_snapshots: &[String],
) -> DivergenceReport {
    let suspects: Vec<u32> = reports
        .iter()
        .enumerate()
        .filter(|(i, r)| r.chain_digest != reference_chains[*i])
        .map(|(i, _)| i as u32)
        .collect();
    // Nodes retain the last 64 slots of own-digest history for pulls.
    let window = config.slots.saturating_sub(64)..config.slots;

    for _round in 0..4 {
        let missing: Vec<(u32, u64)> = {
            let have = pulled.lock().expect("pulled digests poisoned");
            suspects
                .iter()
                .flat_map(|&node| window.clone().map(move |slot| (node, slot)))
                .filter(|key| !have.contains_key(key))
                .collect()
        };
        if missing.is_empty() {
            break;
        }
        for &(node, slot) in &missing {
            if let Some(addr) = addrs.get(node as usize) {
                let _ = controller.send_control(*addr, &Control::DigestReq { slot });
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // The reference engine's per-slot block digests for the same nodes.
    let mut ref_digests: BTreeMap<(u32, u64), Digest> = BTreeMap::new();
    for &node in &suspects {
        for block in reference.node(NodeId(node)).store().iter() {
            ref_digests.insert((node, block.header.time), block.header.digest());
        }
    }

    let wire = pulled.lock().expect("pulled digests poisoned").clone();
    let mut report = diagnose(&wire, &ref_digests, &suspects, window);
    if let Some(slot) = report.first_divergent_slot {
        report.timelines = trace_snapshots
            .iter()
            .flat_map(|snapshot| timelines_for_slot(snapshot, slot))
            .collect();
    }
    report
}
