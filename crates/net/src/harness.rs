//! The multi-process deployment harness behind `tldag cluster`.
//!
//! Spawns `N` real node processes (`tldag node ...`), each with its own UDP
//! socket on localhost, acts as the report controller, and — once every
//! node reported — replays the identical experiment on the in-memory
//! [`TldagNetwork`] engine and compares `network_digest`s. Digest parity
//! proves the wire path (envelope codec, fragmentation, gossip barrier,
//! pull-based loss recovery) reproduces the simulator's protocol execution
//! byte-for-byte on a shared seed.

use crate::control::{Control, RunReport};
use crate::endpoint::{Endpoint, EndpointConfig, Inbound};
use crate::peer::format_peer_list;
use crate::runtime::{deployment_protocol_config, deployment_topology, network_digest_of};
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tldag_core::network::TldagNetwork;
use tldag_core::workload::VerificationWorkload;
use tldag_crypto::Digest;
use tldag_sim::engine::GenerationSchedule;
use tldag_sim::NodeId;

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The `tldag` binary to spawn node processes from.
    pub exe: PathBuf,
    /// Number of nodes (= processes).
    pub nodes: usize,
    /// Slots each node executes.
    pub slots: u64,
    /// Shared experiment seed.
    pub seed: u64,
    /// Deployment area side in meters.
    pub side_m: f64,
    /// Consensus parameter γ.
    pub gamma: usize,
    /// Whether nodes run the PoP verification workload over the wire.
    pub pop: bool,
    /// When set, node `i` stores its chain on disk under `root/node-i`.
    pub storage_root: Option<PathBuf>,
    /// First UDP port; node `i` listens on `base_port + i`. When `None`,
    /// free ports are discovered by probing.
    pub base_port: Option<u16>,
    /// How long the controller waits for all reports.
    pub report_timeout: Duration,
}

impl ClusterConfig {
    /// A cluster of `nodes` × `slots` with deployment defaults.
    pub fn new(exe: PathBuf, nodes: usize, slots: u64, seed: u64) -> Self {
        ClusterConfig {
            exe,
            nodes,
            slots,
            seed,
            side_m: 300.0,
            gamma: 3,
            pop: false,
            storage_root: None,
            base_port: None,
            report_timeout: Duration::from_secs(60),
        }
    }
}

/// The outcome of a cluster run, including the parity verdict.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Per-node end-of-run reports, in node order.
    pub reports: Vec<RunReport>,
    /// Network digest assembled from the wire nodes' chain digests.
    pub wire_digest: Digest,
    /// Network digest of the in-memory reference run on the same seed.
    pub reference_digest: Digest,
    /// Per-node chain digests of the reference run, for mismatch diagnosis.
    pub reference_chains: Vec<Digest>,
    /// PoP (attempts, successes) summed over the wire nodes.
    pub wire_pop: (u64, u64),
    /// PoP (attempts, successes) of the reference engine.
    pub reference_pop: (u64, u64),
}

impl ClusterOutcome {
    /// Whether the wire cluster reproduced the reference digest exactly.
    pub fn parity(&self) -> bool {
        self.wire_digest == self.reference_digest
    }

    /// Whether any node proceeded past a timed-out barrier.
    pub fn degraded(&self) -> bool {
        self.reports.iter().any(|r| r.degraded)
    }
}

/// Kills every child on drop, so no path out of the harness leaks
/// processes.
struct ChildGuard {
    children: Vec<(NodeId, Child)>,
}

impl ChildGuard {
    /// Reaps children that exited on their own; returns the failures.
    fn harvest_failures(&mut self) -> Vec<String> {
        let mut failures = Vec::new();
        for (id, child) in &mut self.children {
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    failures.push(format!("node {} exited early: {status}", id.0));
                }
            }
        }
        failures
    }

    /// Waits for clean exits up to `deadline`, then kills stragglers.
    fn shutdown(&mut self, deadline: Instant) {
        loop {
            let all_done = self
                .children
                .iter_mut()
                .all(|(_, c)| matches!(c.try_wait(), Ok(Some(_))));
            if all_done || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Finds `n` bindable localhost UDP ports.
fn discover_ports(n: usize) -> Result<Vec<u16>, String> {
    let mut sockets = Vec::with_capacity(n);
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        let socket = UdpSocket::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot discover a free port: {e}"))?;
        ports.push(
            socket
                .local_addr()
                .map_err(|e| format!("cannot read discovered port: {e}"))?
                .port(),
        );
        // Held until all are discovered so probes cannot collide.
        sockets.push(socket);
    }
    Ok(ports)
}

/// Runs a full cluster: spawn, collect, compare. Node processes are always
/// reaped, whatever path is taken.
///
/// # Errors
///
/// Spawn failures, early child exits, and report-collection timeouts.
pub fn run_cluster(config: &ClusterConfig) -> Result<ClusterOutcome, String> {
    match run_cluster_attempt(config) {
        // Probed ports are necessarily released before the child processes
        // bind them, so a concurrent bind on the same host can steal one in
        // that window and the victim exits at startup. Fresh ports and one
        // retry absorb the race (impossible with an explicit --base-port,
        // where retrying would collide identically).
        Err(e) if config.base_port.is_none() && e.contains("exited early") => {
            run_cluster_attempt(config)
        }
        outcome => outcome,
    }
}

fn run_cluster_attempt(config: &ClusterConfig) -> Result<ClusterOutcome, String> {
    if config.nodes == 0 {
        return Err("--nodes must be positive".into());
    }
    let ports: Vec<u16> = match config.base_port {
        Some(base) => {
            let last = u64::from(base) + config.nodes as u64 - 1;
            if last > u64::from(u16::MAX) {
                return Err(format!(
                    "--base-port {base} + {} nodes exceeds port 65535",
                    config.nodes
                ));
            }
            (0..config.nodes as u16).map(|i| base + i).collect()
        }
        None => discover_ports(config.nodes)?,
    };
    let addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{p}").parse().expect("addr"))
        .collect();

    // --- The controller endpoint: collect reports, ack each.
    let controller = Arc::new(
        Endpoint::bind(
            NodeId(u32::MAX),
            "127.0.0.1:0".parse().expect("addr"),
            EndpointConfig::default(),
        )
        .map_err(|e| format!("cannot bind controller socket: {e}"))?,
    );
    let controller_addr = controller
        .local_addr()
        .map_err(|e| format!("controller address: {e}"))?;
    let reports: Arc<Mutex<HashMap<NodeId, RunReport>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let controller = Arc::clone(&controller);
        let reports = Arc::clone(&reports);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handler = |inbound: Inbound| {
                if let Inbound::Control {
                    src,
                    msg: Control::Report(report),
                    ..
                } = inbound
                {
                    reports
                        .lock()
                        .expect("reports poisoned")
                        .insert(report.node, report);
                    let _ = controller.send_control(src, &Control::ReportAck);
                }
            };
            controller.run_receiver(&stop, &mut handler);
        })
    };

    // --- Spawn one real process per node.
    let mut guard = ChildGuard {
        children: Vec::with_capacity(config.nodes),
    };
    for i in 0..config.nodes {
        let id = NodeId(i as u32);
        let peers: Vec<(NodeId, SocketAddr)> = (0..config.nodes)
            .filter(|&j| j != i)
            .map(|j| (NodeId(j as u32), addrs[j]))
            .collect();
        let mut cmd = Command::new(&config.exe);
        cmd.arg("node")
            .arg("--id")
            .arg(i.to_string())
            .arg("--listen")
            .arg(addrs[i].to_string())
            .arg("--peers")
            .arg(format_peer_list(&peers))
            .arg("--controller")
            .arg(controller_addr.to_string())
            .arg("--seed")
            .arg(config.seed.to_string())
            .arg("--nodes")
            .arg(config.nodes.to_string())
            .arg("--side")
            .arg(config.side_m.to_string())
            .arg("--gamma")
            .arg(config.gamma.to_string())
            .arg("--slots")
            .arg(config.slots.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if config.pop {
            cmd.arg("--pop");
        }
        if let Some(root) = &config.storage_root {
            cmd.arg("--storage")
                .arg("disk")
                .arg("--storage-dir")
                .arg(root.join(format!("node-{i}")));
        }
        let child = match cmd.spawn() {
            Ok(child) => child,
            Err(e) => {
                // Tear the collector down too — every exit path must, or a
                // failed run leaks the thread and the controller socket.
                stop.store(true, Ordering::Relaxed);
                let _ = collector.join();
                return Err(format!(
                    "cannot spawn node {i} from {}: {e}",
                    config.exe.display()
                ));
            }
        };
        guard.children.push((id, child));
    }

    // --- Collect all reports (or fail with whatever went wrong).
    let deadline = Instant::now() + config.report_timeout;
    let collected = loop {
        let have = reports.lock().expect("reports poisoned").len();
        if have == config.nodes {
            break reports.lock().expect("reports poisoned").clone();
        }
        let failures = guard.harvest_failures();
        if !failures.is_empty() {
            stop.store(true, Ordering::Relaxed);
            let _ = collector.join();
            return Err(failures.join("; "));
        }
        if Instant::now() > deadline {
            stop.store(true, Ordering::Relaxed);
            let _ = collector.join();
            return Err(format!(
                "cluster timed out: {have}/{} reports within {:?}",
                config.nodes, config.report_timeout
            ));
        }
        std::thread::sleep(Duration::from_millis(30));
    };

    // --- Release the cluster and reap the processes.
    for addr in &addrs {
        for _ in 0..3 {
            let _ = controller.send_control(*addr, &Control::Shutdown);
        }
    }
    guard.shutdown(Instant::now() + Duration::from_secs(5));
    stop.store(true, Ordering::Relaxed);
    collector.join().map_err(|_| "collector thread panicked")?;

    // --- The in-memory reference on the same seed.
    let topology = deployment_topology(config.seed, config.nodes, config.side_m);
    let cfg = deployment_protocol_config(config.gamma);
    let schedule = GenerationSchedule::uniform(topology.len());
    let mut reference = TldagNetwork::new(cfg, topology, schedule, config.seed);
    reference.set_verification_workload(if config.pop {
        VerificationWorkload::RandomPast {
            min_age_slots: config.nodes as u64,
        }
    } else {
        VerificationWorkload::Disabled
    });
    reference.run_slots(config.slots);

    let mut ordered = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let id = NodeId(i as u32);
        ordered.push(
            *collected
                .get(&id)
                .ok_or_else(|| format!("missing report from node {i}"))?,
        );
    }
    let wire_digest =
        network_digest_of(&ordered.iter().map(|r| r.chain_digest).collect::<Vec<_>>());
    let reference_chains: Vec<Digest> = (0..config.nodes)
        .map(|i| reference.chain_digest(NodeId(i as u32)))
        .collect();
    let wire_pop = ordered.iter().fold((0, 0), |(a, s), r| {
        (a + r.pop_attempts, s + r.pop_successes)
    });
    Ok(ClusterOutcome {
        wire_digest,
        reference_digest: reference.network_digest(),
        reference_chains,
        wire_pop,
        reference_pop: reference.pop_counters(),
        reports: ordered,
    })
}
