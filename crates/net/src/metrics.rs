//! Transport observability: atomic counters for everything the wire does.
//!
//! Every datagram fate is counted — including the drops the protocol never
//! sees (CRC failures, version skew, unknown codec tags) — so packet loss,
//! version mismatches, and retry pressure are visible in metrics instead of
//! silently degrading PoP latency.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! net_metrics {
    ($(#[$sdoc:meta])* snapshot $snap:ident; $($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Live transport counters, shared between the receiver thread and
        /// request callers. All updates are `Relaxed`: these are statistics,
        /// not synchronization.
        #[derive(Debug, Default)]
        pub struct NetMetrics {
            $($(#[$doc])* pub $field: AtomicU64,)+
        }

        $(#[$sdoc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct $snap {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl NetMetrics {
            /// A point-in-time copy of every counter.
            pub fn snapshot(&self) -> $snap {
                $snap {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }
        }

        impl $snap {
            /// Every counter as `(name, value)` pairs, in declaration
            /// order, for metric exposition and JSON output.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }

            /// Rebuilds a snapshot by pulling one value per counter in the
            /// same declaration order as [`Self::fields`] (wire decoding).
            ///
            /// # Errors
            ///
            /// The first error `next` returns.
            pub fn try_from_values<E>(
                mut next: impl FnMut() -> Result<u64, E>,
            ) -> Result<Self, E> {
                Ok($snap {
                    $($field: next()?,)+
                })
            }
        }
    };
}

net_metrics! {
    /// A point-in-time copy of [`NetMetrics`], for reports and JSON output.
    snapshot NetStats;
    /// Datagrams handed to the transport.
    datagrams_sent,
    /// Datagrams received from the transport.
    datagrams_received,
    /// Bytes handed to the transport.
    bytes_sent,
    /// Bytes received from the transport.
    bytes_received,
    /// Datagrams dropped for a checksum mismatch.
    crc_drops,
    /// Datagrams dropped for framing violations (magic, kind, lengths).
    malformed_drops,
    /// Datagrams dropped for an unsupported protocol version.
    version_drops,
    /// Well-framed messages dropped because the codec tag is unknown —
    /// the version-skew signal (`CodecError::UnknownTag`).
    unknown_tag_drops,
    /// Well-framed messages whose codec payload failed to decode.
    codec_error_drops,
    /// Multi-fragment messages fully reassembled.
    messages_reassembled,
    /// Partial messages evicted under the reassembly budget.
    reassembly_evictions,
    /// Requests initiated.
    requests_sent,
    /// Request retransmissions after a timed-out attempt.
    request_retries,
    /// Replies delivered to a waiting request (counted on the requester's
    /// side of the handoff).
    replies_matched,
    /// Replies that arrived after their request gave up (late or duplicate).
    replies_unmatched,
    /// Requests that exhausted their retry budget without a reply.
    request_timeouts,
    /// Join handshakes served (roster transfers to prospective members).
    joins_served,
    /// Membership deltas learned and re-gossiped (join announcements and
    /// leave/eviction notices that carried news).
    membership_gossip,
    /// Peers evicted for liveness (heard once, then silent past the
    /// eviction window while blocking a barrier).
    evictions,
    /// Receiver event-loop wakeups (batched receive calls), productive or
    /// not.
    recv_wakeups,
    /// Wakeups whose parked receive timed out with no traffic — the
    /// idle-churn signal (a parked loop stays near its timeout cadence; a
    /// spinning loop sends this counter through the roof).
    idle_wakeups,
    /// Batched send calls handed to the transport (each covering one or
    /// more datagrams).
    send_batches,
    /// Conflicting `SlotDigest`s detected: a peer advertised two distinct
    /// digests for the same slot (equivocation / digest lies / parasite
    /// re-advertisement). Each conflict discards the stored digest.
    digest_conflicts,
    /// `DigestReq` pulls issued to resolve a detected digest conflict
    /// directly from the advertising peer's canonical chain.
    conflict_pulls,
    /// Rejoin announcements rejected because the peer had already been
    /// evicted for flapping membership this run.
    flap_rejections,
}

impl NetMetrics {
    /// Bumps `counter` by one.
    pub(crate) fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps `counter` by `n`.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a join handshake served.
    pub fn bump_joins_served(&self) {
        Self::inc(&self.joins_served);
    }

    /// Counts a membership delta learned and re-gossiped.
    pub fn bump_membership_gossip(&self) {
        Self::inc(&self.membership_gossip);
    }

    /// Counts a liveness eviction.
    pub fn bump_evictions(&self) {
        Self::inc(&self.evictions);
    }

    /// Counts a detected `SlotDigest` conflict.
    pub fn bump_digest_conflicts(&self) {
        Self::inc(&self.digest_conflicts);
    }

    /// Counts a conflict-resolving `DigestReq` pull.
    pub fn bump_conflict_pulls(&self) {
        Self::inc(&self.conflict_pulls);
    }

    /// Counts a rejected rejoin flap.
    pub fn bump_flap_rejections(&self) {
        Self::inc(&self.flap_rejections);
    }
}

impl NetStats {
    /// Folds another snapshot into this one field-by-field (aggregating a
    /// cluster's nodes).
    pub fn merge(&mut self, other: &NetStats) {
        let NetStats {
            datagrams_sent,
            datagrams_received,
            bytes_sent,
            bytes_received,
            crc_drops,
            malformed_drops,
            version_drops,
            unknown_tag_drops,
            codec_error_drops,
            messages_reassembled,
            reassembly_evictions,
            requests_sent,
            request_retries,
            replies_matched,
            replies_unmatched,
            request_timeouts,
            joins_served,
            membership_gossip,
            evictions,
            recv_wakeups,
            idle_wakeups,
            send_batches,
            digest_conflicts,
            conflict_pulls,
            flap_rejections,
        } = other;
        self.datagrams_sent += datagrams_sent;
        self.datagrams_received += datagrams_received;
        self.bytes_sent += bytes_sent;
        self.bytes_received += bytes_received;
        self.crc_drops += crc_drops;
        self.malformed_drops += malformed_drops;
        self.version_drops += version_drops;
        self.unknown_tag_drops += unknown_tag_drops;
        self.codec_error_drops += codec_error_drops;
        self.messages_reassembled += messages_reassembled;
        self.reassembly_evictions += reassembly_evictions;
        self.requests_sent += requests_sent;
        self.request_retries += request_retries;
        self.replies_matched += replies_matched;
        self.replies_unmatched += replies_unmatched;
        self.request_timeouts += request_timeouts;
        self.joins_served += joins_served;
        self.membership_gossip += membership_gossip;
        self.evictions += evictions;
        self.recv_wakeups += recv_wakeups;
        self.idle_wakeups += idle_wakeups;
        self.send_batches += send_batches;
        self.digest_conflicts += digest_conflicts;
        self.conflict_pulls += conflict_pulls;
        self.flap_rejections += flap_rejections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = NetMetrics::default();
        NetMetrics::inc(&m.datagrams_sent);
        NetMetrics::add(&m.bytes_sent, 100);
        let s = m.snapshot();
        assert_eq!(s.datagrams_sent, 1);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.request_timeouts, 0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = NetStats {
            datagrams_sent: 1,
            request_retries: 2,
            ..NetStats::default()
        };
        let b = NetStats {
            datagrams_sent: 3,
            unknown_tag_drops: 4,
            ..NetStats::default()
        };
        a.merge(&b);
        assert_eq!(a.datagrams_sent, 4);
        assert_eq!(a.request_retries, 2);
        assert_eq!(a.unknown_tag_drops, 4);
    }
}
