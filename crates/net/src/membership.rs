//! Dynamic membership: the roster, churn schedules, and join placement.
//!
//! The paper's Sec. VII names dynamic membership — IoT nodes joining and
//! leaving mid-run — as the operating condition a deployed ledger must
//! treat as normal, and the in-memory engine already models it
//! (`TldagNetwork::node_joins` / `node_leaves`). This module is the wire
//! half: a [`Roster`] every process keeps in sync through scheduled churn
//! specs and/or gossiped membership deltas, so that barriers, gossip
//! fan-out, and PoP candidate enumeration all agree on *who is a protocol
//! participant at which slot*.
//!
//! Membership changes take effect at **slot boundaries**: a node that
//! joins at slot `s` generates its first block (an empty-reference genesis
//! of its own chain) at `s`; a node that leaves at slot `m` generated its
//! last block at `m - 1` and its last digest is dropped from every former
//! neighbor's `A_i` before they generate at `m` — exactly the engine's
//! `node_joins` / `node_leaves` semantics, which is what makes wire/engine
//! `network_digest` parity under churn checkable at all.
//!
//! Join *placement* is deterministic: [`join_site`] derives the newcomer's
//! coordinates from the joiner's `(seed, slot, id)` membership stream,
//! anchored within radio range of a live member — every process (and the
//! reference engine) computes the same radio links without ever shipping
//! coordinates over the wire.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use tldag_core::network::{derived_rng, stream};
use tldag_sim::geometry::Point;
use tldag_sim::{NodeId, Topology};

/// One member's lifecycle entry in the [`Roster`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Member {
    /// Where the member's endpoint listens, once known. Scheduled joiners
    /// appear in the roster before their announcement delivers the address.
    pub addr: Option<SocketAddr>,
    /// First slot the member generates in (0 for founders).
    pub join_slot: u64,
    /// First slot the member no longer generates in, if it left.
    pub leave_slot: Option<u64>,
    /// Whether the departure was a liveness eviction rather than a
    /// graceful/scheduled leave (evicted members may re-join).
    pub evicted: bool,
}

/// The membership view of one deployment: every id that ever participated,
/// with its join/leave slots and addressing.
///
/// All processes converge on the same roster through two channels:
/// a shared churn schedule (`--churn`, deterministic) and gossiped
/// membership deltas ([`crate::control::Control::JoinAnnounce`] /
/// [`crate::control::Control::Leave`], dynamic).
#[derive(Clone, Debug, Default)]
pub struct Roster {
    members: BTreeMap<NodeId, Member>,
}

impl Roster {
    /// A roster of `founders` nodes present from slot 0, addresses unknown.
    pub fn founders(founders: usize) -> Self {
        let members = (0..founders as u32)
            .map(|id| {
                (
                    NodeId(id),
                    Member {
                        addr: None,
                        join_slot: 0,
                        leave_slot: None,
                        evicted: false,
                    },
                )
            })
            .collect();
        Roster { members }
    }

    /// Records a member's endpoint address.
    pub fn set_addr(&mut self, id: NodeId, addr: SocketAddr) {
        if let Some(m) = self.members.get_mut(&id) {
            m.addr = Some(addr);
        }
    }

    /// The member's address, if known.
    pub fn addr(&self, id: NodeId) -> Option<SocketAddr> {
        self.members.get(&id).and_then(|m| m.addr)
    }

    /// The member's entry, if it ever participated.
    pub fn member(&self, id: NodeId) -> Option<&Member> {
        self.members.get(&id)
    }

    /// One past the highest id that ever participated (ids are dense: the
    /// engine's `Topology::add_node` hands out consecutive indices).
    pub fn total_ids(&self) -> u32 {
        self.members.keys().next_back().map_or(0, |last| last.0 + 1)
    }

    /// Learns that `id` joins at `slot` (idempotent). Returns `true` when
    /// this was new information — a fresh id, a previously evicted id
    /// re-joining, or an address filled in for a scheduled join.
    pub fn learn_join(&mut self, id: NodeId, addr: Option<SocketAddr>, slot: u64) -> bool {
        match self.members.get_mut(&id) {
            None => {
                self.members.insert(
                    id,
                    Member {
                        addr,
                        join_slot: slot,
                        leave_slot: None,
                        evicted: false,
                    },
                );
                true
            }
            Some(m) if m.evicted && m.leave_slot.is_some_and(|l| l <= slot) => {
                // Re-join of an evicted id: a fresh lifecycle entry. The
                // previous incarnation's chain is gone with its process, so
                // the rejoin behaves like a brand-new join at `slot`.
                *m = Member {
                    addr: addr.or(m.addr),
                    join_slot: slot,
                    leave_slot: None,
                    evicted: false,
                };
                true
            }
            Some(m) => {
                let new_addr = addr.is_some() && m.addr != addr;
                if let Some(a) = addr {
                    m.addr = Some(a);
                }
                new_addr
            }
        }
    }

    /// Learns that `id` stops generating from `slot` on (idempotent; the
    /// earliest recorded leave wins so concurrent announcements converge).
    /// Returns `true` when this was new information.
    pub fn learn_leave(&mut self, id: NodeId, slot: u64) -> bool {
        match self.members.get_mut(&id) {
            Some(m) => match m.leave_slot {
                None => {
                    m.leave_slot = Some(slot);
                    true
                }
                Some(existing) if slot < existing => {
                    m.leave_slot = Some(slot);
                    true
                }
                Some(_) => false,
            },
            None => false,
        }
    }

    /// Evicts `id` for silence: a leave at `slot` flagged as non-graceful,
    /// so a later [`Self::learn_join`] may bring the id back.
    pub fn evict(&mut self, id: NodeId, slot: u64) -> bool {
        let changed = self.learn_leave(id, slot);
        if let Some(m) = self.members.get_mut(&id) {
            if m.leave_slot == Some(slot) {
                m.evicted = true;
            }
        }
        changed
    }

    /// Whether `id` generates a block at `slot` (member and not yet left).
    pub fn generates_at(&self, id: NodeId, slot: u64) -> bool {
        self.members
            .get(&id)
            .is_some_and(|m| m.join_slot <= slot && m.leave_slot.is_none_or(|leave| slot < leave))
    }

    /// Whether `id` has departed (left or been evicted) by `slot`.
    pub fn departed_by(&self, id: NodeId, slot: u64) -> bool {
        self.members
            .get(&id)
            .is_some_and(|m| m.leave_slot.is_some_and(|leave| leave <= slot))
    }

    /// All ids generating at `slot`, ascending.
    pub fn generators_at(&self, slot: u64) -> Vec<NodeId> {
        self.members
            .keys()
            .copied()
            .filter(|&id| self.generates_at(id, slot))
            .collect()
    }

    /// All `(id, addr)` pairs of members generating at `slot` whose address
    /// is known, excluding `me` — the gossip/barrier fan-out set.
    pub fn peer_addrs_at(&self, slot: u64, me: NodeId) -> Vec<(NodeId, SocketAddr)> {
        self.members
            .iter()
            .filter(|(&id, m)| id != me && self.generates_at(id, slot) && m.addr.is_some())
            .map(|(&id, m)| (id, m.addr.expect("filtered on addr")))
            .collect()
    }

    /// Every entry, ascending by id (the `JoinAck` roster transfer).
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, &Member)> + '_ {
        self.members.iter().map(|(&id, m)| (id, m))
    }
}

/// One scheduled membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// `id` joins (first generation) at `slot`.
    Join {
        /// The joining node.
        id: NodeId,
        /// Its first generation slot.
        slot: u64,
    },
    /// `id` leaves: its last generation was at `slot - 1`.
    Leave {
        /// The leaving node.
        id: NodeId,
        /// The first slot it no longer generates in.
        slot: u64,
    },
}

impl ChurnEvent {
    /// The slot the event takes effect at.
    pub fn slot(&self) -> u64 {
        match self {
            ChurnEvent::Join { slot, .. } | ChurnEvent::Leave { slot, .. } => *slot,
        }
    }

    /// The affected node.
    pub fn id(&self) -> NodeId {
        match self {
            ChurnEvent::Join { id, .. } | ChurnEvent::Leave { id, .. } => *id,
        }
    }
}

/// Parses a churn spec: comma-separated `join:ID@SLOT` / `leave:ID@SLOT`
/// entries, e.g. `join:4@3,leave:1@6`.
///
/// # Errors
///
/// A human-readable message naming the offending entry.
pub fn parse_churn_spec(raw: &str) -> Result<Vec<ChurnEvent>, String> {
    let mut out = Vec::new();
    for entry in raw.split(',').filter(|e| !e.is_empty()) {
        let (kind, rest) = entry
            .split_once(':')
            .ok_or_else(|| format!("churn entry `{entry}` is not kind:id@slot"))?;
        let (id_raw, slot_raw) = rest
            .split_once('@')
            .ok_or_else(|| format!("churn entry `{entry}` is not kind:id@slot"))?;
        let id: u32 = id_raw
            .parse()
            .map_err(|_| format!("churn entry `{entry}` has a non-numeric id"))?;
        let slot: u64 = slot_raw
            .parse()
            .map_err(|_| format!("churn entry `{entry}` has a non-numeric slot"))?;
        out.push(match kind {
            "join" => ChurnEvent::Join {
                id: NodeId(id),
                slot,
            },
            "leave" => ChurnEvent::Leave {
                id: NodeId(id),
                slot,
            },
            other => return Err(format!("churn entry `{entry}` has unknown kind `{other}`")),
        });
    }
    out.sort_by_key(|e| (e.slot(), matches!(e, ChurnEvent::Join { .. }), e.id().0));
    Ok(out)
}

/// Renders churn events back into the form accepted by
/// [`parse_churn_spec`] (the harness hands this to spawned processes).
pub fn format_churn_spec(events: &[ChurnEvent]) -> String {
    events
        .iter()
        .map(|e| match e {
            ChurnEvent::Join { id, slot } => format!("join:{}@{slot}", id.0),
            ChurnEvent::Leave { id, slot } => format!("leave:{}@{slot}", id.0),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Validates a churn schedule against a deployment of `founders` initial
/// nodes running `slots` slots: join ids must be consecutive from
/// `founders` in slot order (the engine's `Topology::add_node` hands out
/// the next index), every event must land inside the run, at most one
/// event per id, and a leave must name a node that is a member by then.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_churn(events: &[ChurnEvent], founders: usize, slots: u64) -> Result<(), String> {
    let mut next_join_id = founders as u32;
    let mut roster = Roster::founders(founders);
    let mut last_slot = 0u64;
    for event in events {
        if event.slot() < last_slot {
            return Err("churn events must be sorted by slot".into());
        }
        last_slot = event.slot();
        if event.slot() == 0 || event.slot() >= slots {
            return Err(format!(
                "churn event at slot {} outside 1..{slots}",
                event.slot()
            ));
        }
        match *event {
            ChurnEvent::Join { id, slot } => {
                if id.0 != next_join_id {
                    return Err(format!(
                        "join ids must be consecutive: expected {next_join_id}, got {}",
                        id.0
                    ));
                }
                next_join_id += 1;
                roster.learn_join(id, None, slot);
            }
            ChurnEvent::Leave { id, slot } => {
                if !roster.generates_at(id, slot.saturating_sub(1)) {
                    return Err(format!(
                        "leave:{}@{slot} names a node that is not a member there",
                        id.0
                    ));
                }
                roster.learn_leave(id, slot);
            }
        }
    }
    Ok(())
}

/// The deterministic join site for `joiner` entering at `slot`: a point
/// within radio range of a live anchor member, drawn from the joiner's
/// `(seed, slot, id)` membership stream. Every process — and the
/// reference engine — computes the same coordinates, so the newcomer's
/// radio links need never cross the wire.
///
/// `topology` and `roster` must reflect the deployment state with all
/// events before this join already applied (events at one slot apply
/// leaves first, then joins ascending — the canonical order).
/// `range_m` is the deployment radio range
/// ([`crate::runtime::deployment_range_m`] for the standard deployment).
pub fn join_site(
    topology: &Topology,
    roster: &Roster,
    seed: u64,
    slot: u64,
    joiner: NodeId,
    range_m: f64,
) -> Point {
    let mut rng = derived_rng(seed, stream::MEMBERSHIP, slot, joiner);
    // Anchor on a member that is still generating (alive radio): the chain
    // of custody for connectivity. Fall back to any placed node if churn
    // emptied the live set.
    let live: Vec<NodeId> = (0..topology.len() as u32)
        .map(NodeId)
        .filter(|&id| roster.generates_at(id, slot))
        .collect();
    let anchor = if live.is_empty() {
        NodeId(rng.index(topology.len()) as u32)
    } else {
        live[rng.index(live.len())]
    };
    let at = topology.position(anchor);
    // Uniform in the disk of radius 0.95 × range around the anchor: the
    // joiner is strictly within range of at least the anchor.
    let r = 0.95 * range_m * rng.unit_f64().sqrt();
    let theta = rng.unit_f64() * std::f64::consts::TAU;
    Point::new(at.x + r * theta.cos(), at.y + r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn roster_tracks_join_and_leave_windows() {
        let mut roster = Roster::founders(3);
        assert!(roster.generates_at(NodeId(0), 0));
        roster.learn_join(NodeId(3), Some(addr(9003)), 4);
        roster.learn_leave(NodeId(1), 6);
        assert!(!roster.generates_at(NodeId(3), 3));
        assert!(roster.generates_at(NodeId(3), 4));
        assert!(roster.generates_at(NodeId(1), 5));
        assert!(!roster.generates_at(NodeId(1), 6));
        assert!(roster.departed_by(NodeId(1), 6));
        assert!(!roster.departed_by(NodeId(1), 5));
        assert_eq!(roster.total_ids(), 4);
        assert_eq!(
            roster.generators_at(5),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            roster.generators_at(6),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn earliest_leave_wins_and_repeats_are_not_news() {
        let mut roster = Roster::founders(2);
        assert!(roster.learn_leave(NodeId(1), 8));
        assert!(!roster.learn_leave(NodeId(1), 9));
        assert!(roster.learn_leave(NodeId(1), 5));
        assert_eq!(roster.member(NodeId(1)).unwrap().leave_slot, Some(5));
        assert!(
            !roster.learn_join(NodeId(0), None, 0),
            "founder re-join is not news"
        );
    }

    #[test]
    fn evicted_id_can_rejoin_fresh() {
        let mut roster = Roster::founders(2);
        assert!(roster.evict(NodeId(1), 4));
        assert!(roster.member(NodeId(1)).unwrap().evicted);
        assert!(!roster.generates_at(NodeId(1), 4));
        // A graceful leave cannot be "re-joined"; an eviction can.
        assert!(roster.learn_join(NodeId(1), Some(addr(9101)), 7));
        let m = roster.member(NodeId(1)).unwrap();
        assert!(!m.evicted);
        assert_eq!((m.join_slot, m.leave_slot), (7, None));
        assert!(!roster.generates_at(NodeId(1), 5));
        assert!(roster.generates_at(NodeId(1), 7));
    }

    #[test]
    fn churn_spec_round_trips_and_sorts() {
        let events = parse_churn_spec("leave:1@6,join:4@3").unwrap();
        assert_eq!(
            events,
            vec![
                ChurnEvent::Join {
                    id: NodeId(4),
                    slot: 3
                },
                ChurnEvent::Leave {
                    id: NodeId(1),
                    slot: 6
                },
            ]
        );
        assert_eq!(format_churn_spec(&events), "join:4@3,leave:1@6");
        assert!(parse_churn_spec("").unwrap().is_empty());
        assert!(parse_churn_spec("nope").is_err());
        assert!(parse_churn_spec("join:x@1").is_err());
        assert!(parse_churn_spec("grow:4@3").is_err());
    }

    #[test]
    fn churn_validation_catches_bad_schedules() {
        let ok = parse_churn_spec("join:4@3,leave:1@6").unwrap();
        assert!(validate_churn(&ok, 4, 10).is_ok());
        // Join id must be the next topology index.
        let bad_id = parse_churn_spec("join:7@3").unwrap();
        assert!(validate_churn(&bad_id, 4, 10).is_err());
        // Leave of a node that never joined.
        let bad_leave = parse_churn_spec("leave:9@6").unwrap();
        assert!(validate_churn(&bad_leave, 4, 10).is_err());
        // Leave before the join took effect.
        let too_early = parse_churn_spec("join:4@5,leave:4@5").unwrap();
        assert!(validate_churn(&too_early, 4, 10).is_err());
        // Outside the run.
        let late = parse_churn_spec("join:4@12").unwrap();
        assert!(validate_churn(&late, 4, 10).is_err());
        // A join and a leave of the same id in order is fine.
        let lifecycle = parse_churn_spec("join:4@2,leave:4@5").unwrap();
        assert!(validate_churn(&lifecycle, 4, 10).is_ok());
    }

    #[test]
    fn join_site_lands_in_range_of_a_live_member() {
        let range = crate::runtime::deployment_range_m();
        let topo = crate::runtime::deployment_topology(11, 5, 300.0);
        let roster = Roster::founders(5);
        let site = join_site(&topo, &roster, 11, 3, NodeId(5), range);
        let in_range = (0..5).any(|i| topo.position(NodeId(i)).in_range(&site, range));
        assert!(in_range, "the joiner must wire at least one radio link");
        // Deterministic: same inputs, same site.
        assert_eq!(site, join_site(&topo, &roster, 11, 3, NodeId(5), range));
        // Different slot or id: a different draw.
        assert_ne!(site, join_site(&topo, &roster, 11, 4, NodeId(5), range));
    }
}
