//! Runtime control messages (envelope kind 1).
//!
//! The Sec. IV-C protocol messages ride in kind-0 envelopes using the core
//! codec verbatim; everything a *deployment* additionally needs — liveness
//! bootstrap, slot-tagged digest gossip with pull-based recovery, and the
//! harness's report/shutdown handshake — is a control message. Keeping the
//! two tag spaces separate means the wire protocol stays byte-compatible
//! with the simulator's codec while the runtime can evolve freely.
//!
//! The digest pair deserves a note: `codec::WireMessage::Digest` carries no
//! slot (the synchronous simulator does not need one), but a real network
//! delivers out of order, so gossip uses [`Control::SlotDigest`] and a
//! receiver missing a neighbor's digest *pulls* it with
//! [`Control::DigestReq`] — the interest/nack-style recovery DLedger uses
//! over lossy IoT transports.

use crate::NetError;
use tldag_core::codec::{CodecError, Reader};
use tldag_crypto::Digest;
use tldag_sim::NodeId;

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_SLOT_DIGEST: u8 = 0x03;
const TAG_DIGEST_REQ: u8 = 0x04;
const TAG_REPORT: u8 = 0x05;
const TAG_REPORT_ACK: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;
const TAG_SLOT_DONE: u8 = 0x08;

/// A node's end-of-run summary, shipped to the harness controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Reporting node.
    pub node: NodeId,
    /// Slots the node executed.
    pub slots: u64,
    /// Final chain length.
    pub chain_len: u64,
    /// `sha256` over the chain's header digests in sequence order — the
    /// same quantity as `TldagNetwork::chain_digest`.
    pub chain_digest: Digest,
    /// PoP verifications attempted.
    pub pop_attempts: u64,
    /// PoP verifications that reached consensus.
    pub pop_successes: u64,
    /// True when any slot barrier timed out and the node proceeded with an
    /// incomplete digest set (parity with the reference engine is then off).
    pub degraded: bool,
}

/// A runtime control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe: "node `from` is up at this address".
    Hello {
        /// The probing node.
        from: NodeId,
    },
    /// Answer to [`Control::Hello`].
    HelloAck {
        /// The responding node.
        from: NodeId,
    },
    /// Digest gossip: the sender's block digest for `slot`.
    SlotDigest {
        /// Slot the digest's block was generated in.
        slot: u64,
        /// `H(b^h)` of that block.
        digest: Digest,
    },
    /// Pull request: "re-send me your [`Control::SlotDigest`] for `slot`".
    DigestReq {
        /// The missing slot.
        slot: u64,
    },
    /// Phase lockstep (PoP mode): the sender finished `slot` entirely —
    /// generation *and* its verification workload. Peers gate the next
    /// slot's generation on everyone's `SlotDone`, reproducing the
    /// engine's generate-then-verify phase barrier across processes.
    SlotDone {
        /// The completed slot.
        slot: u64,
    },
    /// End-of-run summary for the cluster harness.
    Report(RunReport),
    /// Controller acknowledgement of a [`Control::Report`].
    ReportAck,
    /// Controller request to exit the serving grace period and terminate.
    Shutdown,
}

/// Encodes a control message.
pub fn encode_control(msg: &Control) -> Vec<u8> {
    match msg {
        Control::Hello { from } => {
            let mut out = vec![TAG_HELLO];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        Control::HelloAck { from } => {
            let mut out = vec![TAG_HELLO_ACK];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        Control::SlotDigest { slot, digest } => {
            let mut out = vec![TAG_SLOT_DIGEST];
            out.extend_from_slice(&slot.to_be_bytes());
            out.extend_from_slice(digest.as_bytes());
            out
        }
        Control::DigestReq { slot } => {
            let mut out = vec![TAG_DIGEST_REQ];
            out.extend_from_slice(&slot.to_be_bytes());
            out
        }
        Control::SlotDone { slot } => {
            let mut out = vec![TAG_SLOT_DONE];
            out.extend_from_slice(&slot.to_be_bytes());
            out
        }
        Control::Report(r) => {
            let mut out = vec![TAG_REPORT];
            out.extend_from_slice(&r.node.0.to_be_bytes());
            out.extend_from_slice(&r.slots.to_be_bytes());
            out.extend_from_slice(&r.chain_len.to_be_bytes());
            out.extend_from_slice(r.chain_digest.as_bytes());
            out.extend_from_slice(&r.pop_attempts.to_be_bytes());
            out.extend_from_slice(&r.pop_successes.to_be_bytes());
            out.push(u8::from(r.degraded));
            out
        }
        Control::ReportAck => vec![TAG_REPORT_ACK],
        Control::Shutdown => vec![TAG_SHUTDOWN],
    }
}

/// Maps the shared reader's codec errors onto wire-layer errors.
fn framing(e: CodecError) -> NetError {
    match e {
        CodecError::TrailingBytes => NetError::LengthMismatch,
        _ => NetError::Truncated,
    }
}

/// Decodes a control message.
///
/// # Errors
///
/// [`NetError::Truncated`] / [`NetError::LengthMismatch`] on framing
/// violations, [`NetError::BadControlTag`] on an unknown tag.
pub fn decode_control(data: &[u8]) -> Result<Control, NetError> {
    let mut r = Reader::new(data);
    let tag = r.u8().map_err(framing)?;
    let msg = match tag {
        TAG_HELLO => Control::Hello {
            from: NodeId(r.u32().map_err(framing)?),
        },
        TAG_HELLO_ACK => Control::HelloAck {
            from: NodeId(r.u32().map_err(framing)?),
        },
        TAG_SLOT_DIGEST => Control::SlotDigest {
            slot: r.u64().map_err(framing)?,
            digest: r.digest().map_err(framing)?,
        },
        TAG_DIGEST_REQ => Control::DigestReq {
            slot: r.u64().map_err(framing)?,
        },
        TAG_SLOT_DONE => Control::SlotDone {
            slot: r.u64().map_err(framing)?,
        },
        TAG_REPORT => Control::Report(RunReport {
            node: NodeId(r.u32().map_err(framing)?),
            slots: r.u64().map_err(framing)?,
            chain_len: r.u64().map_err(framing)?,
            chain_digest: r.digest().map_err(framing)?,
            pop_attempts: r.u64().map_err(framing)?,
            pop_successes: r.u64().map_err(framing)?,
            degraded: r.u8().map_err(framing)? != 0,
        }),
        TAG_REPORT_ACK => Control::ReportAck,
        TAG_SHUTDOWN => Control::Shutdown,
        other => return Err(NetError::BadControlTag(other)),
    };
    r.finish().map_err(framing)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variants() -> Vec<Control> {
        vec![
            Control::Hello { from: NodeId(3) },
            Control::HelloAck { from: NodeId(4) },
            Control::SlotDigest {
                slot: 17,
                digest: Digest::from_bytes([9; 32]),
            },
            Control::DigestReq { slot: 17 },
            Control::SlotDone { slot: 17 },
            Control::Report(RunReport {
                node: NodeId(2),
                slots: 8,
                chain_len: 8,
                chain_digest: Digest::from_bytes([7; 32]),
                pop_attempts: 5,
                pop_successes: 5,
                degraded: false,
            }),
            Control::ReportAck,
            Control::Shutdown,
        ]
    }

    #[test]
    fn all_variants_round_trip() {
        for msg in variants() {
            let decoded = decode_control(&encode_control(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        for msg in variants() {
            let encoded = encode_control(&msg);
            for len in 0..encoded.len() {
                assert!(decode_control(&encoded[..len]).is_err(), "prefix {len}");
            }
            let mut padded = encoded;
            padded.push(0);
            assert_eq!(decode_control(&padded), Err(NetError::LengthMismatch));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode_control(&[0xee]), Err(NetError::BadControlTag(0xee)));
        assert_eq!(decode_control(&[]), Err(NetError::Truncated));
    }
}
