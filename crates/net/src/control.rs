//! Runtime control messages (envelope kind 1).
//!
//! The Sec. IV-C protocol messages ride in kind-0 envelopes using the core
//! codec verbatim; everything a *deployment* additionally needs — liveness
//! bootstrap, slot-tagged digest gossip with pull-based recovery, and the
//! harness's report/shutdown handshake — is a control message. Keeping the
//! two tag spaces separate means the wire protocol stays byte-compatible
//! with the simulator's codec while the runtime can evolve freely.
//!
//! The digest pair deserves a note: `codec::WireMessage::Digest` carries no
//! slot (the synchronous simulator does not need one), but a real network
//! delivers out of order, so gossip uses [`Control::SlotDigest`] and a
//! receiver missing a neighbor's digest *pulls* it with
//! [`Control::DigestReq`] — the interest/nack-style recovery DLedger uses
//! over lossy IoT transports.

use crate::metrics::NetStats;
use crate::NetError;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
use tldag_core::codec::{CodecError, Reader};
use tldag_crypto::Digest;
use tldag_sim::NodeId;

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_SLOT_DIGEST: u8 = 0x03;
const TAG_DIGEST_REQ: u8 = 0x04;
const TAG_REPORT: u8 = 0x05;
const TAG_REPORT_ACK: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;
const TAG_SLOT_DONE: u8 = 0x08;
const TAG_JOIN_REQ: u8 = 0x09;
const TAG_JOIN_ACK: u8 = 0x0a;
const TAG_ROSTER_ENTRY: u8 = 0x0b;
const TAG_JOIN_ANNOUNCE: u8 = 0x0c;
const TAG_LEAVE: u8 = 0x0d;

const ADDR_V4: u8 = 4;
const ADDR_V6: u8 = 6;

/// One member's lifecycle as shipped in the join handshake's roster
/// transfer ([`Control::RosterEntry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireMember {
    /// The member id.
    pub id: NodeId,
    /// First slot the member generates in.
    pub join_slot: u64,
    /// First slot the member no longer generates in, if it left.
    pub leave_slot: Option<u64>,
    /// Whether the departure was a liveness eviction.
    pub evicted: bool,
    /// The member's endpoint, when the sender knows it.
    pub addr: Option<SocketAddr>,
}

fn encode_addr(out: &mut Vec<u8>, addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) => {
            out.push(ADDR_V4);
            out.extend_from_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            out.push(ADDR_V6);
            out.extend_from_slice(&ip.octets());
        }
    }
    out.extend_from_slice(&addr.port().to_be_bytes());
}

fn decode_addr(r: &mut Reader<'_>) -> Result<SocketAddr, NetError> {
    let ip: IpAddr = match r.u8().map_err(framing)? {
        ADDR_V4 => {
            let o = r.take(4).map_err(framing)?;
            IpAddr::V4(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
        }
        ADDR_V6 => {
            let o = r.take(16).map_err(framing)?;
            let mut bytes = [0u8; 16];
            bytes.copy_from_slice(o);
            IpAddr::V6(Ipv6Addr::from(bytes))
        }
        other => return Err(NetError::BadAddressFamily(other)),
    };
    let port_hi = r.u8().map_err(framing)?;
    let port_lo = r.u8().map_err(framing)?;
    Ok(SocketAddr::new(ip, u16::from_be_bytes([port_hi, port_lo])))
}

/// A node's end-of-run summary, shipped to the harness controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Reporting node.
    pub node: NodeId,
    /// Slots the node executed.
    pub slots: u64,
    /// Final chain length.
    pub chain_len: u64,
    /// `sha256` over the chain's header digests in sequence order — the
    /// same quantity as `TldagNetwork::chain_digest`.
    pub chain_digest: Digest,
    /// PoP verifications attempted.
    pub pop_attempts: u64,
    /// PoP verifications that reached consensus.
    pub pop_successes: u64,
    /// Milliseconds the join handshake + announcement took (0 for
    /// founders) — the catch-up latency a late joiner paid before its
    /// first slot.
    pub catch_up_ms: u64,
    /// Milliseconds the slot loop proper ran — first generation through
    /// the last verification, excluding the hello/join bootstrap and the
    /// serving linger — the denominator for throughput comparisons
    /// between the lockstep and pipelined runtimes.
    pub slot_loop_ms: u64,
    /// True when any slot barrier timed out and the node proceeded with an
    /// incomplete digest set (parity with the reference engine is then off).
    pub degraded: bool,
    /// The node's final transport counters, merged by the harness into the
    /// cluster-wide view.
    pub net: NetStats,
    /// The resolved metrics listener address, when one was serving. With
    /// `--metrics-addr` on port 0 this is the only place the harness can
    /// learn the kernel-assigned port from.
    pub metrics_addr: Option<SocketAddr>,
}

/// A runtime control message.
///
/// `Report` dwarfs the other variants, but it travels exactly once per run
/// on the report handshake — boxing it would complicate every codec site
/// for no hot-path win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe: "node `from` is up at this address".
    Hello {
        /// The probing node.
        from: NodeId,
    },
    /// Answer to [`Control::Hello`].
    HelloAck {
        /// The responding node.
        from: NodeId,
    },
    /// Digest gossip: the sender's block digest for `slot`.
    SlotDigest {
        /// Slot the digest's block was generated in.
        slot: u64,
        /// `H(b^h)` of that block.
        digest: Digest,
    },
    /// Pull request: "re-send me your [`Control::SlotDigest`] for `slot`".
    DigestReq {
        /// The missing slot.
        slot: u64,
    },
    /// Phase lockstep (PoP mode): the sender finished `slot` entirely —
    /// generation *and* its verification workload. Peers gate the next
    /// slot's generation on everyone's `SlotDone`, reproducing the
    /// engine's generate-then-verify phase barrier across processes.
    SlotDone {
        /// The completed slot.
        slot: u64,
    },
    /// End-of-run summary for the cluster harness.
    Report(RunReport),
    /// Controller acknowledgement of a [`Control::Report`].
    ReportAck,
    /// Controller request to exit the serving grace period and terminate.
    Shutdown,
    /// Join handshake step 1: "I want to join the cluster; send me the
    /// roster". Sent by a `--join` process to its bootstrap peer.
    JoinReq {
        /// The prospective member.
        from: NodeId,
    },
    /// Join handshake step 2: the responder's current slot and how many
    /// [`Control::RosterEntry`] messages follow. The joiner re-sends
    /// [`Control::JoinReq`] until it holds all `members` entries, so a
    /// lost entry costs one round trip, never the handshake.
    JoinAck {
        /// The responding member.
        from: NodeId,
        /// The responder's next slot to execute (the joiner's progress
        /// reference for catch-up).
        slot: u64,
        /// Roster entries in flight after this ack.
        members: u32,
    },
    /// Join handshake step 3 (repeated): one member's lifecycle entry.
    RosterEntry(WireMember),
    /// Membership delta: `id` starts generating at `slot`, reachable at
    /// `addr`. Broadcast by the joiner after its handshake and re-gossiped
    /// once by every peer that learns something new from it, so the
    /// roster converges even when the direct announcement is lost.
    JoinAnnounce {
        /// The joining node.
        id: NodeId,
        /// Its first generation slot.
        slot: u64,
        /// Its endpoint address (explicit, so forwarded copies keep it).
        addr: SocketAddr,
    },
    /// Membership delta: `node` stops generating at `slot`. Sent by the
    /// leaver itself on a graceful departure, or by a peer gossiping a
    /// leave/eviction it learned of.
    Leave {
        /// The departing node (not necessarily the sender).
        node: NodeId,
        /// The first slot it no longer generates in.
        slot: u64,
    },
}

/// Encodes a control message.
pub fn encode_control(msg: &Control) -> Vec<u8> {
    match msg {
        Control::Hello { from } => {
            let mut out = vec![TAG_HELLO];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        Control::HelloAck { from } => {
            let mut out = vec![TAG_HELLO_ACK];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        Control::SlotDigest { slot, digest } => {
            let mut out = vec![TAG_SLOT_DIGEST];
            out.extend_from_slice(&slot.to_be_bytes());
            out.extend_from_slice(digest.as_bytes());
            out
        }
        Control::DigestReq { slot } => {
            let mut out = vec![TAG_DIGEST_REQ];
            out.extend_from_slice(&slot.to_be_bytes());
            out
        }
        Control::SlotDone { slot } => {
            let mut out = vec![TAG_SLOT_DONE];
            out.extend_from_slice(&slot.to_be_bytes());
            out
        }
        Control::Report(r) => {
            let mut out = vec![TAG_REPORT];
            out.extend_from_slice(&r.node.0.to_be_bytes());
            out.extend_from_slice(&r.slots.to_be_bytes());
            out.extend_from_slice(&r.chain_len.to_be_bytes());
            out.extend_from_slice(r.chain_digest.as_bytes());
            out.extend_from_slice(&r.pop_attempts.to_be_bytes());
            out.extend_from_slice(&r.pop_successes.to_be_bytes());
            out.extend_from_slice(&r.catch_up_ms.to_be_bytes());
            out.extend_from_slice(&r.slot_loop_ms.to_be_bytes());
            out.push(u8::from(r.degraded));
            for (_, value) in r.net.fields() {
                out.extend_from_slice(&value.to_be_bytes());
            }
            match r.metrics_addr {
                Some(addr) => {
                    out.push(1);
                    encode_addr(&mut out, addr);
                }
                None => out.push(0),
            }
            out
        }
        Control::ReportAck => vec![TAG_REPORT_ACK],
        Control::Shutdown => vec![TAG_SHUTDOWN],
        Control::JoinReq { from } => {
            let mut out = vec![TAG_JOIN_REQ];
            out.extend_from_slice(&from.0.to_be_bytes());
            out
        }
        Control::JoinAck {
            from,
            slot,
            members,
        } => {
            let mut out = vec![TAG_JOIN_ACK];
            out.extend_from_slice(&from.0.to_be_bytes());
            out.extend_from_slice(&slot.to_be_bytes());
            out.extend_from_slice(&members.to_be_bytes());
            out
        }
        Control::RosterEntry(m) => {
            let mut out = vec![TAG_ROSTER_ENTRY];
            out.extend_from_slice(&m.id.0.to_be_bytes());
            out.extend_from_slice(&m.join_slot.to_be_bytes());
            let mut flags = 0u8;
            if m.leave_slot.is_some() {
                flags |= 1;
            }
            if m.evicted {
                flags |= 2;
            }
            if m.addr.is_some() {
                flags |= 4;
            }
            out.push(flags);
            if let Some(leave) = m.leave_slot {
                out.extend_from_slice(&leave.to_be_bytes());
            }
            if let Some(addr) = m.addr {
                encode_addr(&mut out, addr);
            }
            out
        }
        Control::JoinAnnounce { id, slot, addr } => {
            let mut out = vec![TAG_JOIN_ANNOUNCE];
            out.extend_from_slice(&id.0.to_be_bytes());
            out.extend_from_slice(&slot.to_be_bytes());
            encode_addr(&mut out, *addr);
            out
        }
        Control::Leave { node, slot } => {
            let mut out = vec![TAG_LEAVE];
            out.extend_from_slice(&node.0.to_be_bytes());
            out.extend_from_slice(&slot.to_be_bytes());
            out
        }
    }
}

/// Maps the shared reader's codec errors onto wire-layer errors.
fn framing(e: CodecError) -> NetError {
    match e {
        CodecError::TrailingBytes => NetError::LengthMismatch,
        _ => NetError::Truncated,
    }
}

/// Decodes a control message.
///
/// # Errors
///
/// [`NetError::Truncated`] / [`NetError::LengthMismatch`] on framing
/// violations, [`NetError::BadControlTag`] on an unknown tag.
pub fn decode_control(data: &[u8]) -> Result<Control, NetError> {
    let mut r = Reader::new(data);
    let tag = r.u8().map_err(framing)?;
    let msg = match tag {
        TAG_HELLO => Control::Hello {
            from: NodeId(r.u32().map_err(framing)?),
        },
        TAG_HELLO_ACK => Control::HelloAck {
            from: NodeId(r.u32().map_err(framing)?),
        },
        TAG_SLOT_DIGEST => Control::SlotDigest {
            slot: r.u64().map_err(framing)?,
            digest: r.digest().map_err(framing)?,
        },
        TAG_DIGEST_REQ => Control::DigestReq {
            slot: r.u64().map_err(framing)?,
        },
        TAG_SLOT_DONE => Control::SlotDone {
            slot: r.u64().map_err(framing)?,
        },
        TAG_REPORT => Control::Report(RunReport {
            node: NodeId(r.u32().map_err(framing)?),
            slots: r.u64().map_err(framing)?,
            chain_len: r.u64().map_err(framing)?,
            chain_digest: r.digest().map_err(framing)?,
            pop_attempts: r.u64().map_err(framing)?,
            pop_successes: r.u64().map_err(framing)?,
            catch_up_ms: r.u64().map_err(framing)?,
            slot_loop_ms: r.u64().map_err(framing)?,
            degraded: r.u8().map_err(framing)? != 0,
            net: NetStats::try_from_values(|| r.u64()).map_err(framing)?,
            metrics_addr: if r.u8().map_err(framing)? != 0 {
                Some(decode_addr(&mut r)?)
            } else {
                None
            },
        }),
        TAG_REPORT_ACK => Control::ReportAck,
        TAG_SHUTDOWN => Control::Shutdown,
        TAG_JOIN_REQ => Control::JoinReq {
            from: NodeId(r.u32().map_err(framing)?),
        },
        TAG_JOIN_ACK => Control::JoinAck {
            from: NodeId(r.u32().map_err(framing)?),
            slot: r.u64().map_err(framing)?,
            members: r.u32().map_err(framing)?,
        },
        TAG_ROSTER_ENTRY => {
            let id = NodeId(r.u32().map_err(framing)?);
            let join_slot = r.u64().map_err(framing)?;
            let flags = r.u8().map_err(framing)?;
            let leave_slot = if flags & 1 != 0 {
                Some(r.u64().map_err(framing)?)
            } else {
                None
            };
            let addr = if flags & 4 != 0 {
                Some(decode_addr(&mut r)?)
            } else {
                None
            };
            Control::RosterEntry(WireMember {
                id,
                join_slot,
                leave_slot,
                evicted: flags & 2 != 0,
                addr,
            })
        }
        TAG_JOIN_ANNOUNCE => Control::JoinAnnounce {
            id: NodeId(r.u32().map_err(framing)?),
            slot: r.u64().map_err(framing)?,
            addr: decode_addr(&mut r)?,
        },
        TAG_LEAVE => Control::Leave {
            node: NodeId(r.u32().map_err(framing)?),
            slot: r.u64().map_err(framing)?,
        },
        other => return Err(NetError::BadControlTag(other)),
    };
    r.finish().map_err(framing)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variants() -> Vec<Control> {
        vec![
            Control::Hello { from: NodeId(3) },
            Control::HelloAck { from: NodeId(4) },
            Control::SlotDigest {
                slot: 17,
                digest: Digest::from_bytes([9; 32]),
            },
            Control::DigestReq { slot: 17 },
            Control::SlotDone { slot: 17 },
            Control::Report(RunReport {
                node: NodeId(2),
                slots: 8,
                chain_len: 8,
                chain_digest: Digest::from_bytes([7; 32]),
                pop_attempts: 5,
                pop_successes: 5,
                catch_up_ms: 12,
                slot_loop_ms: 480,
                degraded: false,
                net: NetStats {
                    datagrams_sent: 41,
                    bytes_received: 9001,
                    request_retries: 3,
                    evictions: 1,
                    ..NetStats::default()
                },
                metrics_addr: None,
            }),
            Control::Report(RunReport {
                node: NodeId(3),
                slots: 8,
                chain_len: 8,
                chain_digest: Digest::from_bytes([8; 32]),
                pop_attempts: 0,
                pop_successes: 0,
                catch_up_ms: 0,
                slot_loop_ms: 120,
                degraded: true,
                net: NetStats::default(),
                metrics_addr: Some("127.0.0.1:43211".parse().unwrap()),
            }),
            Control::ReportAck,
            Control::Shutdown,
            Control::JoinReq { from: NodeId(9) },
            Control::JoinAck {
                from: NodeId(1),
                slot: 12,
                members: 5,
            },
            Control::RosterEntry(WireMember {
                id: NodeId(4),
                join_slot: 3,
                leave_slot: None,
                evicted: false,
                addr: Some("127.0.0.1:9004".parse().unwrap()),
            }),
            Control::RosterEntry(WireMember {
                id: NodeId(1),
                join_slot: 0,
                leave_slot: Some(6),
                evicted: true,
                addr: None,
            }),
            Control::RosterEntry(WireMember {
                id: NodeId(2),
                join_slot: 0,
                leave_slot: Some(8),
                evicted: false,
                addr: Some("[::1]:9102".parse().unwrap()),
            }),
            Control::JoinAnnounce {
                id: NodeId(4),
                slot: 3,
                addr: "127.0.0.1:9004".parse().unwrap(),
            },
            Control::Leave {
                node: NodeId(1),
                slot: 6,
            },
        ]
    }

    #[test]
    fn all_variants_round_trip() {
        for msg in variants() {
            let decoded = decode_control(&encode_control(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        for msg in variants() {
            let encoded = encode_control(&msg);
            for len in 0..encoded.len() {
                assert!(decode_control(&encoded[..len]).is_err(), "prefix {len}");
            }
            let mut padded = encoded;
            padded.push(0);
            assert_eq!(decode_control(&padded), Err(NetError::LengthMismatch));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode_control(&[0xee]), Err(NetError::BadControlTag(0xee)));
        assert_eq!(decode_control(&[]), Err(NetError::Truncated));
    }
}
