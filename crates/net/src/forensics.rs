//! Divergence forensics: turning a bare digest-mismatch verdict into a
//! slot-by-slot diagnosis.
//!
//! Digest parity between a wire cluster and the in-memory reference engine
//! is the deployment's core acceptance check, but the network digest is a
//! hash over every per-node chain digest — when it differs, it says
//! nothing about *where* the chains forked. This module reconstructs that
//! answer from the evidence the runtime already keeps around:
//!
//! 1. The harness pulls each suspect node's recent per-slot digests over
//!    the live [`crate::control::Control::DigestReq`] path (nodes linger
//!    serving until the controller releases them, and retain the last 64
//!    slots of own-digest history exactly for pulls like this).
//! 2. [`diagnose`] diffs those against the reference engine's per-slot
//!    block digests and names the **first divergent slot** plus the
//!    differing block digests at every divergent slot.
//! 3. With tracing on, [`timelines_for_slot`] extracts the causal
//!    lifecycle timeline of each offending block from the nodes' `/trace`
//!    snapshots, so the report shows not just *what* diverged but what
//!    every node observed about the block on the way there.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use tldag_crypto::Digest;

/// One node's digest disagreement at one slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotMismatch {
    /// The diverging node.
    pub node: u32,
    /// The digest the wire node served for this slot (`None` when the
    /// node never answered the pull — pruned history or a dead process).
    pub wire: Option<Digest>,
    /// The reference engine's block digest at this slot (`None` when the
    /// reference node generated no block here, e.g. before a join).
    pub reference: Option<Digest>,
}

/// The slot-by-slot diff produced by [`diagnose`], plus any trace
/// timelines attached by the harness.
#[derive(Clone, Debug, Default)]
pub struct DivergenceReport {
    /// The earliest slot where any node's wire digest provably differs
    /// from the reference (`None` when the pulls yielded no definite
    /// disagreement — e.g. the evidence window has been pruned).
    pub first_divergent_slot: Option<u64>,
    /// Every divergent slot with the differing block digests, ascending.
    pub mismatches: BTreeMap<u64, Vec<SlotMismatch>>,
    /// Suspect slots the wire nodes could not answer (pruned or
    /// unreachable) — divergence there is possible but unprovable.
    pub unanswered: Vec<(u32, u64)>,
    /// Raw `/trace` timeline JSON of the offending blocks (empty when
    /// tracing or metrics were off for the run).
    pub timelines: Vec<String>,
}

impl DivergenceReport {
    /// Whether the diff found any provable disagreement.
    pub fn is_divergent(&self) -> bool {
        self.first_divergent_slot.is_some()
    }

    /// Human-readable multi-line rendering for the CLI and logs.
    pub fn render(&self) -> String {
        let mut out = String::from("divergence forensics:\n");
        match self.first_divergent_slot {
            Some(slot) => {
                let _ = writeln!(out, "  first divergent slot: {slot}");
            }
            None => out.push_str("  no provable per-slot disagreement in the pulled window\n"),
        }
        for (slot, mismatches) in &self.mismatches {
            let _ = writeln!(out, "  slot {slot}:");
            for m in mismatches {
                let wire = m
                    .wire
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "<unanswered>".into());
                let reference = m
                    .reference
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "<no reference block>".into());
                let _ = writeln!(
                    out,
                    "    node {}: wire {wire} vs reference {reference}",
                    m.node
                );
            }
        }
        if !self.unanswered.is_empty() {
            let listed: Vec<String> = self
                .unanswered
                .iter()
                .take(8)
                .map(|(node, slot)| format!("n{node}@{slot}"))
                .collect();
            let _ = writeln!(
                out,
                "  unanswered pulls (pruned or unreachable): {}{}",
                listed.join(" "),
                if self.unanswered.len() > 8 {
                    " …"
                } else {
                    ""
                }
            );
        }
        if self.timelines.is_empty() {
            out.push_str("  (run with --trace --metrics for block lifecycle timelines)\n");
        } else {
            out.push_str("  lifecycle timelines of offending blocks:\n");
            for t in &self.timelines {
                let _ = writeln!(out, "    {t}");
            }
        }
        out
    }
}

/// Diffs the pulled wire digests against the reference engine's per-slot
/// block digests for the given suspect nodes over `window` (a slot
/// range, typically the retention window of the nodes' own-digest
/// history).
///
/// A `(node, slot)` pair counts as **divergent** when both sides have a
/// digest and they differ, or when the wire node answered with a block
/// the reference never generated. A pair where the wire side is silent
/// is recorded as unanswered, not divergent — absence of evidence.
pub fn diagnose(
    wire: &BTreeMap<(u32, u64), Digest>,
    reference: &BTreeMap<(u32, u64), Digest>,
    suspects: &[u32],
    window: std::ops::Range<u64>,
) -> DivergenceReport {
    let mut report = DivergenceReport::default();
    for slot in window {
        for &node in suspects {
            let key = (node, slot);
            match (wire.get(&key), reference.get(&key)) {
                (Some(w), Some(r)) if w != r => {
                    report
                        .mismatches
                        .entry(slot)
                        .or_default()
                        .push(SlotMismatch {
                            node,
                            wire: Some(*w),
                            reference: Some(*r),
                        });
                }
                (Some(w), None) => {
                    report
                        .mismatches
                        .entry(slot)
                        .or_default()
                        .push(SlotMismatch {
                            node,
                            wire: Some(*w),
                            reference: None,
                        });
                }
                (None, Some(_)) => report.unanswered.push((node, slot)),
                _ => {}
            }
        }
    }
    report.first_divergent_slot = report.mismatches.keys().next().copied();
    report
}

/// Extracts the timeline objects for `slot` from a `/trace` JSON snapshot
/// (the exact format [`tldag_obs::trace_json`] renders): every element of
/// the top-level `"timelines"` array whose leading `"slot"` field equals
/// `slot`, returned as raw JSON object strings.
///
/// Tolerant by construction — a snapshot without a `"timelines"` array,
/// or with unbalanced braces, yields whatever complete objects were found
/// before the damage (never panics).
pub fn timelines_for_slot(trace_json: &str, slot: u64) -> Vec<String> {
    let Some(start) = trace_json.find("\"timelines\":[") else {
        return Vec::new();
    };
    let body = &trace_json[start + "\"timelines\":[".len()..];
    let wanted = format!("{{\"slot\":{slot},\"origin\":");
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => in_string = false,
                _ => escaped = false,
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = obj_start.take() {
                        let obj = &body[s..=i];
                        if obj.starts_with(&wanted) {
                            out.push(obj.to_string());
                        }
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(fill: u8) -> Digest {
        Digest::from_bytes([fill; 32])
    }

    #[test]
    fn diagnose_names_first_divergent_slot_and_differing_blocks() {
        // Node 1 agrees through slot 2, forks at slot 3, and stays forked.
        let mut wire = BTreeMap::new();
        let mut reference = BTreeMap::new();
        for slot in 0..6u64 {
            reference.insert((1u32, slot), digest(slot as u8));
            let served = if slot >= 3 {
                digest(0xAA + slot as u8)
            } else {
                digest(slot as u8)
            };
            wire.insert((1u32, slot), served);
        }
        let report = diagnose(&wire, &reference, &[1], 0..6);
        assert!(report.is_divergent());
        assert_eq!(report.first_divergent_slot, Some(3));
        assert_eq!(report.mismatches.len(), 3, "slots 3, 4, 5 all differ");
        let at3 = &report.mismatches[&3];
        assert_eq!(at3.len(), 1);
        assert_eq!(at3[0].node, 1);
        assert_eq!(at3[0].wire, Some(digest(0xAA + 3)));
        assert_eq!(at3[0].reference, Some(digest(3)));
        assert!(report.unanswered.is_empty());
        let rendered = report.render();
        assert!(rendered.contains("first divergent slot: 3"));
        assert!(rendered.contains("node 1:"));
    }

    #[test]
    fn diagnose_counts_extra_wire_blocks_but_not_silence() {
        let mut wire = BTreeMap::new();
        let mut reference = BTreeMap::new();
        // Slot 0: the node served a block the reference never generated.
        wire.insert((2u32, 0u64), digest(9));
        // Slot 1: the reference has a block the node never answered for.
        reference.insert((2u32, 1u64), digest(7));
        let report = diagnose(&wire, &reference, &[2], 0..2);
        assert_eq!(report.first_divergent_slot, Some(0));
        assert_eq!(report.mismatches[&0][0].reference, None);
        assert_eq!(report.unanswered, vec![(2, 1)]);
    }

    #[test]
    fn diagnose_of_agreeing_chains_is_clean() {
        let mut wire = BTreeMap::new();
        let mut reference = BTreeMap::new();
        for slot in 0..4u64 {
            wire.insert((0u32, slot), digest(slot as u8));
            reference.insert((0u32, slot), digest(slot as u8));
        }
        let report = diagnose(&wire, &reference, &[0], 0..4);
        assert!(!report.is_divergent());
        assert!(report.mismatches.is_empty());
        assert!(report
            .render()
            .contains("no provable per-slot disagreement"));
    }

    #[test]
    fn timelines_for_slot_extracts_matching_objects() {
        let json = "{\"node\":0,\"spans\":4,\"dropped\":0,\"evicted\":0,\"timelines\":[\
{\"slot\":2,\"origin\":0,\"prefix\":\"00ff\",\"nodes\":1,\"stitched\":false,\"spans\":[\
{\"slot\":2,\"origin\":0,\"prefix\":\"00ff\",\"node\":0,\"kind\":\"gen\",\"ts_micros\":1}]},\
{\"slot\":3,\"origin\":1,\"prefix\":\"aa00\",\"nodes\":2,\"stitched\":true,\"spans\":[]}]}";
        let hits = timelines_for_slot(json, 3);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].starts_with("{\"slot\":3,\"origin\":1"));
        assert!(hits[0].ends_with("\"spans\":[]}"));
        // Slot 2's nested span objects also carry "slot":2 — only the
        // top-level timeline may match.
        assert_eq!(timelines_for_slot(json, 2).len(), 1);
        assert_eq!(timelines_for_slot(json, 9), Vec::<String>::new());
    }

    #[test]
    fn timelines_for_slot_survives_malformed_snapshots() {
        assert!(timelines_for_slot("", 1).is_empty());
        assert!(timelines_for_slot("not json at all", 1).is_empty());
        assert!(timelines_for_slot("{\"timelines\":[", 1).is_empty());
        assert!(timelines_for_slot("{\"timelines\":[{\"slot\":1,\"origin\":0", 1).is_empty());
        // A string containing braces must not confuse the depth tracker.
        let tricky = "{\"timelines\":[{\"slot\":1,\"origin\":0,\"x\":\"}{\",\"spans\":[]}]}";
        assert_eq!(timelines_for_slot(tricky, 1).len(), 1);
    }
}
