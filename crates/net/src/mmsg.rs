//! Linux batched-datagram syscalls: `sendmmsg` / `recvmmsg` without libc.
//!
//! The workspace is std-only, so the two syscall wrappers the batched
//! transport path needs are declared here directly against the C ABI.
//! This is the single sanctioned `unsafe` island of the crate (the lib
//! root `deny`s unsafe everywhere else), it is compiled only on Linux,
//! and every caller in `transport.rs` falls back to the portable
//! per-datagram loop on any error — correctness never depends on this
//! path, only throughput does.

#![allow(unsafe_code)]

use crate::transport::RecvSlot;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
use std::os::fd::RawFd;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const MSG_DONTWAIT: i32 = 0x40;
/// Largest socket address we encode (`sockaddr_in6` = 28 bytes).
const SOCKADDR_MAX: usize = 28;
/// Messages per syscall; bounds the per-call scratch arrays (the kernel
/// caps `vlen` at `UIO_MAXIOV` = 1024, far above this).
const CHUNK: usize = 64;

/// `struct iovec` from `<sys/uio.h>`.
#[repr(C)]
struct IoVec {
    base: *mut u8,
    len: usize,
}

/// `struct msghdr` from `<sys/socket.h>` (glibc layout; the `repr(C)`
/// padding after the `u32` name length matches the C compiler's).
#[repr(C)]
struct MsgHdr {
    name: *mut u8,
    namelen: u32,
    iov: *mut IoVec,
    iovlen: usize,
    control: *mut u8,
    controllen: usize,
    flags: i32,
}

/// `struct mmsghdr` from `<sys/socket.h>`.
#[repr(C)]
struct MMsgHdr {
    hdr: MsgHdr,
    len: u32,
}

extern "C" {
    fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    fn recvmmsg(
        fd: i32,
        msgvec: *mut MMsgHdr,
        vlen: u32,
        flags: i32,
        timeout: *mut core::ffi::c_void,
    ) -> i32;
}

/// Writes `addr` as a `sockaddr_in`/`sockaddr_in6` into `out`, returning
/// the encoded length.
fn encode_sockaddr(addr: SocketAddr, out: &mut [u8; SOCKADDR_MAX]) -> u32 {
    match addr {
        SocketAddr::V4(v4) => {
            out[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
            out[2..4].copy_from_slice(&v4.port().to_be_bytes());
            out[4..8].copy_from_slice(&v4.ip().octets());
            out[8..16].fill(0);
            16
        }
        SocketAddr::V6(v6) => {
            out[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
            out[2..4].copy_from_slice(&v6.port().to_be_bytes());
            out[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
            out[8..24].copy_from_slice(&v6.ip().octets());
            out[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            28
        }
    }
}

/// Reads the `sockaddr` the kernel filled in back into a [`SocketAddr`].
fn decode_sockaddr(raw: &[u8; SOCKADDR_MAX], len: u32) -> Option<SocketAddr> {
    let family = u16::from_ne_bytes([raw[0], raw[1]]);
    let port = u16::from_be_bytes([raw[2], raw[3]]);
    match (family, len as usize) {
        (AF_INET, n) if n >= 8 => Some(SocketAddr::new(
            IpAddr::V4(Ipv4Addr::new(raw[4], raw[5], raw[6], raw[7])),
            port,
        )),
        (AF_INET6, n) if n >= 28 => {
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&raw[8..24]);
            Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port))
        }
        _ => None,
    }
}

/// Hands `batch` to the kernel in `sendmmsg` calls of at most [`CHUNK`]
/// messages. Returns how many datagrams the kernel accepted — possibly a
/// prefix; the caller loops the remainder portably.
///
/// # Errors
///
/// The raw OS error when the very first message of the batch is rejected.
pub(crate) fn send_batch(fd: RawFd, batch: &[(&[u8], SocketAddr)]) -> io::Result<usize> {
    let mut total = 0usize;
    for chunk in batch.chunks(CHUNK) {
        let mut names = [[0u8; SOCKADDR_MAX]; CHUNK];
        let mut name_lens = [0u32; CHUNK];
        let mut iovs: Vec<IoVec> = Vec::with_capacity(chunk.len());
        for (i, (buf, addr)) in chunk.iter().enumerate() {
            name_lens[i] = encode_sockaddr(*addr, &mut names[i]);
            iovs.push(IoVec {
                base: buf.as_ptr() as *mut u8,
                len: buf.len(),
            });
        }
        // Pointers are taken only after `iovs` stops growing, so they stay
        // valid across the syscall.
        let mut hdrs: Vec<MMsgHdr> = (0..chunk.len())
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: names[i].as_mut_ptr(),
                    namelen: name_lens[i],
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        // SAFETY: every pointer in `hdrs` targets storage owned by this
        // frame (`names`, `iovs`, the caller's payload slices), all of
        // which outlive the call; `vlen` equals the populated length.
        let sent = unsafe { sendmmsg(fd, hdrs.as_mut_ptr(), hdrs.len() as u32, 0) };
        if sent < 0 {
            if total > 0 {
                return Ok(total);
            }
            return Err(io::Error::last_os_error());
        }
        total += sent as usize;
        if (sent as usize) < chunk.len() {
            return Ok(total);
        }
    }
    Ok(total)
}

/// Drains up to `slots.len()` (capped at [`CHUNK`]) already-queued
/// datagrams with one `recvmmsg(MSG_DONTWAIT)` call. An empty queue is
/// `Ok(0)`, not an error — the caller already received the wakeup
/// datagram through its parked receive.
///
/// # Errors
///
/// The raw OS error for anything other than an empty queue.
pub(crate) fn recv_batch_nonblocking(fd: RawFd, slots: &mut [RecvSlot]) -> io::Result<usize> {
    let take = slots.len().min(CHUNK);
    let slots = &mut slots[..take];
    let mut names = [[0u8; SOCKADDR_MAX]; CHUNK];
    let mut iovs: Vec<IoVec> = slots
        .iter_mut()
        .map(|s| IoVec {
            base: s.buf.as_mut_ptr(),
            len: s.buf.len(),
        })
        .collect();
    let mut hdrs: Vec<MMsgHdr> = (0..take)
        .map(|i| MMsgHdr {
            hdr: MsgHdr {
                name: names[i].as_mut_ptr(),
                namelen: SOCKADDR_MAX as u32,
                iov: &mut iovs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        })
        .collect();
    // SAFETY: as in `send_batch`, every pointer targets storage that
    // outlives the syscall (`names`, `iovs`, the slots' buffers); the
    // null timeout is documented for `recvmmsg` (no wait) and
    // MSG_DONTWAIT makes the call nonblocking regardless.
    let got = unsafe {
        recvmmsg(
            fd,
            hdrs.as_mut_ptr(),
            take as u32,
            MSG_DONTWAIT,
            std::ptr::null_mut(),
        )
    };
    if got < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            return Ok(0);
        }
        return Err(err);
    }
    let got = (got as usize).min(take);
    for i in 0..got {
        match decode_sockaddr(&names[i], hdrs[i].hdr.namelen) {
            Some(src) => {
                slots[i].len = (hdrs[i].len as usize).min(slots[i].buf.len());
                slots[i].src = src;
            }
            // Undecodable source family: mark the slot empty so the
            // endpoint skips it instead of misattributing the datagram.
            None => slots[i].len = 0,
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn batched_send_and_nonblocking_drain_round_trip() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dst = rx.local_addr().unwrap();
        let bufs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 16 + i as usize]).collect();
        let batch: Vec<(&[u8], SocketAddr)> = bufs.iter().map(|b| (b.as_slice(), dst)).collect();
        assert_eq!(send_batch(tx.as_raw_fd(), &batch).unwrap(), 5);

        let mut slots: Vec<RecvSlot> = (0..8).map(|_| RecvSlot::new(256)).collect();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 5 && Instant::now() < deadline {
            let n = recv_batch_nonblocking(rx.as_raw_fd(), &mut slots).unwrap();
            if n == 0 {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            for slot in slots.iter().take(n).filter(|s| s.len > 0) {
                assert_eq!(slot.src, tx.local_addr().unwrap());
                got.push(slot.buf[..slot.len].to_vec());
            }
        }
        got.sort();
        assert_eq!(got, bufs, "all five datagrams delivered intact");
    }

    #[test]
    fn empty_queue_drains_to_zero_not_error() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut slots = [RecvSlot::new(64)];
        assert_eq!(
            recv_batch_nonblocking(rx.as_raw_fd(), &mut slots).unwrap(),
            0
        );
    }

    #[test]
    fn sockaddr_codec_round_trips_both_families() {
        for addr in [
            "127.0.0.1:9999".parse::<SocketAddr>().unwrap(),
            "[::1]:4242".parse::<SocketAddr>().unwrap(),
        ] {
            let mut raw = [0u8; SOCKADDR_MAX];
            let len = encode_sockaddr(addr, &mut raw);
            assert_eq!(decode_sockaddr(&raw, len), Some(addr));
        }
    }
}
