//! The `tldag explore` live DAG explorer.
//!
//! Serves a browsable JSON view of a 2LDAG deployment's DAG structure and
//! PoP state over the same dependency-free HTTP listener the `/metrics`
//! endpoint uses, from either of two sources:
//!
//! * **Disk segments** (`--segments DIR`): opens the durable block logs a
//!   cluster run left behind (a single node directory, or a cluster root
//!   of `node-<i>` subdirectories), reconstructs every chain and the
//!   cross-chain digest edges that link blocks into the logical DAG, and
//!   serves the full structural view.
//! * **A live node** (`--target ADDR`, the node's `--metrics-addr`):
//!   proxies the node's `/metrics` + `/trace` endpoints into a causal
//!   view — chain/PoP state from the exposition, per-slot block lifecycle
//!   timelines from the span store.
//!
//! Endpoints (both sources):
//!
//! * `GET /dag` — deployment summary: chains, lengths, heads (segments)
//!   or live chain/PoP state plus timeline count (live).
//! * `GET /slot/<t>` — the blocks generated at slot `t` with their digest
//!   edges (segments) or their lifecycle timelines (live).
//! * `GET /block/<o>-<q>` — one block in full: header fields, digest
//!   entries with resolved parent blocks, and resolved children
//!   (segments, `o-q` = owner and sequence number) or the matching
//!   block's timelines (live, `o-q` = origin and slot).

use crate::forensics::timelines_for_slot;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tldag_core::store::BlockBackend;
use tldag_crypto::Digest;
use tldag_obs::{http_get, HttpServer, Routes};
use tldag_storage::{DurableStore, StorageOptions};

/// Where the explorer reads its DAG from.
#[derive(Clone, Debug)]
pub enum ExplorerSource {
    /// Proxy a live node's `/metrics` + `/trace` endpoints.
    Live(SocketAddr),
    /// Open durable block logs under this directory (a node dir, or a
    /// cluster root containing `node-<i>` subdirectories).
    Segments(PathBuf),
}

/// One block's explorer-facing metadata.
#[derive(Clone, Debug)]
struct BlockMeta {
    owner: u32,
    seq: u32,
    slot: u64,
    digest: Digest,
    /// The header's Digests field: `(origin, digest)` entries.
    entries: Vec<(u32, Digest)>,
}

impl BlockMeta {
    fn id(&self) -> String {
        format!("{}-{}", self.owner, self.seq)
    }
}

/// The reconstructed DAG: every chain plus the digest-edge indexes.
#[derive(Debug, Default)]
struct DagModel {
    /// Owner → chain, seq-ascending.
    chains: BTreeMap<u32, Vec<BlockMeta>>,
    /// Header digest → `(owner, seq)` of the block it names.
    by_digest: HashMap<Digest, (u32, u32)>,
    /// Header digest → blocks whose Digests field references it.
    children: HashMap<Digest, Vec<(u32, u32)>>,
}

impl DagModel {
    fn insert(&mut self, meta: BlockMeta) {
        self.by_digest.insert(meta.digest, (meta.owner, meta.seq));
        for (_, parent) in &meta.entries {
            self.children
                .entry(*parent)
                .or_default()
                .push((meta.owner, meta.seq));
        }
        self.chains.entry(meta.owner).or_default().push(meta);
    }

    fn get(&self, owner: u32, seq: u32) -> Option<&BlockMeta> {
        self.chains.get(&owner)?.iter().find(|b| b.seq == seq)
    }

    fn resolve(&self, digest: &Digest) -> Option<String> {
        self.by_digest.get(digest).map(|(o, q)| format!("{o}-{q}"))
    }

    fn block_count(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    fn max_slot(&self) -> u64 {
        self.chains
            .values()
            .flat_map(|c| c.iter().map(|b| b.slot))
            .max()
            .unwrap_or(0)
    }
}

/// Opens every durable block log under `root` and rebuilds the DAG.
///
/// # Errors
///
/// An unreadable directory, a locked or corrupt log, or a root with no
/// blocks at all.
fn load_segments(root: &Path) -> Result<DagModel, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let entries =
        std::fs::read_dir(root).map_err(|e| format!("cannot read {}: {e}", root.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir()
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("node-"))
        {
            dirs.push(path);
        }
    }
    if dirs.is_empty() {
        // A single node's log directory.
        dirs.push(root.to_path_buf());
    }
    dirs.sort();

    let mut model = DagModel::default();
    for dir in &dirs {
        let store = DurableStore::open(dir, StorageOptions::default())
            .map_err(|e| format!("cannot open block log {}: {e}", dir.display()))?;
        for block in store.iter() {
            model.insert(BlockMeta {
                owner: block.id.owner.0,
                seq: block.id.seq,
                slot: block.header.time,
                digest: block.header_digest(),
                entries: block
                    .header
                    .digests
                    .iter()
                    .map(|e| (e.origin.0, e.digest))
                    .collect(),
            });
        }
    }
    if model.block_count() == 0 {
        return Err(format!("no blocks under {}", root.display()));
    }
    for chain in model.chains.values_mut() {
        chain.sort_by_key(|b| b.seq);
    }
    Ok(model)
}

fn json_str_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

fn block_json(model: &DagModel, meta: &BlockMeta) -> String {
    let edges = json_str_array(meta.entries.iter().map(|(origin, digest)| {
        format!(
            "{{\"origin\":{origin},\"digest\":\"{digest}\",\"block\":{}}}",
            match model.resolve(digest) {
                Some(id) => format!("\"{id}\""),
                None => "null".to_string(),
            }
        )
    }));
    let children = json_str_array(
        model
            .children
            .get(&meta.digest)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|(o, q)| format!("\"{o}-{q}\"")),
    );
    format!(
        "{{\"id\":\"{}\",\"owner\":{},\"seq\":{},\"slot\":{},\"digest\":\"{}\",\
\"edges\":{edges},\"children\":{children}}}",
        meta.id(),
        meta.owner,
        meta.seq,
        meta.slot,
        meta.digest
    )
}

fn dag_json(model: &DagModel) -> String {
    let chains = json_str_array(model.chains.iter().map(|(owner, chain)| {
        format!(
            "{{\"node\":{owner},\"len\":{},\"head\":\"{}\"}}",
            chain.len(),
            chain
                .last()
                .map(|b| b.digest.to_string())
                .unwrap_or_default()
        )
    }));
    format!(
        "{{\"source\":\"segments\",\"nodes\":{},\"blocks\":{},\"max_slot\":{},\
\"chains\":{chains}}}",
        model.chains.len(),
        model.block_count(),
        model.max_slot()
    )
}

fn slot_json(model: &DagModel, slot: u64) -> String {
    let blocks = json_str_array(
        model
            .chains
            .values()
            .flat_map(|chain| chain.iter().filter(|b| b.slot == slot))
            .map(|meta| block_json(model, meta)),
    );
    format!("{{\"slot\":{slot},\"blocks\":{blocks}}}")
}

/// Parses an `/block/<a>-<b>` or `/slot/<t>` style path suffix.
fn parse_pair(suffix: &str) -> Option<(u32, u64)> {
    let (a, b) = suffix.split_once('-')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

const JSON: &str = "application/json";

fn segment_routes(model: DagModel) -> Arc<Routes> {
    Arc::new(move |path: &str| -> Option<(String, String)> {
        if path == "/dag" {
            return Some((JSON.to_string(), dag_json(&model)));
        }
        if let Some(raw) = path.strip_prefix("/slot/") {
            let slot: u64 = raw.parse().ok()?;
            return Some((JSON.to_string(), slot_json(&model, slot)));
        }
        if let Some(raw) = path.strip_prefix("/block/") {
            let (owner, seq) = parse_pair(raw)?;
            let meta = model.get(owner, seq as u32)?;
            return Some((JSON.to_string(), block_json(&model, meta)));
        }
        None
    })
}

/// Live-mode scrape timeout: a node answering slower than this misses the
/// request rather than wedging the explorer.
const LIVE_TIMEOUT: Duration = Duration::from_secs(2);

fn live_routes(target: SocketAddr) -> Arc<Routes> {
    Arc::new(move |path: &str| -> Option<(String, String)> {
        if path == "/dag" {
            let samples = crate::telemetry::scrape_metrics(target, LIVE_TIMEOUT).ok()?;
            let row = crate::telemetry::StatusRow::from_samples(target.to_string(), &samples);
            let timelines = http_get(target, "/trace", LIVE_TIMEOUT)
                .map(|t| t.matches("\"stitched\":").count())
                .unwrap_or(0);
            let mut out = String::from("{\"source\":\"live\",");
            let _ = write!(
                out,
                "\"target\":\"{target}\",\"timelines\":{timelines},\"status\":{}}}",
                row.to_json()
            );
            return Some((JSON.to_string(), out));
        }
        if let Some(raw) = path.strip_prefix("/slot/") {
            let slot: u64 = raw.parse().ok()?;
            let trace = http_get(target, "/trace", LIVE_TIMEOUT).ok()?;
            let timelines = json_str_array(timelines_for_slot(&trace, slot));
            return Some((
                JSON.to_string(),
                format!("{{\"slot\":{slot},\"timelines\":{timelines}}}"),
            ));
        }
        if let Some(raw) = path.strip_prefix("/block/") {
            let (origin, slot) = parse_pair(raw)?;
            let trace = http_get(target, "/trace", LIVE_TIMEOUT).ok()?;
            let wanted = format!("{{\"slot\":{slot},\"origin\":{origin},");
            let timelines = json_str_array(
                timelines_for_slot(&trace, slot)
                    .into_iter()
                    .filter(|t| t.starts_with(&wanted)),
            );
            return Some((
                JSON.to_string(),
                format!("{{\"origin\":{origin},\"slot\":{slot},\"timelines\":{timelines}}}"),
            ));
        }
        None
    })
}

/// The running explorer server.
#[derive(Debug)]
pub struct Explorer {
    server: HttpServer,
}

impl Explorer {
    /// Builds the DAG view for `source` and serves it on `listen`
    /// (port 0 picks a free port — read it back with [`Explorer::addr`]).
    ///
    /// # Errors
    ///
    /// An unreadable or empty segment directory, or a bind failure.
    pub fn spawn(listen: SocketAddr, source: ExplorerSource) -> Result<Explorer, String> {
        let routes = match source {
            ExplorerSource::Segments(root) => segment_routes(load_segments(&root)?),
            ExplorerSource::Live(target) => live_routes(target),
        };
        let server = HttpServer::spawn(listen, routes)
            .map_err(|e| format!("cannot serve explorer on {listen}: {e}"))?;
        Ok(Explorer { server })
    }

    /// The bound listen address (resolved when `listen` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the listener.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tldag_core::config::ProtocolConfig;
    use tldag_core::{BlockBody, BlockId, DataBlock, DigestEntry};
    use tldag_crypto::schnorr::KeyPair;
    use tldag_sim::NodeId;

    /// Two tiny chains on disk: node 0 and node 1, two blocks each, with
    /// node 1's second block referencing node 0's first — one cross-chain
    /// DAG edge to resolve.
    fn seed_segments(root: &Path) -> Digest {
        let cfg = ProtocolConfig::test_default();
        let mut cross_edge = Digest::ZERO;
        let mut prev: HashMap<u32, Digest> = HashMap::new();
        for owner in 0..2u32 {
            let kp = KeyPair::from_seed(1000 + u64::from(owner));
            let dir = root.join(format!("node-{owner}"));
            let mut store = DurableStore::open(&dir, StorageOptions::default()).expect("open");
            for seq in 0..2u32 {
                let mut digests = Vec::new();
                if let Some(own_prev) = prev.get(&owner) {
                    digests.push(DigestEntry {
                        origin: NodeId(owner),
                        digest: *own_prev,
                    });
                }
                if owner == 1 && seq == 1 {
                    digests.push(DigestEntry {
                        origin: NodeId(0),
                        digest: cross_edge,
                    });
                }
                let block = DataBlock::create(
                    &cfg,
                    BlockId::new(NodeId(owner), seq),
                    u64::from(seq),
                    digests,
                    BlockBody::new(vec![owner as u8, seq as u8], cfg.body_bits),
                    &kp,
                );
                let digest = block.header_digest();
                if owner == 0 && seq == 0 {
                    cross_edge = digest;
                }
                prev.insert(owner, digest);
                store.append(block).expect("append");
            }
            store.sync().expect("sync");
        }
        cross_edge
    }

    #[test]
    fn segments_explorer_serves_dag_slot_and_block() {
        let root = std::env::temp_dir().join(format!("tldag-explore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        let cross_edge = seed_segments(&root);

        let explorer = Explorer::spawn(
            "127.0.0.1:0".parse().expect("addr"),
            ExplorerSource::Segments(root.clone()),
        )
        .expect("spawn explorer");
        let addr = explorer.addr();

        let dag = http_get(addr, "/dag", Duration::from_secs(2)).expect("GET /dag");
        assert!(dag.contains("\"source\":\"segments\""));
        assert!(dag.contains("\"nodes\":2"));
        assert!(dag.contains("\"blocks\":4"));

        let slot1 = http_get(addr, "/slot/1", Duration::from_secs(2)).expect("GET /slot/1");
        assert!(slot1.contains("\"id\":\"0-1\""));
        assert!(slot1.contains("\"id\":\"1-1\""));

        // Node 1's second block must resolve its cross-chain edge to 0-0
        // and 0-0 must list 1-1 among its children.
        let b11 = http_get(addr, "/block/1-1", Duration::from_secs(2)).expect("GET /block/1-1");
        assert!(
            b11.contains("\"block\":\"0-0\""),
            "edge must resolve: {b11}"
        );
        let b00 = http_get(addr, "/block/0-0", Duration::from_secs(2)).expect("GET /block/0-0");
        assert!(b00.contains(&format!("\"digest\":\"{cross_edge}\"")));
        assert!(b00.contains("\"1-1\""), "children must include 1-1: {b00}");

        // Unknown ids are a 404, not a panic.
        assert!(http_get(addr, "/block/9-9", Duration::from_secs(2)).is_err());

        explorer.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_or_missing_segment_root_is_a_clean_error() {
        let root = std::env::temp_dir().join(format!("tldag-explore-none-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let listen: SocketAddr = "127.0.0.1:0".parse().expect("addr");
        assert!(Explorer::spawn(listen, ExplorerSource::Segments(root.clone())).is_err());
        std::fs::create_dir_all(&root).expect("mkdir");
        let err = Explorer::spawn(listen, ExplorerSource::Segments(root.clone()))
            .expect_err("empty root must fail");
        assert!(
            err.contains("no blocks") || err.contains("cannot open"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
