//! Fragment reassembly with a bounded memory budget.
//!
//! Fragments of one message share `(sender, msg_seq)`; the [`Reassembler`]
//! collects them (in any order, tolerating duplicates) and returns the full
//! payload once every fragment arrived. Partially assembled messages whose
//! tail was lost would otherwise pin memory forever, so the buffer enforces
//! a byte budget: when exceeded, the oldest partial message is evicted (its
//! remaining fragments will be retransmitted by the request/retry layer if
//! anyone still cares).

use crate::envelope::Envelope;
use std::collections::HashMap;
use tldag_sim::NodeId;

/// One partially reassembled message.
struct Partial {
    frags: Vec<Option<Vec<u8>>>,
    received: usize,
    bytes: usize,
    /// Insertion stamp for oldest-first eviction.
    stamp: u64,
}

/// Reassembles fragmented messages under a byte budget.
#[derive(Default)]
pub struct Reassembler {
    partials: HashMap<(NodeId, u64), Partial>,
    buffered_bytes: usize,
    budget_bytes: usize,
    next_stamp: u64,
    evictions: u64,
}

impl Reassembler {
    /// Creates a reassembler that buffers at most `budget_bytes` of
    /// incomplete fragments.
    pub fn new(budget_bytes: usize) -> Self {
        Reassembler {
            budget_bytes,
            ..Reassembler::default()
        }
    }

    /// Offers one decoded fragment. Returns the complete payload when this
    /// fragment finishes its message, `None` while more are outstanding.
    /// Duplicate and inconsistent fragments are dropped silently.
    pub fn offer(&mut self, env: &Envelope, payload: &[u8]) -> Option<Vec<u8>> {
        if env.frag_count == 1 {
            return Some(payload.to_vec());
        }
        let key = (env.sender, env.msg_seq);
        let stamp = self.next_stamp;
        // The budget must price what is actually allocated, not just payload
        // bytes received: a claimed frag_count reserves a slot table up
        // front, and unaccounted it would let a flood of 1-byte fragments
        // with huge counts pin memory far past the budget.
        let slot_table_bytes = env.frag_count as usize * std::mem::size_of::<Option<Vec<u8>>>();
        let mut created = false;
        let partial = self.partials.entry(key).or_insert_with(|| {
            created = true;
            Partial {
                frags: vec![None; env.frag_count as usize],
                received: 0,
                bytes: slot_table_bytes,
                stamp,
            }
        });
        if created {
            self.buffered_bytes += slot_table_bytes;
        }
        self.next_stamp += 1;
        // LRU, not oldest-created: an actively arriving message stays.
        partial.stamp = stamp;
        if partial.frags.len() != env.frag_count as usize {
            // A sender reused a seq with a different shape; distrust both.
            let stale = self.partials.remove(&key).expect("present");
            self.buffered_bytes -= stale.bytes;
            return None;
        }
        let slot = &mut partial.frags[env.frag_index as usize];
        if slot.is_some() {
            return None; // duplicate fragment
        }
        *slot = Some(payload.to_vec());
        partial.received += 1;
        partial.bytes += payload.len();
        self.buffered_bytes += payload.len();
        if partial.received == partial.frags.len() {
            let done = self.partials.remove(&key).expect("present");
            self.buffered_bytes -= done.bytes;
            let mut out = Vec::with_capacity(done.bytes - slot_table_bytes);
            for frag in done.frags {
                out.extend_from_slice(&frag.expect("all fragments received"));
            }
            return Some(out);
        }
        self.enforce_budget();
        None
    }

    /// Evicts oldest partials until the buffer fits the budget again. The
    /// newest partial is never evicted by its own arrival, so a single
    /// message larger than the budget can still complete.
    fn enforce_budget(&mut self) {
        while self.buffered_bytes > self.budget_bytes && self.partials.len() > 1 {
            let oldest = self
                .partials
                .iter()
                .min_by_key(|(_, p)| p.stamp)
                .map(|(&k, _)| k)
                .expect("non-empty");
            let evicted = self.partials.remove(&oldest).expect("present");
            self.buffered_bytes -= evicted.bytes;
            self.evictions += 1;
        }
    }

    /// Number of partial messages evicted for exceeding the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes currently buffered in incomplete messages.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{decode_datagram, encode_message, Kind};

    fn frames(seq: u64, payload: &[u8], mtu: usize) -> Vec<Vec<u8>> {
        encode_message(Kind::Wire, NodeId(1), seq, 0, payload, mtu).unwrap()
    }

    fn offer(r: &mut Reassembler, frame: &[u8]) -> Option<Vec<u8>> {
        let (env, payload) = decode_datagram(frame).unwrap();
        r.offer(&env, payload)
    }

    #[test]
    fn out_of_order_and_duplicate_fragments_reassemble() {
        let payload: Vec<u8> = (0..4000u32).map(|i| (i * 7) as u8).collect();
        let fs = frames(5, &payload, 1400);
        assert!(fs.len() >= 3);
        let mut r = Reassembler::new(1 << 20);
        assert!(offer(&mut r, &fs[2]).is_none());
        assert!(offer(&mut r, &fs[0]).is_none());
        assert!(offer(&mut r, &fs[0]).is_none(), "duplicate ignored");
        let done = offer(&mut r, &fs[1]).expect("complete");
        assert_eq!(done, payload);
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn interleaved_messages_do_not_mix() {
        let a: Vec<u8> = vec![0xaa; 3000];
        let b: Vec<u8> = vec![0xbb; 3000];
        let fa = frames(1, &a, 1400);
        let fb = frames(2, &b, 1400);
        let mut r = Reassembler::new(1 << 20);
        assert!(offer(&mut r, &fa[0]).is_none());
        assert!(offer(&mut r, &fb[0]).is_none());
        assert!(offer(&mut r, &fb[1]).is_none());
        assert_eq!(offer(&mut r, &fb[2]).expect("b done"), b);
        assert!(offer(&mut r, &fa[1]).is_none());
        assert_eq!(offer(&mut r, &fa[2]).expect("a done"), a);
    }

    #[test]
    fn huge_claimed_frag_counts_cannot_pin_memory_past_the_budget() {
        // 1-byte fragments claiming the maximum fragment count: the slot
        // table each one allocates must be priced into the budget, so the
        // flood evicts instead of accumulating.
        let mut r = Reassembler::new(1 << 20);
        for seq in 0..100u64 {
            let env = Envelope {
                kind: Kind::Wire,
                sender: NodeId(1),
                msg_seq: seq,
                req_id: 0,
                frag_index: 0,
                frag_count: u16::MAX,
                trace: None,
            };
            assert!(r.offer(&env, &[0u8]).is_none());
        }
        let per_partial = u16::MAX as usize * std::mem::size_of::<Option<Vec<u8>>>();
        assert!(
            r.buffered_bytes() <= (1 << 20) + per_partial,
            "buffered {} must stay near the budget",
            r.buffered_bytes()
        );
        assert!(r.evictions() >= 90, "the flood must be evicted, not stored");
    }

    #[test]
    fn budget_evicts_oldest_partial_but_never_the_newest() {
        let big: Vec<u8> = vec![1; 3000];
        let fs1 = frames(1, &big, 1400);
        let fs2 = frames(2, &big, 1400);
        // Budget holds roughly one partial message.
        let mut r = Reassembler::new(2000);
        assert!(offer(&mut r, &fs1[0]).is_none());
        assert!(offer(&mut r, &fs1[1]).is_none());
        assert_eq!(r.evictions(), 0, "a lone partial may exceed the budget");
        // A second partial pushes past the budget; the older one is evicted.
        assert!(offer(&mut r, &fs2[0]).is_none());
        assert_eq!(r.evictions(), 1);
        // The survivor still completes.
        assert!(offer(&mut r, &fs2[1]).is_none());
        assert_eq!(offer(&mut r, &fs2[2]).expect("survivor completes"), big);
    }
}
